// bench_table3 — reruns the full campaign and regenerates Table III (the
// client×server matrix), paper vs measured. Experiment E4.
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

int main() {
  const wsx::interop::StudyResult result = wsx::interop::run_study();
  std::cout << wsx::interop::format_table3(result);
  return 0;
}
