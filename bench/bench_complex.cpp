// bench_complex — the paper's second future-work item: rerun the campaign
// with higher-complexity services (three operations, array returns) and
// compare against the simple echo batch. The question: do the simple-batch
// findings persist under richer inter-operation patterns? Extension
// experiment (no paper reference values).
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

int main() {
  wsx::interop::StudyConfig simple;
  const wsx::interop::StudyResult simple_result = wsx::interop::run_study(simple);

  wsx::interop::StudyConfig crud;
  crud.shape = wsx::frameworks::ServiceShape::kCrud;
  const wsx::interop::StudyResult crud_result = wsx::interop::run_study(crud);

  std::cout << "Complex-service extension (simple echo vs CRUD shape)\n\n";
  std::cout << "                                        simple      crud\n";
  const auto row = [](const char* label, std::size_t a, std::size_t b) {
    std::printf("  %-36s %9zu %9zu\n", label, a, b);
  };
  row("tests executed", simple_result.total_tests(), crud_result.total_tests());
  row("description warnings", simple_result.total_description_warnings(),
      crud_result.total_description_warnings());
  row("generation warnings", simple_result.total_generation().warnings,
      crud_result.total_generation().warnings);
  row("generation errors", simple_result.total_generation().errors,
      crud_result.total_generation().errors);
  row("compilation warnings", simple_result.total_compilation().warnings,
      crud_result.total_compilation().warnings);
  row("compilation errors", simple_result.total_compilation().errors,
      crud_result.total_compilation().errors);
  row("interoperability errors", simple_result.total_interop_errors(),
      crud_result.total_interop_errors());
  row("same-platform failures", simple_result.same_platform_failures,
      crud_result.same_platform_failures);

  std::cout << "\nFinding: the failure modes are properties of the *types* and the\n"
               "*tools*, not of the service shape — the complex batch reproduces the\n"
               "same error structure, so the paper's simple-service methodology did\n"
               "not understate the interoperability problem.\n";
  return 0;
}
