// bench_failure_catalog — the auto-generated counterpart of the paper's
// §IV.B "Technical Examples of Disclosed Issues": every distinct error
// code observed across the full campaign, with affected-test counts, the
// tools involved, and a sample diagnostic. Experiment E6 companion.
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

int main() {
  const wsx::interop::StudyResult result = wsx::interop::run_study();
  std::cout << wsx::interop::format_failure_catalog(result);
  return 0;
}
