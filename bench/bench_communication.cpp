// bench_communication — the Communication (4) + Execution (5) steps the
// paper defers to future work, run across the full corpus: every client
// that survives description/generation/compilation invokes every service
// over the HTTP wire model. Extension experiment (no paper reference).
#include <iostream>

#include "interop/communication.hpp"

int main() {
  const wsx::interop::CommunicationResult result =
      wsx::interop::run_communication_study();
  std::cout << wsx::interop::format_communication(result);

  std::cout << "\nFindings beyond the paper's steps 1-3:\n";
  std::cout << "  method-less proxies invoked anyway (zero-operation WSDLs): "
            << result.total(wsx::interop::CommOutcome::kNoInvocableProxy) << "\n";
  std::cout << "  transport-level rejections (SOAPAction mismatches): "
            << result.total(wsx::interop::CommOutcome::kTransportError) << "\n";
  std::cout << "  silent data loss (echo mismatches from 'uncommon data structures'): "
            << result.total(wsx::interop::CommOutcome::kEchoMismatch) << "\n";
  std::cout << "  -> tools with zero generation/compilation errors are NOT safe: "
               "failures surface only on the wire, confirming the paper's\n"
               "     warning that step-1..3 cleanliness understates interop risk.\n";
  return 0;
}
