// bench_predict — the static predictor + substitution index benchmark;
// emits BENCH_predict.json.
//
// Measures the cost of the static path that replaces a dynamic rescan:
//
//   predict_ns_per_service      predict_service_job (parse + fingerprint +
//                               rule evaluation) per deployed description
//   index_build_ns_per_service  folding a predicted corpus into the
//                               substitution index
//   index_parse_ns_per_service  reloading the serialized index
//   substitute_lookups_per_sec  ranked "replace Y for client X" queries
//                               against the loaded index
//
// With --check BASELINE.json the run compares itself against a committed
// baseline and exits 1 when any per-service cost regresses past
// --tolerance percent (or the query rate drops past it) — the CI gate.
//
//   bench_predict [--scale PCT] [--out FILE.json]
//                 [--check BASELINE.json] [--tolerance PCT]
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/predict.hpp"
#include "analysis/substitution.hpp"
#include "common/json.hpp"

namespace {

using namespace wsx;
using namespace wsx::analysis::predict;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

void scale_options(PredictOptions& options, std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  auto& java = options.java_spec;
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  auto& dotnet = options.dotnet_spec;
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

/// Runs `work` repeatedly until ~0.3 s of wall time has accumulated and
/// returns the mean nanoseconds per call.
template <typename Fn>
double time_ns(Fn&& work) {
  using clock = std::chrono::steady_clock;
  work();
  std::size_t batch = 1;
  for (;;) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < batch; ++i) work();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
            .count());
    if (ns >= 3e8 || batch >= (1u << 24)) return ns / static_cast<double>(batch);
    batch *= 2;
  }
}

struct Measurement {
  std::string name;
  double value = 0.0;
  /// true: smaller is better (ns/service); false: larger is better (rates).
  bool lower_is_better = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 20;
  std::size_t tolerance = 40;
  std::string out_path = "BENCH_predict.json";
  std::string check_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return 2;
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tolerance)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--check" && i + 1 < args.size()) {
      check_path = args[++i];
    } else {
      std::cerr << "usage: bench_predict [--scale PCT] [--out FILE.json] "
                   "[--check BASELINE.json] [--tolerance PCT]\n";
      return 2;
    }
  }

  PredictOptions options;
  options.join_study = false;  // the dynamic study is bench_pipeline's subject
  if (scale != 100) scale_options(options, scale);

  // The deploy pass is the fixture, not the subject: the predictor's whole
  // point is to run without it on already-published descriptions.
  PredictReport report;
  const std::vector<analysis::LintJob> jobs = build_predict_corpus(options, report);
  if (jobs.empty()) {
    std::cerr << "bench_predict: empty corpus\n";
    return 1;
  }
  const double services = static_cast<double>(jobs.size());

  std::vector<Measurement> measurements;
  measurements.push_back({"predict_ns_per_service", time_ns([&] {
                            for (const analysis::LintJob& job : jobs) {
                              const ServicePredictionRecord record = predict_service_job(job);
                              if (record.prediction.clients.empty()) std::exit(1);
                            }
                          }) / services});

  report.services.clear();
  report.services.reserve(jobs.size());
  for (const analysis::LintJob& job : jobs) {
    report.services.push_back(predict_service_job(job));
  }
  finalize_predict_report(report, options);

  measurements.push_back({"index_build_ns_per_service", time_ns([&] {
                            const SubstitutionIndex built = build_index(report);
                            if (built.entries.size() != jobs.size()) std::exit(1);
                          }) / services});

  const SubstitutionIndex index = build_index(report);
  const std::string serialized = index_json(index);
  measurements.push_back({"index_parse_ns_per_service", time_ns([&] {
                            Result<SubstitutionIndex> loaded = index_from_json(serialized);
                            if (!loaded.ok()) std::exit(1);
                          }) / services});

  // Query mix: every client against a fixed target, round-robin — the
  // shape of an "is there a safer provider" dashboard refresh.
  SubstituteQuery query;
  query.service = index.entries.front().server + "/" + index.entries.front().service;
  query.top = 5;
  std::size_t next_client = 0;
  const double query_ns = time_ns([&] {
    query.client = index.clients[next_client];
    next_client = (next_client + 1) % index.clients.size();
    Result<std::vector<Candidate>> candidates = substitute(index, query);
    if (!candidates.ok()) std::exit(1);
  });
  measurements.push_back({"substitute_lookups_per_sec",
                          query_ns > 0.0 ? 1e9 / query_ns : 0.0,
                          /*lower_is_better=*/false});

  json::ObjectWriter doc;
  doc.field("benchmark", "predict");
  doc.field("scale_percent", scale);
  doc.field("services", jobs.size());
  for (const Measurement& m : measurements) doc.field(m.name, m.value);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_predict: cannot open " << out_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  for (const Measurement& m : measurements) {
    std::cout << m.name << " = " << m.value << "\n";
  }
  std::cout << "predict: " << jobs.size() << " services -> " << out_path << "\n";

  if (check_path.empty()) return 0;

  // Regression gate: each measurement may drift up to `tolerance` percent
  // in its bad direction relative to the committed baseline.
  std::ifstream baseline_file(check_path);
  if (!baseline_file) {
    std::cerr << "bench_predict: cannot open baseline " << check_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << baseline_file.rdbuf();
  Result<json::Value> baseline = json::parse(buffer.str());
  if (!baseline.ok()) {
    std::cerr << "bench_predict: baseline: " << baseline.error().message << "\n";
    return 1;
  }
  const double slack = static_cast<double>(tolerance) / 100.0;
  bool regressed = false;
  for (const Measurement& m : measurements) {
    const json::Value* reference = baseline->find(m.name);
    if (reference == nullptr || !reference->is_number()) {
      std::cerr << "bench_predict: baseline lacks " << m.name << "\n";
      regressed = true;
      continue;
    }
    const double limit = m.lower_is_better ? reference->as_number() * (1.0 + slack)
                                           : reference->as_number() * (1.0 - slack);
    const bool bad = m.lower_is_better ? m.value > limit : m.value < limit;
    if (bad) {
      std::cerr << "bench_predict: REGRESSION " << m.name << " = " << m.value
                << " vs baseline " << reference->as_number() << " (limit " << limit
                << ")\n";
      regressed = true;
    }
  }
  if (!regressed) std::cout << "predict: within " << tolerance << "% of baseline\n";
  return regressed ? 1 : 0;
}
