// bench_study — end-to-end study throughput with the obs pipeline.
//
// Runs the full-scale campaign three times — with tracing/metrics off (the
// pure-harness baseline), with both sinks live, and under the resilience
// supervisor — and writes BENCH_study.json: tests executed, wall seconds,
// tests/sec, per-phase wall time from the metric histograms, and both
// overhead ratios. The instrumentation budget is 5% (docs/OBSERVABILITY.md)
// and the supervisor budget is 2% (docs/RESILIENCE.md); the JSON records
// the measured numbers so CI history can watch them drift, and
// --max-supervisor-overhead turns the supervisor budget into a hard gate.
//
// The plain and supervised legs take the best of --reps runs (default 3):
// the overhead gate compares two sub-second walls, and single runs carry
// several percent of scheduler noise — minimums estimate the true cost.
//
//   bench_study [--scale PCT] [--threads N] [--reps N] [--out FILE.json]
//               [--max-supervisor-overhead PCT]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "interop/study.hpp"
#include "interop/supervised.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace wsx;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

void scale_config(interop::StudyConfig& config, std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  auto& java = config.java_spec;
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  auto& dotnet = config.dotnet_spec;
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

double seconds_for(const interop::StudyConfig& config, std::size_t& tests_out) {
  const auto start = std::chrono::steady_clock::now();
  const interop::StudyResult result = interop::run_study(config);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  tests_out = result.total_tests();
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 100;
  std::size_t threads = 0;
  std::size_t reps = 3;
  std::size_t max_supervisor_overhead = 0;  // percent; 0 = report only
  std::string out_path = "BENCH_study.json";
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return 2;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_count(args[++i], threads)) return 2;
    } else if (args[i] == "--reps" && i + 1 < args.size()) {
      if (!parse_count(args[++i], reps) || reps == 0) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--max-supervisor-overhead" && i + 1 < args.size()) {
      if (!parse_count(args[++i], max_supervisor_overhead)) return 2;
    } else {
      std::cerr << "usage: bench_study [--scale PCT] [--threads N] [--reps N] [--out FILE.json]\n"
                   "                   [--max-supervisor-overhead PCT]\n";
      return 2;
    }
  }

  interop::StudyConfig config;
  if (scale != 100) scale_config(config, scale);
  config.threads = threads;

  // Warm-up run: touches every lazily-built catalog/framework singleton so
  // neither measured run pays first-use costs.
  std::size_t tests = 0;
  (void)seconds_for(config, tests);

  // Plain and supervised legs, paired per rep. The plain leg is the
  // baseline: instrumentation compiled in, sinks off (the default for every
  // production caller). The supervised leg is the same campaign through the
  // resilience supervisor (no checkpoint file, no budgets — pure task/fold
  // machinery), sinks off so the ratio isolates the supervisor itself.
  // The overhead gate uses the best per-rep ratio: the legs of one rep run
  // back-to-back, so a transient load spike inflates both and cancels in
  // the ratio, where a min-of-each-leg comparison would attribute it to
  // whichever leg it happened to land in.
  double plain_seconds = 0.0;
  double supervised_seconds = 0.0;
  double supervisor_ratio = 1.0;  // best paired supervised/plain ratio
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double plain = seconds_for(config, tests);
    if (rep == 0 || plain < plain_seconds) plain_seconds = plain;
    const auto supervised_start = std::chrono::steady_clock::now();
    const wsx::Result<interop::SupervisedStudyResult> supervised =
        interop::run_study_supervised(config, {});
    const std::chrono::duration<double> supervised_elapsed =
        std::chrono::steady_clock::now() - supervised_start;
    if (!supervised.ok()) {
      std::cerr << "bench_study: supervised run failed: " << supervised.error().message
                << "\n";
      return 1;
    }
    if (rep == 0 || supervised_elapsed.count() < supervised_seconds) {
      supervised_seconds = supervised_elapsed.count();
    }
    const double ratio = plain > 0.0 ? supervised_elapsed.count() / plain : 1.0;
    if (rep == 0 || ratio < supervisor_ratio) supervisor_ratio = ratio;
  }

  // Instrumented: both sinks live, same work.
  obs::Tracer tracer;
  obs::Registry registry;
  config.tracer = &tracer;
  config.metrics = &registry;
  std::size_t traced_tests = 0;
  const double traced_seconds = seconds_for(config, traced_tests);
  config.tracer = nullptr;
  config.metrics = nullptr;

  const double tests_per_sec =
      plain_seconds > 0.0 ? static_cast<double>(tests) / plain_seconds : 0.0;
  const double overhead =
      plain_seconds > 0.0 ? traced_seconds / plain_seconds - 1.0 : 0.0;
  const double supervisor_overhead = supervisor_ratio - 1.0;

  json::ObjectWriter phases;
  for (const char* name :
       {"study.phase.prepare_us", "study.phase.deploy_us", "study.phase.parse_us",
        "study.phase.wsi_check_us", "study.phase.testing_us"}) {
    phases.field(name, static_cast<std::size_t>(registry.histogram(name).sum()));
  }
  json::ObjectWriter doc;
  doc.field("benchmark", "study");
  doc.field("scale_percent", scale);
  doc.field("tests", tests);
  doc.field("seconds", plain_seconds);
  doc.field("tests_per_sec", tests_per_sec);
  doc.field("traced_seconds", traced_seconds);
  doc.field("instrumentation_overhead", overhead);
  doc.field("supervised_seconds", supervised_seconds);
  doc.field("supervisor_overhead", supervisor_overhead);
  doc.raw_field("phase_sum_us", phases.str());

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_study: cannot open " << out_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "study: " << tests << " tests in " << plain_seconds << " s ("
            << static_cast<std::size_t>(tests_per_sec) << " tests/s), traced "
            << traced_seconds << " s (overhead "
            << static_cast<long long>(overhead * 1000.0) / 10.0 << "%), supervised "
            << supervised_seconds << " s (overhead "
            << static_cast<long long>(supervisor_overhead * 1000.0) / 10.0 << "%) -> "
            << out_path << "\n";
  if (max_supervisor_overhead != 0 &&
      supervisor_overhead * 100.0 > static_cast<double>(max_supervisor_overhead)) {
    std::cerr << "bench_study: supervisor overhead "
              << static_cast<long long>(supervisor_overhead * 1000.0) / 10.0
              << "% exceeds the " << max_supervisor_overhead << "% budget\n";
    return 1;
  }
  return 0;
}
