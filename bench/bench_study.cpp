// bench_study — end-to-end study throughput with the obs pipeline.
//
// Runs the full-scale campaign twice — once with tracing/metrics off (the
// pure-harness baseline) and once with both sinks live — and writes
// BENCH_study.json: tests executed, wall seconds, tests/sec, per-phase
// wall time from the metric histograms, and the instrumentation overhead
// as a ratio. The overhead budget is 5% (docs/OBSERVABILITY.md); the JSON
// records the measured number so CI history can watch it drift.
//
//   bench_study [--scale PCT] [--threads N] [--out FILE.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "interop/study.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace wsx;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

void scale_config(interop::StudyConfig& config, std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  auto& java = config.java_spec;
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  auto& dotnet = config.dotnet_spec;
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

double seconds_for(const interop::StudyConfig& config, std::size_t& tests_out) {
  const auto start = std::chrono::steady_clock::now();
  const interop::StudyResult result = interop::run_study(config);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  tests_out = result.total_tests();
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 100;
  std::size_t threads = 0;
  std::string out_path = "BENCH_study.json";
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return 2;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_count(args[++i], threads)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      std::cerr << "usage: bench_study [--scale PCT] [--threads N] [--out FILE.json]\n";
      return 2;
    }
  }

  interop::StudyConfig config;
  if (scale != 100) scale_config(config, scale);
  config.threads = threads;

  // Warm-up run: touches every lazily-built catalog/framework singleton so
  // neither measured run pays first-use costs.
  std::size_t tests = 0;
  (void)seconds_for(config, tests);

  // Baseline: instrumentation compiled in, sinks off (the default for every
  // production caller).
  const double plain_seconds = seconds_for(config, tests);

  // Instrumented: both sinks live, same work.
  obs::Tracer tracer;
  obs::Registry registry;
  config.tracer = &tracer;
  config.metrics = &registry;
  std::size_t traced_tests = 0;
  const double traced_seconds = seconds_for(config, traced_tests);

  const double tests_per_sec =
      plain_seconds > 0.0 ? static_cast<double>(tests) / plain_seconds : 0.0;
  const double overhead =
      plain_seconds > 0.0 ? traced_seconds / plain_seconds - 1.0 : 0.0;

  json::ObjectWriter phases;
  for (const char* name :
       {"study.phase.prepare_us", "study.phase.deploy_us", "study.phase.parse_us",
        "study.phase.wsi_check_us", "study.phase.testing_us"}) {
    phases.field(name, static_cast<std::size_t>(registry.histogram(name).sum()));
  }
  json::ObjectWriter doc;
  doc.field("benchmark", "study");
  doc.field("scale_percent", scale);
  doc.field("tests", tests);
  doc.field("seconds", plain_seconds);
  doc.field("tests_per_sec", tests_per_sec);
  doc.field("traced_seconds", traced_seconds);
  doc.field("instrumentation_overhead", overhead);
  doc.raw_field("phase_sum_us", phases.str());

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_study: cannot open " << out_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "study: " << tests << " tests in " << plain_seconds << " s ("
            << static_cast<std::size_t>(tests_per_sec) << " tests/s), traced "
            << traced_seconds << " s (overhead "
            << static_cast<long long>(overhead * 1000.0) / 10.0 << "%) -> " << out_path
            << "\n";
  return 0;
}
