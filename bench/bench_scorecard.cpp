// bench_scorecard — the synthesized per-tool report card: the paper's
// steps 1-3 study + the communication extension + robustness fuzzing, one
// row per client tool. Extension artifact.
#include <iostream>

#include "interop/scorecard.hpp"

int main() {
  const wsx::interop::StudyResult study = wsx::interop::run_study();
  const wsx::interop::CommunicationResult communication =
      wsx::interop::run_communication_study();
  wsx::fuzz::FuzzConfig fuzz_config;
  fuzz_config.corpus_per_server = 5;
  const wsx::fuzz::FuzzReport fuzzing = wsx::fuzz::run_fuzz_campaign(fuzz_config);

  std::cout << wsx::interop::format_scorecard(
      wsx::interop::build_scorecard(study, communication, fuzzing));
  return 0;
}
