// bench_perf — google-benchmark micro-benchmarks for the harness itself
// (P1–P6 in DESIGN.md): XML parse/write, WSDL round trip, WS-I checking,
// artifact generation, compilation and end-to-end campaign throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "interop/study.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace {

using namespace wsx;

/// A deployed echo service reused by the micro-benches. Every benchmark
/// below measures work on this service, so an empty fallback would turn
/// the whole suite into a no-op that still reports rosy numbers — abort
/// instead if no catalog type deploys.
const frameworks::DeployedService& sample_service() {
  static const frameworks::DeployedService service = [] {
    const catalog::TypeCatalog catalog = catalog::make_java_catalog();
    const auto server = frameworks::make_server("Metro 2.3");
    for (const catalog::TypeInfo& type : catalog.types()) {
      if (server->can_deploy(type)) {
        Result<frameworks::DeployedService> deployed =
            server->deploy(frameworks::ServiceSpec{&type});
        if (deployed.ok()) return std::move(deployed.value());
      }
    }
    std::fprintf(stderr,
                 "bench_perf: no deployable type in the Java catalog — "
                 "sample_service() cannot provide a benchmark fixture\n");
    std::abort();
  }();
  return service;
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& text = sample_service().wsdl_text;
  for (auto _ : state) {
    Result<xml::Element> root = xml::parse_element(text);
    benchmark::DoNotOptimize(root.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlWrite(benchmark::State& state) {
  Result<xml::Element> root = xml::parse_element(sample_service().wsdl_text);
  for (auto _ : state) {
    const std::string text = xml::write(root.value());
    benchmark::DoNotOptimize(text.size());
  }
}
BENCHMARK(BM_XmlWrite);

void BM_WsdlRoundTrip(benchmark::State& state) {
  const std::string& text = sample_service().wsdl_text;
  for (auto _ : state) {
    Result<wsdl::Definitions> defs = wsdl::parse(text);
    benchmark::DoNotOptimize(defs.ok());
  }
}
BENCHMARK(BM_WsdlRoundTrip);

void BM_WsiCheck(benchmark::State& state) {
  const frameworks::DeployedService& service = sample_service();
  for (auto _ : state) {
    const wsi::ComplianceReport report = wsi::check(service.wsdl);
    benchmark::DoNotOptimize(report.compliant());
  }
}
BENCHMARK(BM_WsiCheck);

void BM_ArtifactGeneration(benchmark::State& state) {
  const auto client = frameworks::make_client("Oracle Metro 2.3");
  const std::string& text = sample_service().wsdl_text;
  for (auto _ : state) {
    frameworks::GenerationResult result = client->generate(text);
    benchmark::DoNotOptimize(result.produced_artifacts());
  }
}
BENCHMARK(BM_ArtifactGeneration);

void BM_ArtifactGenerationCached(benchmark::State& state) {
  // Same work as BM_ArtifactGeneration but through the parse-once pipeline:
  // the SharedDescription is built once and every generate() reuses it.
  const auto client = frameworks::make_client("Oracle Metro 2.3");
  const frameworks::SharedDescription description =
      frameworks::SharedDescription::from_deployed(sample_service());
  for (auto _ : state) {
    frameworks::GenerationResult result = client->generate(description);
    benchmark::DoNotOptimize(result.produced_artifacts());
  }
}
BENCHMARK(BM_ArtifactGenerationCached);

void BM_SharedDescriptionBuild(benchmark::State& state) {
  // The one-time per-service cost the cache amortises: parse + feature
  // analysis + server-model features + WS-I verdict.
  const frameworks::DeployedService& service = sample_service();
  for (auto _ : state) {
    frameworks::SharedDescription description =
        frameworks::SharedDescription::from_deployed(service);
    benchmark::DoNotOptimize(description.parsed_ok());
  }
}
BENCHMARK(BM_SharedDescriptionBuild);

void BM_Compilation(benchmark::State& state) {
  const auto client = frameworks::make_client("Apache Axis1 1.4");
  frameworks::GenerationResult generated = client->generate(sample_service().wsdl_text);
  const auto compiler = compilers::make_compiler(code::Language::kJava);
  for (auto _ : state) {
    DiagnosticSink sink = compiler->compile(*generated.artifacts);
    benchmark::DoNotOptimize(sink.has_errors());
  }
}
BENCHMARK(BM_Compilation);

void BM_XmlParseScaling(benchmark::State& state) {
  // Parse cost vs document size: replicate the sample schema N times.
  Result<xml::Element> base = xml::parse_element(sample_service().wsdl_text);
  xml::Element root{"corpus"};
  for (int64_t i = 0; i < state.range(0); ++i) root.add_child(base.value());
  const std::string text = xml::write(root);
  for (auto _ : state) {
    Result<xml::Element> parsed = xml::parse_element(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_XmlParseScaling)->Arg(1)->Arg(8)->Arg(64);

void BM_WsiCheckThroughput(benchmark::State& state) {
  // WS-I checking over a batch of descriptions (per-service cost in the
  // campaign's description step).
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  std::vector<frameworks::DeployedService> services;
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (services.size() >= static_cast<std::size_t>(state.range(0))) break;
    if (!server->can_deploy(type)) continue;
    Result<frameworks::DeployedService> deployed =
        server->deploy(frameworks::ServiceSpec{&type});
    if (deployed.ok()) services.push_back(std::move(deployed.value()));
  }
  for (auto _ : state) {
    std::size_t compliant = 0;
    for (const frameworks::DeployedService& service : services) {
      if (wsi::check(service.wsdl).compliant()) ++compliant;
    }
    benchmark::DoNotOptimize(compliant);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * services.size()));
}
BENCHMARK(BM_WsiCheckThroughput)->Arg(16)->Arg(128);

void BM_CatalogGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const catalog::TypeCatalog catalog = catalog::make_java_catalog();
    benchmark::DoNotOptimize(catalog.size());
  }
}
BENCHMARK(BM_CatalogGeneration)->Unit(benchmark::kMillisecond);

void BM_CampaignScaled(benchmark::State& state) {
  // A 1/20-scale study (same structure, smaller populations) per iteration.
  interop::StudyConfig config;
  config.java_spec.plain_beans = 89;
  config.java_spec.throwable_clean = 20;
  config.java_spec.throwable_raw = 3;
  config.java_spec.raw_generic_beans = 9;
  config.java_spec.anytype_array_beans = 2;
  config.java_spec.no_default_ctor = 30;
  config.java_spec.abstract_classes = 15;
  config.java_spec.interfaces = 20;
  config.java_spec.generic_types = 9;
  config.dotnet_spec.plain_types = 105;
  config.dotnet_spec.dataset_plain = 3;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 14;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 200;
  config.dotnet_spec.no_default_ctor = 175;
  config.dotnet_spec.generic_types = 104;
  config.dotnet_spec.abstract_classes = 60;
  config.dotnet_spec.interfaces = 40;
  for (auto _ : state) {
    const interop::StudyResult result = interop::run_study(config);
    benchmark::DoNotOptimize(result.total_tests());
  }
}
BENCHMARK(BM_CampaignScaled)->Unit(benchmark::kMillisecond);

}  // namespace
