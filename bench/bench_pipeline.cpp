// bench_pipeline — the parse-once pipeline benchmark; emits
// BENCH_pipeline.json.
//
// Measures the per-stage cost of the description pipeline (P1–P6 in
// DESIGN.md terms) in ns/byte of WSDL text, plus end-to-end campaign
// throughput with the parse cache on and off:
//
//   p1_xml_parse            raw XML tree construction
//   p2_wsdl_parse           XML + WSDL object model
//   p3_wsi_check            WS-I Basic Profile verdict (per parsed model)
//   p4_description_build    SharedDescription::from_deployed (the cache's
//                           one-time per-service cost)
//   p5_generate_uncached    client generate() from text (parse every call)
//   p6_generate_cached      client generate() from a SharedDescription
//
// plus the SOAP envelope hot path (the per-call cost every communication /
// chaos / propcheck campaign pays on each request and response):
//
//   env_dom_parse           envelope parse via the DOM path (--no-stream)
//   env_stream_parse        envelope parse via the streaming pull tokenizer
//   env_stream_sniff        zero-DOM request validation (validate_request_text)
//   envelopes_per_sec_16_workers
//                           streaming parse throughput across 16 workers
//
// With --check BASELINE.json the run compares itself against a committed
// baseline and exits 1 when any ns/byte stage regresses past --tolerance
// percent (or throughput drops past it) — the CI regression gate.
//
//   bench_pipeline [--scale PCT] [--threads N] [--out FILE.json]
//                  [--check BASELINE.json] [--tolerance PCT]
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "common/json.hpp"
#include "common/pool.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "interop/study.hpp"
#include "soap/envelope.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"
#include "xml/parser.hpp"

namespace {

using namespace wsx;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

void scale_config(interop::StudyConfig& config, std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  auto& java = config.java_spec;
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  auto& dotnet = config.dotnet_spec;
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

/// The fixture every stage runs against: the first catalog type that both
/// deploys on Metro and generates clean artifacts for the Metro client, so
/// p5/p6 time real artifact construction rather than an early refusal.
/// Aborting on a missing fixture keeps a broken catalog from turning the
/// benchmark into a no-op.
frameworks::DeployedService sample_service() {
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  const auto client = frameworks::make_client("Oracle Metro 2.3");
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (!server->can_deploy(type)) continue;
    Result<frameworks::DeployedService> deployed =
        server->deploy(frameworks::ServiceSpec{&type});
    if (!deployed.ok()) continue;
    if (client->generate(deployed->wsdl_text).produced_artifacts()) {
      return std::move(deployed.value());
    }
  }
  std::cerr << "bench_pipeline: no cleanly consumable type in the Java catalog\n";
  std::exit(1);
}

/// Runs `work` repeatedly until ~0.3 s of wall time has accumulated and
/// returns the mean nanoseconds per call.
template <typename Fn>
double time_ns(Fn&& work) {
  using clock = std::chrono::steady_clock;
  // Warm caches and pick an iteration batch that amortises clock reads.
  work();
  std::size_t batch = 1;
  for (;;) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < batch; ++i) work();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
            .count());
    if (ns >= 3e8 || batch >= (1u << 24)) return ns / static_cast<double>(batch);
    batch *= 2;
  }
}

double campaign_tests_per_sec(interop::StudyConfig config, bool cache,
                              std::size_t* tests_out) {
  config.parse_cache = cache;
  const auto start = std::chrono::steady_clock::now();
  const interop::StudyResult result = interop::run_study(config);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (tests_out != nullptr) *tests_out = result.total_tests();
  return elapsed.count() > 0.0 ? static_cast<double>(result.total_tests()) / elapsed.count()
                               : 0.0;
}

struct Measurement {
  std::string name;
  double value = 0.0;
  /// true: smaller is better (ns/byte); false: larger is better (rates).
  bool lower_is_better = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 20;
  std::size_t threads = 0;
  std::size_t tolerance = 40;
  std::string out_path = "BENCH_pipeline.json";
  std::string check_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return 2;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_count(args[++i], threads)) return 2;
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tolerance)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--check" && i + 1 < args.size()) {
      check_path = args[++i];
    } else {
      std::cerr << "usage: bench_pipeline [--scale PCT] [--threads N] "
                   "[--out FILE.json] [--check BASELINE.json] [--tolerance PCT]\n";
      return 2;
    }
  }

  const frameworks::DeployedService service = sample_service();
  const std::string& text = service.wsdl_text;
  const double bytes = static_cast<double>(text.size());
  const auto client = frameworks::make_client("Oracle Metro 2.3");
  const frameworks::SharedDescription description =
      frameworks::SharedDescription::from_deployed(service);

  std::vector<Measurement> measurements;
  measurements.push_back({"p1_xml_parse_ns_per_byte", time_ns([&] {
                            Result<xml::Element> root = xml::parse_element(text);
                            if (!root.ok()) std::exit(1);
                          }) / bytes});
  measurements.push_back({"p2_wsdl_parse_ns_per_byte", time_ns([&] {
                            Result<wsdl::Definitions> defs = wsdl::parse(text);
                            if (!defs.ok()) std::exit(1);
                          }) / bytes});
  measurements.push_back({"p3_wsi_check_ns_per_byte", time_ns([&] {
                            const wsi::ComplianceReport report = wsi::check(service.wsdl);
                            if (report.summary().empty()) std::exit(1);
                          }) / bytes});
  measurements.push_back({"p4_description_build_ns_per_byte", time_ns([&] {
                            const frameworks::SharedDescription built =
                                frameworks::SharedDescription::from_deployed(service);
                            if (!built.parsed_ok()) std::exit(1);
                          }) / bytes});
  measurements.push_back({"p5_generate_uncached_ns_per_byte", time_ns([&] {
                            frameworks::GenerationResult result = client->generate(text);
                            if (!result.produced_artifacts()) std::exit(1);
                          }) / bytes});
  measurements.push_back({"p6_generate_cached_ns_per_byte", time_ns([&] {
                            frameworks::GenerationResult result =
                                client->generate(description);
                            if (!result.produced_artifacts()) std::exit(1);
                          }) / bytes});

  // The envelope hot path: a real request off the same fixture service.
  Result<soap::Envelope> request =
      soap::build_request(service.wsdl, "echo", {{"arg0", "benchmark payload"}});
  if (!request.ok()) {
    std::cerr << "bench_pipeline: cannot build the envelope fixture\n";
    return 1;
  }
  const std::string envelope_text = soap::write(*request);
  const double envelope_bytes = static_cast<double>(envelope_text.size());

  soap::set_streaming(false);
  measurements.push_back({"env_dom_parse_ns_per_byte", time_ns([&] {
                            Result<soap::Envelope> env = soap::parse(envelope_text);
                            if (!env.ok()) std::exit(1);
                          }) / envelope_bytes});
  soap::set_streaming(true);
  const double stream_parse_ns = time_ns([&] {
    Result<soap::Envelope> env = soap::parse(envelope_text);
    if (!env.ok()) std::exit(1);
  });
  measurements.push_back({"env_stream_parse_ns_per_byte", stream_parse_ns / envelope_bytes});
  measurements.push_back({"env_stream_sniff_ns_per_byte", time_ns([&] {
                            Result<std::vector<soap::ValidationIssue>> issues =
                                soap::validate_request_text(service.wsdl, envelope_text);
                            if (!issues.ok()) std::exit(1);
                          }) / envelope_bytes});

  // Streaming parse throughput at 16 workers: each worker parses its slice
  // of a fixed envelope batch; the rate is envelopes over wall time.
  {
    const std::size_t per_slice =
        std::max<std::size_t>(1, static_cast<std::size_t>(3e8 / (stream_parse_ns * 16.0)));
    const std::size_t total = per_slice * 16;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::size_t> parsed = parallel_slices(
        16, 16, [&](std::size_t begin, std::size_t end) {
          std::size_t ok = 0;
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t n = 0; n < per_slice; ++n) {
              if (soap::parse(envelope_text).ok()) ++ok;
            }
          }
          return ok;
        });
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::size_t ok_total = 0;
    for (const std::size_t ok : parsed) ok_total += ok;
    if (ok_total != total) {
      std::cerr << "bench_pipeline: envelope worker sweep dropped parses\n";
      return 1;
    }
    measurements.push_back({"envelopes_per_sec_16_workers",
                            elapsed.count() > 0.0
                                ? static_cast<double>(total) / elapsed.count()
                                : 0.0,
                            /*lower_is_better=*/false});
  }

  interop::StudyConfig config;
  if (scale != 100) scale_config(config, scale);
  config.threads = threads;
  std::size_t tests = 0;
  (void)campaign_tests_per_sec(config, true, &tests);  // warm-up
  const double cached_rate = campaign_tests_per_sec(config, true, &tests);
  const double uncached_rate = campaign_tests_per_sec(config, false, nullptr);
  measurements.push_back({"campaign_cached_tests_per_sec", cached_rate,
                          /*lower_is_better=*/false});
  measurements.push_back({"campaign_uncached_tests_per_sec", uncached_rate,
                          /*lower_is_better=*/false});

  json::ObjectWriter doc;
  doc.field("benchmark", "pipeline");
  doc.field("scale_percent", scale);
  doc.field("tests", tests);
  doc.field("cache_speedup",
            uncached_rate > 0.0 ? cached_rate / uncached_rate : 0.0);
  for (const Measurement& m : measurements) doc.field(m.name, m.value);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_pipeline: cannot open " << out_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  for (const Measurement& m : measurements) {
    std::cout << m.name << " = " << m.value << "\n";
  }
  std::cout << "pipeline: " << tests << " tests, cache speedup "
            << (uncached_rate > 0.0 ? cached_rate / uncached_rate : 0.0) << "x -> "
            << out_path << "\n";

  if (check_path.empty()) return 0;

  // Regression gate: each measurement may drift up to `tolerance` percent
  // in its bad direction relative to the committed baseline.
  std::ifstream baseline_file(check_path);
  if (!baseline_file) {
    std::cerr << "bench_pipeline: cannot open baseline " << check_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << baseline_file.rdbuf();
  Result<json::Value> baseline = json::parse(buffer.str());
  if (!baseline.ok()) {
    std::cerr << "bench_pipeline: baseline: " << baseline.error().message << "\n";
    return 1;
  }
  const double slack = static_cast<double>(tolerance) / 100.0;
  bool regressed = false;
  for (const Measurement& m : measurements) {
    const json::Value* reference = baseline->find(m.name);
    if (reference == nullptr || !reference->is_number()) {
      std::cerr << "bench_pipeline: baseline lacks " << m.name << "\n";
      regressed = true;
      continue;
    }
    const double limit = m.lower_is_better ? reference->as_number() * (1.0 + slack)
                                           : reference->as_number() * (1.0 - slack);
    const bool bad = m.lower_is_better ? m.value > limit : m.value < limit;
    if (bad) {
      std::cerr << "bench_pipeline: REGRESSION " << m.name << " = " << m.value
                << " vs baseline " << reference->as_number() << " (limit " << limit
                << ")\n";
      regressed = true;
    }
  }
  if (!regressed) std::cout << "pipeline: within " << tolerance << "% of baseline\n";
  return regressed ? 1 : 0;
}
