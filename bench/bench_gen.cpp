// bench_gen — the WSDL-guided property-based generator benchmark; emits
// BENCH_gen.json.
//
// Measures the cost of the generative path the propcheck campaign adds in
// front of the communication phase:
//
//   value_gen_ns_per_value        drawing one random member of a builtin
//                                 lexical space, round-robin over all
//                                 builtins
//   corpus_gen_ns_per_case        compiling one schema-valid request from
//                                 a deployed description (wrapper
//                                 resolution + per-type draws)
//   validate_ns_per_case          re-checking one generated case against
//                                 the service's XSD contract
//   shrink_ns_per_counterexample  minimising one sabotaged failing case to
//                                 a local minimum under validate_case
//
// With --check BASELINE.json the run compares itself against a committed
// baseline and exits 1 when any per-unit cost regresses past --tolerance
// percent — the CI gate.
//
//   bench_gen [--scale PCT] [--out FILE.json]
//             [--check BASELINE.json] [--tolerance PCT]
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "common/json.hpp"
#include "frameworks/registry.hpp"
#include "gen/request_gen.hpp"
#include "gen/shrink.hpp"
#include "gen/value_gen.hpp"

namespace {

using namespace wsx;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

catalog::JavaCatalogSpec scaled_spec(std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  catalog::JavaCatalogSpec spec;
  spec.plain_beans = scaled(spec.plain_beans);
  spec.throwable_clean = scaled(spec.throwable_clean);
  spec.throwable_raw = scaled(spec.throwable_raw);
  spec.raw_generic_beans = scaled(spec.raw_generic_beans);
  spec.anytype_array_beans = scaled(spec.anytype_array_beans);
  spec.no_default_ctor = scaled(spec.no_default_ctor);
  spec.abstract_classes = scaled(spec.abstract_classes);
  spec.interfaces = scaled(spec.interfaces);
  spec.generic_types = scaled(spec.generic_types);
  return spec;
}

/// Runs `work` repeatedly until ~0.3 s of wall time has accumulated and
/// returns the mean nanoseconds per call.
template <typename Fn>
double time_ns(Fn&& work) {
  using clock = std::chrono::steady_clock;
  work();
  std::size_t batch = 1;
  for (;;) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < batch; ++i) work();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
            .count());
    if (ns >= 3e8 || batch >= (1u << 24)) return ns / static_cast<double>(batch);
    batch *= 2;
  }
}

struct Measurement {
  std::string name;
  double value = 0.0;
  /// true: smaller is better (all of bench_gen's units are costs).
  bool lower_is_better = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 100;
  std::size_t tolerance = 60;
  std::string out_path = "BENCH_gen.json";
  std::string check_path;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return 2;
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tolerance)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--check" && i + 1 < args.size()) {
      check_path = args[++i];
    } else {
      std::cerr << "usage: bench_gen [--scale PCT] [--out FILE.json] "
                   "[--check BASELINE.json] [--tolerance PCT]\n";
      return 2;
    }
  }

  // The deploy pass is the fixture, not the subject: generation starts
  // from already-published descriptions.
  const catalog::TypeCatalog catalog = catalog::make_java_catalog(scaled_spec(scale));
  const auto server = frameworks::make_server("Metro 2.3");
  std::vector<frameworks::DeployedService> services;
  for (const catalog::TypeInfo& type : catalog.types()) {
    Result<frameworks::DeployedService> deployed =
        server->deploy(frameworks::ServiceSpec{&type});
    if (deployed.ok()) services.push_back(std::move(deployed.value()));
  }
  if (services.empty()) {
    std::cerr << "bench_gen: empty corpus\n";
    return 1;
  }

  std::vector<Measurement> measurements;

  // Value draws round-robin over every builtin's lexical space.
  const std::vector<xsd::Builtin> builtins = [] {
    std::vector<xsd::Builtin> all;
    for (int i = 0; i <= static_cast<int>(xsd::Builtin::kQNameType); ++i) {
      all.push_back(static_cast<xsd::Builtin>(i));
    }
    return all;
  }();
  gen::Rng value_rng(7, "bench|value");
  std::size_t next_builtin = 0;
  measurements.push_back({"value_gen_ns_per_value", time_ns([&] {
                            const std::string value =
                                gen::generate_value(builtins[next_builtin], value_rng);
                            next_builtin = (next_builtin + 1) % builtins.size();
                            if (value.size() > 4096) std::exit(1);
                          })});

  gen::CorpusOptions options;
  options.cases_per_operation = 2;
  std::vector<std::pair<const frameworks::DeployedService*, gen::GeneratedCase>> corpus;
  for (const frameworks::DeployedService& service : services) {
    for (gen::GeneratedCase& generated : gen::generate_corpus(service, options)) {
      corpus.emplace_back(&service, std::move(generated));
    }
  }
  if (corpus.empty()) {
    std::cerr << "bench_gen: no generated cases\n";
    return 1;
  }
  const double cases = static_cast<double>(corpus.size());

  measurements.push_back({"corpus_gen_ns_per_case", time_ns([&] {
                            std::size_t generated = 0;
                            for (const frameworks::DeployedService& service : services) {
                              generated += gen::generate_corpus(service, options).size();
                            }
                            if (generated != corpus.size()) std::exit(1);
                          }) / cases});

  measurements.push_back({"validate_ns_per_case", time_ns([&] {
                            for (const auto& [service, generated] : corpus) {
                              if (gen::validate_case(*service, generated)) std::exit(1);
                            }
                          }) / cases});

  // Shrinking starts from a sabotaged failing case: the same injected
  // schema-violation bug the propcheck test pack proves gets minimised.
  gen::CorpusOptions sabotage = options;
  sabotage.sabotage = true;
  const frameworks::DeployedService* failing_service = nullptr;
  gen::GeneratedCase failing;
  for (const frameworks::DeployedService& service : services) {
    for (gen::GeneratedCase& generated : gen::generate_corpus(service, sabotage)) {
      if (gen::validate_case(service, generated)) {
        failing_service = &service;
        failing = std::move(generated);
        break;
      }
    }
    if (failing_service != nullptr) break;
  }
  if (failing_service == nullptr) {
    std::cerr << "bench_gen: sabotage produced no failing case\n";
    return 1;
  }
  const gen::CaseFails fails = [&](const gen::GeneratedCase& candidate) {
    return gen::validate_case(*failing_service, candidate).has_value();
  };
  measurements.push_back({"shrink_ns_per_counterexample", time_ns([&] {
                            const gen::GeneratedCase minimal =
                                gen::shrink_case(failing, fails);
                            if (!fails(minimal)) std::exit(1);
                          })});

  json::ObjectWriter doc;
  doc.field("benchmark", "gen");
  doc.field("scale_percent", scale);
  doc.field("services", services.size());
  doc.field("cases", corpus.size());
  for (const Measurement& m : measurements) doc.field(m.name, m.value);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_gen: cannot open " << out_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  for (const Measurement& m : measurements) {
    std::cout << m.name << " = " << m.value << "\n";
  }
  std::cout << "gen: " << services.size() << " services, " << corpus.size()
            << " cases -> " << out_path << "\n";

  if (check_path.empty()) return 0;

  // Regression gate: each measurement may drift up to `tolerance` percent
  // in its bad direction relative to the committed baseline.
  std::ifstream baseline_file(check_path);
  if (!baseline_file) {
    std::cerr << "bench_gen: cannot open baseline " << check_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << baseline_file.rdbuf();
  Result<json::Value> baseline = json::parse(buffer.str());
  if (!baseline.ok()) {
    std::cerr << "bench_gen: baseline: " << baseline.error().message << "\n";
    return 1;
  }
  const double slack = static_cast<double>(tolerance) / 100.0;
  bool regressed = false;
  for (const Measurement& m : measurements) {
    const json::Value* reference = baseline->find(m.name);
    if (reference == nullptr || !reference->is_number()) {
      std::cerr << "bench_gen: baseline lacks " << m.name << "\n";
      regressed = true;
      continue;
    }
    const double limit = m.lower_is_better ? reference->as_number() * (1.0 + slack)
                                           : reference->as_number() * (1.0 - slack);
    const bool bad = m.lower_is_better ? m.value > limit : m.value < limit;
    if (bad) {
      std::cerr << "bench_gen: REGRESSION " << m.name << " = " << m.value
                << " vs baseline " << reference->as_number() << " (limit " << limit
                << ")\n";
      regressed = true;
    }
  }
  if (!regressed) std::cout << "gen: within " << tolerance << "% of baseline\n";
  return regressed ? 1 : 0;
}
