// bench_findings — reruns the full campaign and reports the paper's §IV
// headline aggregates and derived findings, plus the WS-I-gate ablation the
// paper argues for (reject WS-I-failing/unusable descriptions at deploy
// time). Experiment E5 + ablations.
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

int main() {
  const wsx::interop::StudyResult result = wsx::interop::run_study();
  std::cout << wsx::interop::format_findings(result);

  // Ablation: what a deploy-time WS-I gate would have bought. Every error
  // observed against a flagged description would have been prevented.
  std::cout << "\nAblation — deploy-time WS-I gate (paper §IV.A advocacy)\n";
  std::cout << "  generation errors prevented by the gate: "
            << result.generation_errors_on_flagged << " of "
            << (result.generation_errors_on_flagged + result.generation_errors_on_compliant)
            << "\n";
  std::cout << "  unusable (zero-operation) descriptions a minOccurs>=1 rule would reject: ";
  std::size_t zero_ops = 0;
  for (const auto& server : result.servers) zero_ops += server.zero_operation_services;
  std::cout << zero_ops << "\n";
  return 0;
}
