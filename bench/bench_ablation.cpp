// bench_ablation — ablations of the design choices DESIGN.md calls out:
//   A1: the deploy-time WS-I gate the paper advocates (§IV.A);
//   A2: JBossWS adopting Metro's refusal of operation-less descriptions;
//   A3: a hypothetical case-sensitive Visual Basic compiler (how much of
//       the same-platform failure count is due to one language rule).
// Each ablation reruns the full campaign with one behaviour changed and
// reports the delta against the paper-faithful baseline.
#include <iostream>

#include "frameworks/dotnet_client.hpp"
#include "frameworks/jbossws_server.hpp"
#include "frameworks/shared_description.hpp"
#include "frameworks/registry.hpp"
#include "interop/study.hpp"

using namespace wsx;

namespace {

/// A3's client: wsdl.exe targeting VB, but compiled with case-sensitive
/// member rules (i.e. csc semantics) — isolates the identifier-case rule.
class CaseSensitiveVbClient final : public frameworks::ClientFramework {
 public:
  std::string name() const override {
    return ".NET Framework 4.0.30319.17929 (Visual Basic .NET)";
  }
  std::string tool() const override { return "wsdl.exe"; }
  code::Language language() const override { return code::Language::kCSharp; }
  frameworks::GenerationResult generate(
      const frameworks::SharedDescription& description) const override {
    return inner_.generate(description);
  }

 private:
  frameworks::DotNetClient inner_{code::Language::kVisualBasic};
};

std::size_t java_generation_errors(const interop::ServerResult& server) {
  return server.generation_totals().errors;
}

}  // namespace

int main() {
  std::cout << "Ablation study (full-scale campaign per variant)\n\n";

  const interop::StudyResult baseline = interop::run_study();
  std::cout << "baseline (paper-faithful):\n";
  std::cout << "  interoperability errors: " << baseline.total_interop_errors() << "\n";
  std::cout << "  same-platform failures:  " << baseline.same_platform_failures << "\n\n";

  // --- A1: deploy-time WS-I gate. ---
  interop::StudyConfig gated;
  gated.wsi_deploy_gate = true;
  const interop::StudyResult with_gate = interop::run_study(gated);
  std::size_t gate_rejections = 0;
  for (const interop::ServerResult& server : with_gate.servers) {
    gate_rejections += server.gate_rejections;
  }
  std::cout << "A1 — deploy-time WS-I gate (paper §IV.A advocacy):\n";
  std::cout << "  descriptions withdrawn at deployment: " << gate_rejections << "\n";
  std::cout << "  interoperability errors: " << with_gate.total_interop_errors() << " (was "
            << baseline.total_interop_errors() << ", -"
            << baseline.total_interop_errors() - with_gate.total_interop_errors() << ")\n";
  std::cout << "  remaining errors come from WS-I-compliant descriptions — the gate is\n"
               "  necessary but not sufficient, as the paper concludes.\n\n";

  // --- A2: JBossWS refuses operation-less descriptions. ---
  {
    const catalog::TypeCatalog java = catalog::make_java_catalog();
    const auto services = frameworks::make_services(java);
    const auto clients = frameworks::make_clients();
    const interop::StudyConfig config;

    const frameworks::JBossWsServer lenient;  // paper behaviour
    const frameworks::JBossWsServer strict{true};
    const interop::ServerResult before =
        interop::run_server_campaign(lenient, services, clients, config);
    const interop::ServerResult after =
        interop::run_server_campaign(strict, services, clients, config);
    std::cout << "A2 — JBossWS refuses zero-operation deployments (Metro's behaviour):\n";
    std::cout << "  deployed services: " << before.services_deployed << " -> "
              << after.services_deployed << "\n";
    std::cout << "  description-step warnings: " << before.description_warnings << " -> "
              << after.description_warnings << "\n";
    std::cout << "  generation errors: " << java_generation_errors(before) << " -> "
              << java_generation_errors(after)
              << "  (the unusable-WSDL errors disappear at the source)\n\n";
  }

  // --- A3: case-sensitive VB compiler. ---
  {
    const catalog::TypeCatalog dotnet = catalog::make_dotnet_catalog();
    const auto services = frameworks::make_services(dotnet);
    const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
    const interop::StudyConfig config;

    std::vector<std::unique_ptr<frameworks::ClientFramework>> vb_baseline;
    vb_baseline.push_back(
        std::make_unique<frameworks::DotNetClient>(code::Language::kVisualBasic));
    std::vector<std::unique_ptr<frameworks::ClientFramework>> vb_fixed;
    vb_fixed.push_back(std::make_unique<CaseSensitiveVbClient>());

    const interop::ServerResult before =
        interop::run_server_campaign(*server, services, vb_baseline, config);
    const interop::ServerResult after =
        interop::run_server_campaign(*server, services, vb_fixed, config);
    std::cout << "A3 — Visual Basic with case-sensitive identifiers:\n";
    std::cout << "  VB compilation errors on its own platform: "
              << before.cells.front().compilation.errors << " -> "
              << after.cells.front().compilation.errors
              << "  (every VB-only failure is the identifier-case rule)\n";
  }
  return 0;
}
