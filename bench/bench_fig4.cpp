// bench_fig4 — reruns the full campaign and regenerates Fig. 4 (overview of
// the experimental results), paper vs measured. Experiment E3.
#include <chrono>
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

int main() {
  const auto start = std::chrono::steady_clock::now();
  const wsx::interop::StudyResult result = wsx::interop::run_study();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::cout << wsx::interop::format_fig4(result);
  std::cout << "campaign: " << result.total_tests() << " tests in " << elapsed.count()
            << " ms\n";
  return 0;
}
