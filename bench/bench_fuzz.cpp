// bench_fuzz — WSDL robustness fuzzing across all client tools. Extension
// experiment: the paper injects faults implicitly through the native-type
// corpus; this harness injects them explicitly through mutation operators
// and measures (a) which tools detect which fault classes and (b) how much
// of the fault space a deploy-time WS-I gate would catch.
#include <iostream>

#include "fuzz/campaign.hpp"

int main() {
  wsx::fuzz::FuzzConfig config;
  config.corpus_per_server = 5;
  const wsx::fuzz::FuzzReport report = wsx::fuzz::run_fuzz_campaign(config);
  std::cout << wsx::fuzz::format_fuzz(report);
  return 0;
}
