// bench_table2 — regenerates Table II (client-side frameworks). Experiment E2.
#include <iostream>

#include "interop/report.hpp"

int main() {
  std::cout << wsx::interop::format_table2();
  return 0;
}
