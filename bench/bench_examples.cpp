// bench_examples — reproduces the technical examples of §IV.B one by one:
// each disclosed issue is driven end-to-end through the real pipeline and
// the observed diagnostic is printed next to the paper's description.
// Experiment E6.
#include <iostream>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

namespace {

/// Deploys `type_name` on `server` and runs `client` against it, printing
/// the step where the pipeline broke.
void drive(const frameworks::ServerFramework& server, const catalog::TypeCatalog& types,
           std::string_view type_name, const frameworks::ClientFramework& client,
           const std::string& paper_quote) {
  std::cout << "--- " << paper_quote << "\n";
  std::cout << "    service type " << type_name << " on " << server.name() << ", client "
            << client.name() << "\n";
  const catalog::TypeInfo* type = types.find(type_name);
  if (type == nullptr) {
    std::cout << "    (type not in catalog)\n";
    return;
  }
  frameworks::ServiceSpec spec{type};
  Result<frameworks::DeployedService> deployed = server.deploy(spec);
  if (!deployed.ok()) {
    std::cout << "    deployment refused: " << deployed.error().message << "\n\n";
    return;
  }
  const wsi::ComplianceReport wsi_report = wsi::check(deployed->wsdl);
  std::cout << "    WS-I check: " << wsi_report.summary() << "\n";
  frameworks::GenerationResult generation = client.generate(deployed->wsdl_text);
  for (const Diagnostic& diagnostic : generation.diagnostics.diagnostics()) {
    std::cout << "    [generation " << to_string(diagnostic.severity) << "] "
              << diagnostic.code << ": " << diagnostic.message << "\n";
  }
  if (!generation.produced_artifacts() || generation.diagnostics.has_errors()) {
    std::cout << "\n";
    return;
  }
  if (client.requires_compilation()) {
    auto compiler = compilers::make_compiler(client.language());
    const DiagnosticSink compile_diags = compiler->compile(*generation.artifacts);
    if (compile_diags.empty()) {
      std::cout << "    compilation: clean\n";
    }
    for (const Diagnostic& diagnostic : compile_diags.diagnostics()) {
      std::cout << "    [compile " << to_string(diagnostic.severity) << "] " << diagnostic.code
                << ": " << diagnostic.message << "\n";
    }
  } else {
    const DiagnosticSink inst = compilers::check_instantiation(*generation.artifacts);
    if (inst.empty()) {
      std::cout << "    instantiation: clean\n";
    }
    for (const Diagnostic& diagnostic : inst.diagnostics()) {
      std::cout << "    [instantiation " << to_string(diagnostic.severity) << "] "
                << diagnostic.code << ": " << diagnostic.message << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const catalog::TypeCatalog java = catalog::make_java_catalog();
  const catalog::TypeCatalog dotnet = catalog::make_dotnet_catalog();
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  const frameworks::ServerFramework& metro = *servers[0];
  const frameworks::ServerFramework& jbossws = *servers[1];
  const frameworks::ServerFramework& wcf = *servers[2];

  std::cout << "Technical examples of disclosed issues (paper §IV.B)\n\n";

  drive(metro, java, catalog::java_names::kW3CEndpointReference, *clients[0],
        "WSDL for W3CEndpointReference fails the WS-I check; client generation errors");
  drive(metro, java, catalog::java_names::kSimpleDateFormat, *clients[8],
        "WSDL for SimpleDateFormat fails WS-I; gSOAP's wsdl2h rejects it");
  drive(metro, java, catalog::java_names::kFuture, *clients[0],
        "GlassFish refused to deploy the operation-less Future service");
  drive(jbossws, java, catalog::java_names::kFuture, *clients[0],
        "JBoss deploys a WS-I-compliant WSDL without operations; Metro cannot use it");
  drive(jbossws, java, catalog::java_names::kFuture, *clients[10],
        "suds generates a client object without methods for the operation-less WSDL");
  // Use a concrete Throwable-derived type from the generated population.
  for (const catalog::TypeInfo& type : java.types()) {
    if (type.has(catalog::Trait::kThrowableDerived) &&
        !type.has(catalog::Trait::kRawGenericApi)) {
      drive(jbossws, java, type.qualified_name(), *clients[1],
            "Axis1 artifacts for Exception/Error services fail to compile (889 errors)");
      break;
    }
  }
  drive(metro, java, catalog::java_names::kXmlGregorianCalendar, *clients[2],
        "Axis2 drops the local_ suffix for XMLGregorianCalendar parameters");
  drive(metro, java, catalog::java_names::kNameValuePair, *clients[6],
        "VB.NET artifacts collide on members differing only in case");
  drive(wcf, dotnet, catalog::dotnet_names::kDataTable, *clients[0],
        "WS-I-compliant s:any services break Metro/CXF/JBoss generation");
  drive(wcf, dotnet, catalog::dotnet_names::kDataTable, *clients[2],
        "Axis2 generates a duplicate extraElement member for the double wildcard");
  drive(wcf, dotnet, catalog::dotnet_names::kSocketError, *clients[2],
        "Axis2 enum wrapper declares its backing member twice (SocketError)");
  for (const catalog::TypeInfo& type : dotnet.types()) {
    if (type.has(catalog::Trait::kDataSetSchema)) {
      drive(wcf, dotnet, type.qualified_name(), *clients[0],
            "s:schema / s:lang references are not recognized by the Java stacks");
      break;
    }
  }
  for (const catalog::TypeInfo& type : dotnet.types()) {
    if (type.has(catalog::Trait::kCompilerPathological)) {
      drive(wcf, dotnet, type.qualified_name(), *clients[7],
            "the JScript compilation tool crashed: '131 INTERNAL COMPILER CRASH'");
      break;
    }
  }
  for (const catalog::TypeInfo& type : dotnet.types()) {
    if (type.has(catalog::Trait::kCaseCollidingFields)) {
      drive(wcf, dotnet, type.qualified_name(), *clients[6],
            "VB.NET fails 4 services of its own platform (System.Web.UI.WebControls)");
      break;
    }
  }
  return 0;
}
