// bench_chaos — the wire-fault resilience study (experiment X5). Runs the
// chaos campaign in two phases and emits BENCH_chaos.json so the robustness
// trajectory is machine-readable across commits:
//
//   classic       the default plan (all fault kinds, documented per-server
//                 version policies, pure-1.1 traffic)
//   version_skew  the --versions axis: one round per server under each of
//                 strict/relaxed/shaded while clients dress their calls per
//                 their own documented policy — the downgrade-recovery and
//                 version-mismatch numbers come from this phase
//
// Every number lives on the virtual clock, so the report is byte-
// deterministic at any worker count and the CI gate can run with
// --tolerance 0: any drift is a behaviour change, not runner noise. With
// --check BASELINE.json the run compares each scalar against the committed
// baseline and exits 1 when it drifts past --tolerance percent in either
// direction. Refresh the baseline with:
//   bench_chaos --scale 25 --out bench/baselines/BENCH_chaos.json
//
//   bench_chaos [--scale PCT] [--jobs N] [--out FILE.json]
//               [--check BASELINE.json] [--tolerance PCT]
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/policy.hpp"
#include "common/json.hpp"
#include "frameworks/version_policy.hpp"

namespace {

using namespace wsx;

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

void apply_scale(chaos::ChaosConfig& config, std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  auto& java = config.java_spec;
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  auto& dotnet = config.dotnet_spec;
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

/// One scalar the baseline gate compares. All chaos numbers are virtual-
/// clock deterministic, so drift in either direction is a regression.
struct Measurement {
  std::string name;
  double value = 0.0;
};

void tally(const chaos::ChaosResult& result, const std::string& prefix,
           std::vector<Measurement>& out) {
  std::size_t challenged = 0;
  std::size_t challenged_ok = 0;
  std::size_t downgraded = 0;
  std::size_t version_mismatch = 0;
  std::size_t retransmits = 0;
  std::size_t breaker_trips = 0;
  for (const chaos::ChaosServerResult& server : result.servers) {
    for (const chaos::ChaosCell& cell : server.cells) {
      challenged += cell.challenged;
      challenged_ok += cell.challenged_ok;
      downgraded += cell.count(chaos::ChaosOutcome::kDowngraded);
      version_mismatch += cell.count(chaos::ChaosOutcome::kVersionMismatch);
      retransmits += cell.retransmits;
      breaker_trips += cell.breaker_trips;
    }
  }
  out.push_back({prefix + "_attempted", static_cast<double>(result.total_attempted())});
  out.push_back({prefix + "_challenged", static_cast<double>(challenged)});
  out.push_back({prefix + "_challenged_ok", static_cast<double>(challenged_ok)});
  out.push_back({prefix + "_downgraded", static_cast<double>(downgraded)});
  out.push_back({prefix + "_version_mismatch", static_cast<double>(version_mismatch)});
  out.push_back({prefix + "_retransmits", static_cast<double>(retransmits)});
  out.push_back({prefix + "_breaker_trips", static_cast<double>(breaker_trips)});
  // Basis points rather than a raw percentage: integral values round-trip
  // through the JSON baseline exactly, which the --tolerance 0 gate needs.
  const double rate = challenged == 0 ? 0.0
                                      : 100.0 * static_cast<double>(challenged_ok) /
                                            static_cast<double>(challenged);
  out.push_back({prefix + "_recovery_rate_bp", std::round(rate * 100.0)});
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 100;
  std::size_t jobs = 0;  // hardware concurrency; the result is jobs-independent
  std::size_t tolerance = 0;
  std::string out_path = "BENCH_chaos.json";
  std::string check_path;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale) || scale == 0) return 2;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_count(args[++i], jobs)) return 2;
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tolerance)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--check" && i + 1 < args.size()) {
      check_path = args[++i];
    } else {
      std::cerr << "usage: bench_chaos [--scale PCT] [--jobs N] [--out FILE.json] "
                   "[--check BASELINE.json] [--tolerance PCT]\n";
      return 2;
    }
  }

  chaos::ChaosConfig config;
  config.jobs = jobs;
  apply_scale(config, scale);

  const chaos::ChaosResult classic = chaos::run_chaos_study(config);
  std::cout << chaos::format_chaos(classic) << "\n";
  std::cout << chaos::format_policy_table() << "\n";

  chaos::ChaosConfig skew_config = config;
  skew_config.versions = {frameworks::VersionPolicy::kStrict,
                          frameworks::VersionPolicy::kRelaxed,
                          frameworks::VersionPolicy::kShadedCxf};
  const chaos::ChaosResult skew = chaos::run_chaos_study(skew_config);

  std::vector<Measurement> measurements;
  tally(classic, "classic", measurements);
  tally(skew, "skew", measurements);

  json::ObjectWriter doc;
  doc.field("benchmark", "chaos");
  doc.field("scale_percent", scale);
  for (const Measurement& m : measurements) doc.field(m.name, m.value);
  doc.raw_field("classic", chaos::chaos_recovery_json(classic));
  doc.raw_field("version_skew", chaos::chaos_recovery_json(skew));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_chaos: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << doc.str() << "\n";
  for (const Measurement& m : measurements) {
    std::cout << m.name << " = " << m.value << "\n";
  }
  std::cout << "chaos: two phases -> " << out_path << "\n";

  if (check_path.empty()) return 0;

  // Regression gate: every scalar must stay within `tolerance` percent of
  // the committed baseline in BOTH directions — the campaign is virtual-
  // clock deterministic, so an unexplained improvement is as suspicious as
  // a regression (it means the behaviour changed without a baseline
  // refresh).
  std::ifstream baseline_file(check_path);
  if (!baseline_file) {
    std::cerr << "bench_chaos: cannot open baseline " << check_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << baseline_file.rdbuf();
  Result<json::Value> baseline = json::parse(buffer.str());
  if (!baseline.ok()) {
    std::cerr << "bench_chaos: baseline: " << baseline.error().message << "\n";
    return 1;
  }
  const double slack = static_cast<double>(tolerance) / 100.0;
  bool drifted = false;
  for (const Measurement& m : measurements) {
    const json::Value* reference = baseline->find(m.name);
    if (reference == nullptr || !reference->is_number()) {
      std::cerr << "bench_chaos: baseline lacks " << m.name << "\n";
      drifted = true;
      continue;
    }
    const double ref = reference->as_number();
    const double allowed = std::abs(ref) * slack;
    if (std::abs(m.value - ref) > allowed) {
      std::cerr << "bench_chaos: DRIFT " << m.name << " = " << m.value
                << " vs baseline " << ref << " (allowed ±" << allowed << ")\n";
      drifted = true;
    }
  }
  if (!drifted) std::cout << "chaos: within " << tolerance << "% of baseline\n";
  return drifted ? 1 : 0;
}
