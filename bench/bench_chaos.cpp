// bench_chaos — the wire-fault resilience study (experiment X5). Runs the
// chaos campaign at a reduced scale with the default plan, prints the
// per-server matrix and the per-client policy table, and writes
// BENCH_chaos.json with per-client recovery rates so the robustness
// trajectory is machine-readable across commits.
#include <fstream>
#include <iostream>

#include "chaos/campaign.hpp"
#include "chaos/policy.hpp"

int main(int argc, char** argv) {
  wsx::chaos::ChaosConfig config;
  config.jobs = 0;  // hardware concurrency; the result is jobs-independent
  const wsx::chaos::ChaosResult result = wsx::chaos::run_chaos_study(config);
  std::cout << wsx::chaos::format_chaos(result) << "\n";
  std::cout << wsx::chaos::format_policy_table();

  const char* json_path = argc > 1 ? argv[1] : "BENCH_chaos.json";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "bench_chaos: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << wsx::chaos::chaos_recovery_json(result) << "\n";
  return 0;
}
