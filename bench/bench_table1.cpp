// bench_table1 — regenerates Table I (server platforms). Experiment E1.
#include <iostream>

#include "interop/report.hpp"

int main() {
  std::cout << wsx::interop::format_table1();
  return 0;
}
