// profile.hpp — WS-I Basic Profile 1.1 conformance checking.
//
// The study runs every generated WSDL through the WS-I checking tool and
// treats failures as description-step warnings (paper §III.B.d). This
// module implements the BP 1.1 assertions that the studied WSDLs exercise,
// plus the paper's own §IV.A recommendation (operation minOccurs >= 1) as
// an opt-in strict rule.
#pragma once

#include <string>
#include <vector>

#include "wsdl/model.hpp"

namespace wsx::wsi {

enum class Outcome { kPass, kWarning, kFail, kNotApplicable };

const char* to_string(Outcome outcome);

struct AssertionResult {
  std::string id;      ///< BP assertion id, e.g. "R2102"
  std::string title;   ///< short statement of the requirement
  Outcome outcome = Outcome::kPass;
  std::string detail;  ///< populated for warnings/failures
};

struct Profile {
  /// The paper advocates changing the WSDL schema so that a portType must
  /// declare at least one operation (§IV.A). Off: zero operations is a
  /// warning (matching the real BP, under which JBossWS's unusable WSDLs
  /// pass). On: it is a failure.
  bool require_operations = false;
};

class ComplianceReport {
 public:
  explicit ComplianceReport(std::vector<AssertionResult> results)
      : results_(std::move(results)) {}

  const std::vector<AssertionResult>& results() const { return results_; }

  bool compliant() const;  ///< no failed assertions
  std::vector<const AssertionResult*> failures() const;
  std::vector<const AssertionResult*> warnings() const;

  /// True if the given assertion id failed.
  bool failed(std::string_view id) const;

  /// One-line summary, e.g. "FAIL (R2102, R2744); 1 warning".
  std::string summary() const;

 private:
  std::vector<AssertionResult> results_;
};

/// Runs all assertions against `definitions`.
ComplianceReport check(const wsdl::Definitions& definitions, const Profile& profile = {});

}  // namespace wsx::wsi
