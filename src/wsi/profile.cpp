#include "wsi/profile.hpp"

#include <algorithm>

namespace wsx::wsi {

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kPass:
      return "pass";
    case Outcome::kWarning:
      return "warning";
    case Outcome::kFail:
      return "fail";
    case Outcome::kNotApplicable:
      return "n/a";
  }
  return "unknown";
}

bool ComplianceReport::compliant() const {
  return std::none_of(results_.begin(), results_.end(),
                      [](const AssertionResult& r) { return r.outcome == Outcome::kFail; });
}

std::vector<const AssertionResult*> ComplianceReport::failures() const {
  std::vector<const AssertionResult*> out;
  for (const AssertionResult& result : results_) {
    if (result.outcome == Outcome::kFail) out.push_back(&result);
  }
  return out;
}

std::vector<const AssertionResult*> ComplianceReport::warnings() const {
  std::vector<const AssertionResult*> out;
  for (const AssertionResult& result : results_) {
    if (result.outcome == Outcome::kWarning) out.push_back(&result);
  }
  return out;
}

bool ComplianceReport::failed(std::string_view id) const {
  return std::any_of(results_.begin(), results_.end(), [id](const AssertionResult& r) {
    return r.id == id && r.outcome == Outcome::kFail;
  });
}

std::string ComplianceReport::summary() const {
  std::vector<const AssertionResult*> failed_list = failures();
  std::string out = failed_list.empty() ? "PASS" : "FAIL (";
  for (std::size_t i = 0; i < failed_list.size(); ++i) {
    if (i != 0) out += ", ";
    out += failed_list[i]->id;
  }
  if (!failed_list.empty()) out += ")";
  const std::size_t warning_count = warnings().size();
  if (warning_count > 0) {
    out += "; " + std::to_string(warning_count) + " warning";
    if (warning_count > 1) out += "s";
  }
  return out;
}

}  // namespace wsx::wsi
