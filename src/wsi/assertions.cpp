// assertions.cpp — the BP 1.1 assertion implementations.
//
// Assertion ids follow the WS-I Basic Profile 1.1 numbering for the checks
// it actually defines; ids in the R28xx block cover schema validity, which
// BP incorporates by reference to XML Schema.
#include <functional>
#include <string>

#include "wsi/profile.hpp"
#include "xsd/resolver.hpp"

namespace wsx::wsi {
namespace {

using Check = std::function<void(const wsdl::Definitions&, const Profile&,
                                 std::vector<AssertionResult>&)>;

void add(std::vector<AssertionResult>& results, std::string id, std::string title,
         Outcome outcome, std::string detail = {}) {
  results.push_back({std::move(id), std::move(title), outcome, std::move(detail)});
}

/// R2001-flavoured structural soundness: a definitions element must carry a
/// target namespace for its names to be referenceable.
void check_target_namespace(const wsdl::Definitions& defs, const Profile&,
                            std::vector<AssertionResult>& results) {
  const bool ok = !defs.target_namespace.empty();
  add(results, "R2001", "DESCRIPTION must declare a targetNamespace",
      ok ? Outcome::kPass : Outcome::kFail,
      ok ? "" : "wsdl:definitions has no targetNamespace");
}

/// R2007: a wsdl:import must state a location the consumer can retrieve.
void check_import_locations(const wsdl::Definitions& defs, const Profile&,
                            std::vector<AssertionResult>& results) {
  for (const wsdl::WsdlImport& import : defs.imports) {
    if (import.location.empty()) {
      add(results, "R2007", "wsdl:import must declare a location", Outcome::kFail,
          "import of namespace '" + import.namespace_uri + "' has no location");
      return;
    }
  }
  add(results, "R2007", "wsdl:import must declare a location", Outcome::kPass);
}

/// R2102: QName references in the description must resolve. This is the
/// assertion the DataSet-style (s:schema / s:lang) and the
/// W3CEndpointReference WSDLs fail.
void check_qname_resolution(const wsdl::Definitions& defs, const Profile&,
                            std::vector<AssertionResult>& results) {
  const xsd::ResolutionReport report = xsd::resolve(defs.schemas);
  if (report.unresolved.empty()) {
    add(results, "R2102", "QName references must resolve", Outcome::kPass);
    return;
  }
  std::string detail;
  for (const xsd::UnresolvedRef& ref : report.unresolved) {
    if (!detail.empty()) detail += "; ";
    detail += std::string(to_string(ref.kind)) + " '" + ref.target.lexical() + "' in " +
              ref.context;
  }
  add(results, "R2102", "QName references must resolve", Outcome::kFail, detail);
}

/// R2800-flavoured: embedded schemas must be valid XML Schema. Catches the
/// dual type declaration (type= plus inline anonymous type) and unnamed
/// top-level elements.
void check_schema_validity(const wsdl::Definitions& defs, const Profile&,
                           std::vector<AssertionResult>& results) {
  const xsd::ResolutionReport report = xsd::resolve(defs.schemas);
  if (report.issues.empty()) {
    add(results, "R2800", "Embedded schemas must be valid XML Schema", Outcome::kPass);
    return;
  }
  std::string detail;
  for (const xsd::ValidityIssue& issue : report.issues) {
    if (!detail.empty()) detail += "; ";
    detail += issue.code + " in " + issue.context;
  }
  add(results, "R2800", "Embedded schemas must be valid XML Schema", Outcome::kFail, detail);
}

/// R2304: operations within a portType must have unique signatures.
void check_operation_uniqueness(const wsdl::Definitions& defs, const Profile&,
                                std::vector<AssertionResult>& results) {
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (std::size_t i = 0; i < port_type.operations.size(); ++i) {
      for (std::size_t j = i + 1; j < port_type.operations.size(); ++j) {
        if (port_type.operations[i].name == port_type.operations[j].name) {
          add(results, "R2304", "Operations within a portType must be uniquely named",
              Outcome::kFail,
              "duplicate operation '" + port_type.operations[i].name + "' in portType '" +
                  port_type.name + "'");
          return;
        }
      }
    }
  }
  add(results, "R2304", "Operations within a portType must be uniquely named", Outcome::kPass);
}

/// R2201/R2204: a document-literal binding must reference messages whose
/// parts use element= (and at most one body part). R2203: rpc-literal parts
/// must use type=.
void check_part_style(const wsdl::Definitions& defs, const Profile&,
                      std::vector<AssertionResult>& results) {
  bool doc_ok = true;
  bool rpc_ok = true;
  std::string detail;
  for (const wsdl::Binding& binding : defs.bindings) {
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;
    for (const wsdl::Operation& operation : port_type->operations) {
      for (const std::string& message_name :
           {operation.input_message, operation.output_message}) {
        if (message_name.empty()) continue;
        const wsdl::Message* message = defs.find_message(message_name);
        if (message == nullptr) continue;
        for (const wsdl::Part& part : message->parts) {
          if (binding.style == wsdl::SoapStyle::kDocument && part.element.empty()) {
            doc_ok = false;
            detail = "document-style part '" + part.name + "' lacks element=";
          }
          if (binding.style == wsdl::SoapStyle::kRpc && part.type.empty()) {
            rpc_ok = false;
            detail = "rpc-style part '" + part.name + "' lacks type=";
          }
        }
        if (binding.style == wsdl::SoapStyle::kDocument && message->parts.size() > 1) {
          doc_ok = false;
          detail = "document-style message '" + message->name + "' has multiple parts";
        }
      }
    }
  }
  add(results, "R2204", "Document-literal bindings must use element= parts (one body part)",
      doc_ok ? Outcome::kPass : Outcome::kFail, doc_ok ? "" : detail);
  add(results, "R2203", "Rpc-literal bindings must use type= parts",
      rpc_ok ? Outcome::kPass : Outcome::kFail, rpc_ok ? "" : detail);
}

/// R2706: a binding must use use="literal"; SOAP encoding is prohibited.
void check_literal_use(const wsdl::Definitions& defs, const Profile&,
                       std::vector<AssertionResult>& results) {
  for (const wsdl::Binding& binding : defs.bindings) {
    for (const wsdl::BindingOperation& operation : binding.operations) {
      if (operation.input_use == wsdl::SoapUse::kEncoded ||
          operation.output_use == wsdl::SoapUse::kEncoded) {
        add(results, "R2706", "Bindings must use literal encoding", Outcome::kFail,
            "operation '" + operation.name + "' in binding '" + binding.name +
                "' uses SOAP encoding");
        return;
      }
    }
  }
  add(results, "R2706", "Bindings must use literal encoding", Outcome::kPass);
}

/// R2744/R2745: soap:operation must carry a soapAction attribute (its value
/// may be an empty string, but the attribute itself must be present so that
/// receivers can match the HTTP header).
void check_soap_action(const wsdl::Definitions& defs, const Profile&,
                       std::vector<AssertionResult>& results) {
  for (const wsdl::Binding& binding : defs.bindings) {
    for (const wsdl::BindingOperation& operation : binding.operations) {
      if (!operation.has_soap_action) {
        add(results, "R2744", "soap:operation must declare soapAction", Outcome::kFail,
            "operation '" + operation.name + "' in binding '" + binding.name +
                "' has no soapAction attribute");
        return;
      }
    }
  }
  add(results, "R2744", "soap:operation must declare soapAction", Outcome::kPass);
}

/// R2701/R2720: bindings must reference an existing portType, binding
/// operations must exist in the portType, and every portType operation
/// should be bound.
void check_binding_coverage(const wsdl::Definitions& defs, const Profile&,
                            std::vector<AssertionResult>& results) {
  for (const wsdl::Binding& binding : defs.bindings) {
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) {
      add(results, "R2701", "Bindings must reference an existing portType", Outcome::kFail,
          "binding '" + binding.name + "' references unknown portType '" +
              binding.port_type.local_name() + "'");
      return;
    }
    for (const wsdl::BindingOperation& bound : binding.operations) {
      const bool exists =
          std::any_of(port_type->operations.begin(), port_type->operations.end(),
                      [&bound](const wsdl::Operation& op) { return op.name == bound.name; });
      if (!exists) {
        add(results, "R2718", "Binding operations must exist in the portType", Outcome::kFail,
            "binding '" + binding.name + "' binds unknown operation '" + bound.name + "'");
        return;
      }
    }
    for (const wsdl::Operation& declared : port_type->operations) {
      const bool bound = std::any_of(
          binding.operations.begin(), binding.operations.end(),
          [&declared](const wsdl::BindingOperation& op) { return op.name == declared.name; });
      if (!bound) {
        add(results, "R2718", "Binding operations must exist in the portType", Outcome::kFail,
            "portType operation '" + declared.name + "' is not bound by '" + binding.name +
                "'");
        return;
      }
    }
  }
  add(results, "R2701", "Bindings must reference an existing portType", Outcome::kPass);
  add(results, "R2718", "Binding operations must exist in the portType", Outcome::kPass);
}

/// R2105-flavoured: message parts using element= must reference an element
/// declared by the embedded schemas. Catches dangling wrapper references
/// (renamed wrapper elements, undeclared prefixes).
void check_part_element_resolution(const wsdl::Definitions& defs, const Profile&,
                                   std::vector<AssertionResult>& results) {
  for (const wsdl::Message& message : defs.messages) {
    for (const wsdl::Part& part : message.parts) {
      if (part.element.empty()) continue;
      bool declared = false;
      for (const xsd::Schema& schema : defs.schemas) {
        if (schema.target_namespace == part.element.namespace_uri() &&
            schema.find_element(part.element.local_name()) != nullptr) {
          declared = true;
        }
      }
      if (!declared) {
        add(results, "R2105", "Message parts must reference declared elements",
            Outcome::kFail,
            "part '" + part.name + "' of message '" + message.name +
                "' references undeclared element '" + part.element.lexical() + "'");
        return;
      }
    }
  }
  add(results, "R2105", "Message parts must reference declared elements", Outcome::kPass);
}

/// R2097-flavoured: operations must reference messages that exist.
void check_message_references(const wsdl::Definitions& defs, const Profile&,
                              std::vector<AssertionResult>& results) {
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& operation : port_type.operations) {
      std::vector<std::string> referenced = {operation.input_message,
                                             operation.output_message};
      for (const wsdl::FaultRef& fault : operation.faults) referenced.push_back(fault.message);
      for (const std::string& message_name : referenced) {
        if (message_name.empty()) continue;
        if (defs.find_message(message_name) == nullptr) {
          add(results, "R2097", "Operations must reference existing messages", Outcome::kFail,
              "operation '" + operation.name + "' references unknown message '" + message_name +
                  "'");
          return;
        }
      }
    }
  }
  add(results, "R2097", "Operations must reference existing messages", Outcome::kPass);
}

/// R2723-flavoured: every fault declared by a portType operation must be
/// bound by the binding under the same name.
void check_fault_coverage(const wsdl::Definitions& defs, const Profile&,
                          std::vector<AssertionResult>& results) {
  for (const wsdl::Binding& binding : defs.bindings) {
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;
    for (const wsdl::Operation& operation : port_type->operations) {
      const wsdl::BindingOperation* bound = nullptr;
      for (const wsdl::BindingOperation& candidate : binding.operations) {
        if (candidate.name == operation.name) bound = &candidate;
      }
      if (bound == nullptr) continue;  // reported by R2718
      for (const wsdl::FaultRef& fault : operation.faults) {
        const bool covered = std::any_of(
            bound->fault_names.begin(), bound->fault_names.end(),
            [&fault](const std::string& name) { return name == fault.name; });
        if (!covered) {
          add(results, "R2723", "Bindings must bind every declared fault", Outcome::kFail,
              "fault '" + fault.name + "' of operation '" + operation.name +
                  "' is not bound by '" + binding.name + "'");
          return;
        }
      }
    }
  }
  add(results, "R2723", "Bindings must bind every declared fault", Outcome::kPass);
}

/// R2401-flavoured: a wsdl:service must expose at least one SOAP/HTTP port
/// with an absolute location.
void check_service_ports(const wsdl::Definitions& defs, const Profile&,
                         std::vector<AssertionResult>& results) {
  for (const wsdl::Service& service : defs.services) {
    for (const wsdl::Port& port : service.ports) {
      if (port.location.rfind("http://", 0) != 0 && port.location.rfind("https://", 0) != 0) {
        add(results, "R2401", "soap:address must use an absolute http(s) URI", Outcome::kFail,
            "port '" + port.name + "' has location '" + port.location + "'");
        return;
      }
      if (defs.find_binding(port.binding.local_name()) == nullptr) {
        add(results, "R2401", "soap:address must use an absolute http(s) URI", Outcome::kFail,
            "port '" + port.name + "' references unknown binding '" +
                port.binding.local_name() + "'");
        return;
      }
    }
  }
  add(results, "R2401", "soap:address must use an absolute http(s) URI", Outcome::kPass);
}

/// The paper's §IV.A advocacy: a description without a single invocable
/// operation is unusable. The real WSDL schema allows it (minOccurs=0), so
/// by default this is a warning — exactly why the JBossWS zero-operation
/// WSDLs "pass the WS-I tests and still were unusable". With
/// Profile::require_operations it becomes a failure.
void check_has_operations(const wsdl::Definitions& defs, const Profile& profile,
                          std::vector<AssertionResult>& results) {
  const bool has_ops = defs.operation_count() > 0;
  Outcome outcome = Outcome::kPass;
  if (!has_ops) outcome = profile.require_operations ? Outcome::kFail : Outcome::kWarning;
  add(results, "WSX-OP1", "Description should expose at least one operation", outcome,
      has_ops ? "" : "no portType declares any operation");
}

}  // namespace

ComplianceReport check(const wsdl::Definitions& definitions, const Profile& profile) {
  static const Check kChecks[] = {
      check_target_namespace, check_import_locations,  check_qname_resolution,
      check_schema_validity,
      check_operation_uniqueness, check_part_style,    check_literal_use,
      check_soap_action,      check_binding_coverage,  check_message_references,
      check_fault_coverage,   check_part_element_resolution, check_service_ports,
      check_has_operations,
  };
  std::vector<AssertionResult> results;
  for (const Check& check_fn : kChecks) check_fn(definitions, profile, results);
  return ComplianceReport{std::move(results)};
}

}  // namespace wsx::wsi
