// assertions.cpp — the BP 1.1 checker as a thin adapter over the
// wsx::analysis rule registry. The assertion implementations live in
// src/analysis/rules_wsi.cpp (ids R2xxx) and rules_schema.cpp (WSX1001,
// the paper's §IV.A recommendation, surfaced here under its legacy id
// WSX-OP1); this file only maps findings back onto AssertionResults so
// existing callers compile and behave unchanged.
#include <string>
#include <string_view>
#include <vector>

#include "analysis/registry.hpp"
#include "wsi/profile.hpp"

namespace wsx::wsi {
namespace {

/// Canonical assertion order of the original checker (report order and the
/// order failed ids appear in summaries).
constexpr std::string_view kAssertionIds[] = {
    "R2001", "R2007", "R2102", "R2800", "R2304", "R2204", "R2203", "R2706",
    "R2744", "R2701", "R2718", "R2097", "R2723", "R2105", "R2401", "WSX-OP1",
};

/// The §IV.A rule runs in the registry under its lint id.
constexpr std::string_view kOperationsRule = "WSX1001";
constexpr std::string_view kOperationsAssertion = "WSX-OP1";

std::string_view rule_id_for(std::string_view assertion_id) {
  return assertion_id == kOperationsAssertion ? kOperationsRule : assertion_id;
}

Outcome outcome_for(const std::vector<const analysis::Finding*>& findings) {
  if (findings.empty()) return Outcome::kPass;
  Outcome outcome = Outcome::kWarning;
  for (const analysis::Finding* finding : findings) {
    if (finding->severity == Severity::kError || finding->severity == Severity::kCrash) {
      outcome = Outcome::kFail;
    }
  }
  return outcome;
}

}  // namespace

ComplianceReport check(const wsdl::Definitions& definitions, const Profile& profile) {
  const analysis::RuleRegistry& registry = analysis::RuleRegistry::builtin();

  analysis::RuleConfig config;
  for (const std::string_view assertion_id : kAssertionIds) {
    config.only.insert(std::string(rule_id_for(assertion_id)));
  }
  if (profile.require_operations) {
    config.severity_overrides[std::string(kOperationsRule)] = Severity::kError;
  }

  analysis::AnalysisInput input;
  input.definitions = &definitions;
  const analysis::AnalysisResult analyzed = analysis::analyze(input, config, registry);

  std::vector<AssertionResult> results;
  for (const std::string_view assertion_id : kAssertionIds) {
    const std::string_view rule_id = rule_id_for(assertion_id);
    std::vector<const analysis::Finding*> findings;
    for (const analysis::Finding& finding : analyzed.findings) {
      if (finding.rule_id == rule_id) findings.push_back(&finding);
    }
    AssertionResult result;
    result.id = std::string(assertion_id);
    const analysis::Rule* rule = registry.find(rule_id);
    result.title = rule != nullptr ? rule->info().title : std::string(assertion_id);
    result.outcome = outcome_for(findings);
    for (const analysis::Finding* finding : findings) {
      if (!result.detail.empty()) result.detail += "; ";
      result.detail += finding->message;
    }
    results.push_back(std::move(result));
  }
  return ComplianceReport{std::move(results)};
}

}  // namespace wsx::wsi
