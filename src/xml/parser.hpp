// parser.hpp — namespace-aware, hand-written XML 1.0 parser.
//
// Supports the subset of XML used by WSDL/XSD/SOAP documents: prolog,
// elements, attributes, character data, CDATA sections, comments,
// processing instructions (skipped), DOCTYPE (skipped), the five built-in
// entities, and decimal/hex character references. DTDs with internal
// subsets, and external entities, are rejected (as real WS stacks do for
// security reasons).
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "xml/node.hpp"
#include "xml/pull.hpp"

namespace wsx::xml {

struct ParseOptions {
  /// Keep comment nodes in the tree (WSDL tooling typically discards them).
  bool keep_comments = true;
  /// Reject documents whose total nesting depth exceeds this bound.
  std::size_t max_depth = 256;
};

/// Parses a complete XML document. Error codes use the "xml." prefix and
/// include 1-based line/column positions in the message.
Result<Document> parse(std::string_view input, const ParseOptions& options = {});

/// Parses a document and returns just the root element.
Result<Element> parse_element(std::string_view input, const ParseOptions& options = {});

/// Materialises the element whose kStartElement token was just returned by
/// `tok` into a DOM subtree, consuming the stream through its matching end
/// tag. Construction rules are identical to parse() — whitespace-only text
/// dropped, comments per `options` — so streaming consumers that need a
/// tree for one subtree (a SOAP body payload, a header entry) get exactly
/// what the DOM path would have built.
Result<Element> collect_element(pull::Tokenizer& tok, const pull::Token& start,
                                const ParseOptions& options = {});

}  // namespace wsx::xml
