// writer.hpp — XML serializer.
#pragma once

#include <string>

#include "xml/node.hpp"

namespace wsx::xml {

struct WriteOptions {
  bool pretty = true;          ///< indent nested elements
  std::size_t indent_width = 2;
  bool xml_declaration = true; ///< emit <?xml version="1.0" encoding="UTF-8"?>
};

/// Escapes the five XML special characters for element content.
std::string escape_text(std::string_view text);
/// Escapes text for use inside a double-quoted attribute value.
std::string escape_attribute(std::string_view text);

std::string write(const Element& root, const WriteOptions& options = {});
std::string write(const Document& document, const WriteOptions& options = {});

}  // namespace wsx::xml
