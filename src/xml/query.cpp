#include "xml/query.hpp"

#include "common/strings.hpp"

namespace wsx::xml {

NamespaceScope::NamespaceScope() {
  frames_.push_back({{"xml", std::string(ns::kXmlNs)}});
}

void NamespaceScope::push(const Element& element) {
  std::vector<Binding> frame;
  for (const Attribute& attr : element.attributes()) {
    if (attr.name == "xmlns") {
      frame.push_back({"", attr.value});
    } else if (starts_with(attr.name, "xmlns:")) {
      frame.push_back({attr.name.substr(6), attr.value});
    }
  }
  frames_.push_back(std::move(frame));
}

void NamespaceScope::pop() {
  if (frames_.size() > 1) frames_.pop_back();
}

std::optional<std::string> NamespaceScope::resolve_prefix(std::string_view prefix) const {
  if (const std::string* uri = find_prefix(prefix)) return *uri;
  return std::nullopt;
}

const std::string* NamespaceScope::find_prefix(std::string_view prefix) const {
  for (auto frame = frames_.rbegin(); frame != frames_.rend(); ++frame) {
    for (const Binding& binding : *frame) {
      if (binding.prefix == prefix) return &binding.uri;
    }
  }
  return nullptr;
}

std::optional<QName> NamespaceScope::resolve(std::string_view lexical,
                                             bool use_default_ns) const {
  const std::size_t colon = lexical.find(':');
  if (colon == std::string_view::npos) {
    std::string uri;
    if (use_default_ns) {
      if (const std::string* resolved = find_prefix("")) uri = *resolved;
    }
    return QName{std::move(uri), std::string(lexical)};
  }
  const std::string_view prefix = lexical.substr(0, colon);
  const std::string_view local = lexical.substr(colon + 1);
  const std::string* uri = find_prefix(prefix);
  if (uri == nullptr) return std::nullopt;  // undeclared prefix — caller decides severity
  return QName{*uri, std::string(local), std::string(prefix)};
}

namespace {

void walk_impl(const Element& element, NamespaceScope& scope,
               const std::function<void(const Element&, const NamespaceScope&)>& visit) {
  scope.push(element);
  visit(element, scope);
  for (const Node& node : element.children()) {
    if (const Element* child = node.as_element()) walk_impl(*child, scope, visit);
  }
  scope.pop();
}

}  // namespace

void walk(const Element& root,
          const std::function<void(const Element&, const NamespaceScope&)>& visit) {
  NamespaceScope scope;
  walk_impl(root, scope, visit);
}

std::vector<const Element*> find_all(const Element& root, const QName& name) {
  std::vector<const Element*> out;
  walk(root, [&](const Element& element, const NamespaceScope& scope) {
    if (&element == &root) return;
    std::optional<QName> resolved = scope.resolve(element.name());
    if (resolved && *resolved == name) out.push_back(&element);
  });
  return out;
}

const Element* find_first(const Element& root, const QName& name) {
  std::vector<const Element*> all = find_all(root, name);
  return all.empty() ? nullptr : all.front();
}

Element* find_descendant(Element& root,
                         const std::function<bool(const Element&)>& predicate) {
  if (predicate(root)) return &root;
  for (Node& node : root.children()) {
    if (Element* child = node.as_element()) {
      if (Element* found = find_descendant(*child, predicate)) return found;
    }
  }
  return nullptr;
}

const Element* find_descendant(const Element& root,
                               const std::function<bool(const Element&)>& predicate) {
  return find_descendant(const_cast<Element&>(root), predicate);
}

std::optional<QName> resolved_name(const Element& root, const Element& target) {
  std::optional<QName> result;
  walk(root, [&](const Element& element, const NamespaceScope& scope) {
    if (&element == &target) result = scope.resolve(element.name());
  });
  return result;
}

}  // namespace wsx::xml
