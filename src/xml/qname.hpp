// qname.hpp — namespace-qualified names as used throughout XML, XSD and WSDL.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace wsx::xml {

/// Well-known namespace URIs used by the web-services stack.
namespace ns {
inline constexpr std::string_view kXsd = "http://www.w3.org/2001/XMLSchema";
inline constexpr std::string_view kXsi = "http://www.w3.org/2001/XMLSchema-instance";
inline constexpr std::string_view kWsdl = "http://schemas.xmlsoap.org/wsdl/";
inline constexpr std::string_view kWsdlSoap = "http://schemas.xmlsoap.org/wsdl/soap/";
inline constexpr std::string_view kSoapEnvelope = "http://schemas.xmlsoap.org/soap/envelope/";
inline constexpr std::string_view kSoap12Envelope = "http://www.w3.org/2003/05/soap-envelope";
inline constexpr std::string_view kSoapEncoding = "http://schemas.xmlsoap.org/soap/encoding/";
inline constexpr std::string_view kSoapHttp = "http://schemas.xmlsoap.org/soap/http";
inline constexpr std::string_view kWsAddressing = "http://www.w3.org/2005/08/addressing";
inline constexpr std::string_view kXmlNs = "http://www.w3.org/XML/1998/namespace";

/// Interned identity for the namespaces above. Envelope-path QName
/// comparisons resolve to an integer compare when both sides are interned
/// (which every SOAP/WSDL/XSD name on the hot path is), instead of
/// re-comparing the URI strings on every check.
enum class Id : unsigned char {
  kOther = 0,  ///< any URI not in this list — compare the strings
  kNone,       ///< empty URI (unqualified name)
  kXsd,
  kXsi,
  kWsdl,
  kWsdlSoap,
  kSoapEnvelope,
  kSoap12Envelope,
  kSoapEncoding,
  kSoapHttp,
  kWsAddressing,
  kXmlNs,
};

/// Maps a URI to its interned Id (kOther when not well-known). One length
/// switch plus at most two memcmps.
Id intern(std::string_view uri);
}  // namespace ns

/// A namespace-qualified name. The prefix is presentation-only and ignored
/// by comparisons; two QNames are equal iff URI and local part match.
class QName {
 public:
  QName() = default;
  QName(std::string namespace_uri, std::string local_name)
      : namespace_uri_(std::move(namespace_uri)),
        local_name_(std::move(local_name)),
        ns_id_(ns::intern(namespace_uri_)) {}
  QName(std::string namespace_uri, std::string local_name, std::string prefix)
      : namespace_uri_(std::move(namespace_uri)),
        local_name_(std::move(local_name)),
        prefix_(std::move(prefix)),
        ns_id_(ns::intern(namespace_uri_)) {}

  const std::string& namespace_uri() const { return namespace_uri_; }
  const std::string& local_name() const { return local_name_; }
  const std::string& prefix() const { return prefix_; }

  /// Interned namespace identity, computed once at construction. Hot-path
  /// checks compare this against a ns::Id instead of the URI string.
  ns::Id namespace_id() const { return ns_id_; }

  bool empty() const { return local_name_.empty(); }

  /// "{uri}local" form used in messages and map keys.
  std::string expanded() const;
  /// "prefix:local" (or "local" when no prefix) as it appears lexically.
  std::string lexical() const;

  friend bool operator==(const QName& a, const QName& b) {
    // Interned ids disagree → the URIs differ; both kOther → unknown URIs
    // that still need the string compare.
    if (a.ns_id_ != b.ns_id_) return false;
    if (a.ns_id_ == ns::Id::kOther && a.namespace_uri_ != b.namespace_uri_) return false;
    return a.local_name_ == b.local_name_;
  }
  friend bool operator!=(const QName& a, const QName& b) { return !(a == b); }
  friend bool operator<(const QName& a, const QName& b) {
    return a.namespace_uri_ != b.namespace_uri_ ? a.namespace_uri_ < b.namespace_uri_
                                                : a.local_name_ < b.local_name_;
  }

 private:
  std::string namespace_uri_;
  std::string local_name_;
  std::string prefix_;
  ns::Id ns_id_ = ns::Id::kNone;
};

/// Convenience: QName in the XML Schema namespace (e.g. xsd("string")).
QName xsd(std::string local_name);

}  // namespace wsx::xml

template <>
struct std::hash<wsx::xml::QName> {
  std::size_t operator()(const wsx::xml::QName& name) const noexcept {
    return std::hash<std::string>{}(name.namespace_uri()) * 1315423911u ^
           std::hash<std::string>{}(name.local_name());
  }
};
