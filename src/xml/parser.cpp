#include "xml/parser.hpp"

#include <array>
#include <cstring>
#include <string>

#include "common/strings.hpp"

namespace wsx::xml {
namespace {

// Branch-free character classes. std::isalpha and friends are out-of-line
// locale-aware calls; a 256-entry table keeps name/space scanning to a load
// and a test per byte.
enum : unsigned char { kNameStart = 1, kNameChar = 2, kSpace = 4 };

constexpr std::array<unsigned char, 256> build_char_classes() {
  std::array<unsigned char, 256> table{};
  for (int c = 'A'; c <= 'Z'; ++c) table[c] = kNameStart | kNameChar;
  for (int c = 'a'; c <= 'z'; ++c) table[c] = kNameStart | kNameChar;
  table['_'] = table[':'] = kNameStart | kNameChar;
  for (int c = '0'; c <= '9'; ++c) table[c] = kNameChar;
  table['-'] = table['.'] = kNameChar;
  table[' '] = table['\t'] = table['\r'] = table['\n'] = kSpace;
  return table;
}

constexpr std::array<unsigned char, 256> kCharClass = build_char_classes();

bool is_name_start(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameStart) != 0;
}

bool is_name_char(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameChar) != 0;
}

bool is_space(char c) { return (kCharClass[static_cast<unsigned char>(c)] & kSpace) != 0; }

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> parse_document() {
    Document doc;
    skip_bom();
    skip_misc_allowing_prolog(doc);
    if (at_end()) return fail("xml.no-root", "document has no root element");
    Result<Element> root = parse_element_node(0);
    if (!root.ok()) return root.error();
    doc.root = std::move(root.value());
    skip_trailing_misc();
    if (!at_end()) return fail("xml.trailing-content", "content after root element");
    return doc;
  }

 private:
  struct Location {
    std::size_t line;
    std::size_t column;
  };

  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  bool looking_at(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  /// 1-based line/column of `pos`. Positions are only ever requested in
  /// document order (element start tags, then errors at the failure point),
  /// so the newline scan resumes from where the previous request stopped —
  /// the parser itself moves with plain index arithmetic and pays nothing
  /// for location tracking on the hot path.
  Location location_at(std::size_t pos) {
    const char* base = input_.data();
    while (loc_scanned_ < pos) {
      const void* nl = std::memchr(base + loc_scanned_, '\n', pos - loc_scanned_);
      if (nl == nullptr) break;
      const std::size_t idx = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
      ++line_;
      line_start_ = idx + 1;
      loc_scanned_ = idx + 1;
    }
    if (pos > loc_scanned_) loc_scanned_ = pos;
    return Location{line_, pos - line_start_ + 1};
  }

  void skip_space() {
    while (pos_ < input_.size() && is_space(input_[pos_])) ++pos_;
  }

  Error fail(std::string code, std::string_view what) {
    const Location loc = location_at(pos_);
    return Error{std::move(code), std::string(what) + " at line " + std::to_string(loc.line) +
                                      ", column " + std::to_string(loc.column)};
  }

  void skip_bom() {
    if (input_.substr(0, 3) == "\xEF\xBB\xBF") {
      pos_ = 3;
      // The BOM is not part of column accounting: column 1 stays the first
      // real character, as it did when the BOM was skipped silently.
      line_start_ = 3;
      loc_scanned_ = 3;
    }
  }

  void skip_misc_allowing_prolog(Document& doc) {
    skip_space();
    if (looking_at("<?xml")) {
      const std::size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) return;  // malformed prolog caught later
      const std::string_view prolog = input_.substr(pos_, end - pos_);
      extract_pseudo_attribute(prolog, "version", doc.version);
      extract_pseudo_attribute(prolog, "encoding", doc.encoding);
      pos_ = end + 2;
    }
    skip_misc();
  }

  static void extract_pseudo_attribute(std::string_view prolog, std::string_view key,
                                       std::string& out) {
    const std::size_t key_pos = prolog.find(key);
    if (key_pos == std::string_view::npos) return;
    const std::size_t quote = prolog.find_first_of("\"'", key_pos);
    if (quote == std::string_view::npos) return;
    const char q = prolog[quote];
    const std::size_t close = prolog.find(q, quote + 1);
    if (close == std::string_view::npos) return;
    out = std::string(prolog.substr(quote + 1, close - quote - 1));
  }

  void skip_misc() {
    while (true) {
      skip_space();
      if (looking_at("<!--")) {
        const std::size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          pos_ = input_.size();
          return;
        }
        pos_ = end + 3;
      } else if (looking_at("<?")) {
        const std::size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          pos_ = input_.size();
          return;
        }
        pos_ = end + 2;
      } else if (looking_at("<!DOCTYPE")) {
        // Skip doctype without internal subset; reject subsets.
        std::size_t scan = pos_;
        int depth = 0;
        for (; scan < input_.size(); ++scan) {
          if (input_[scan] == '[') ++depth;
          if (input_[scan] == ']') --depth;
          if (input_[scan] == '>' && depth == 0) break;
        }
        pos_ = scan < input_.size() ? scan + 1 : input_.size();
      } else {
        return;
      }
    }
  }

  void skip_trailing_misc() { skip_misc(); }

  /// Scans a name token in place; the view aliases input_ and stays valid
  /// for the parse. Callers that store the name copy it exactly once.
  Result<std::string_view> scan_name() {
    if (at_end() || !is_name_start(peek())) return fail("xml.bad-name", "expected a name");
    const std::size_t start = pos_;
    std::size_t p = pos_ + 1;
    while (p < input_.size() && is_name_char(input_[p])) ++p;
    pos_ = p;
    return input_.substr(start, p - start);
  }

  Result<std::string> decode_entities(std::string_view raw) {
    std::size_t amp = raw.find('&');
    if (amp == std::string_view::npos) return std::string(raw);  // common case: no entities
    std::string out;
    out.reserve(raw.size());
    out.append(raw, 0, amp);
    for (std::size_t i = amp; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        const std::size_t next = raw.find('&', i);
        const std::size_t run_end = next == std::string_view::npos ? raw.size() : next;
        out.append(raw, i, run_end - i);
        i = run_end - 1;
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return fail("xml.bad-entity", "unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "apos") {
        out += '\'';
      } else if (entity == "quot") {
        out += '"';
      } else if (!entity.empty() && entity[0] == '#') {
        unsigned long value = 0;
        try {
          value = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')
                      ? std::stoul(std::string(entity.substr(2)), nullptr, 16)
                      : std::stoul(std::string(entity.substr(1)), nullptr, 10);
        } catch (...) {
          return fail("xml.bad-entity", "malformed character reference");
        }
        append_utf8(out, value);
      } else {
        return fail("xml.unknown-entity", "unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  static void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Attribute> parse_attribute() {
    Result<std::string_view> name = scan_name();
    if (!name.ok()) return name.error();
    skip_space();
    if (at_end() || peek() != '=') return fail("xml.expected-eq", "expected '=' after attribute");
    ++pos_;
    skip_space();
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return fail("xml.expected-quote", "expected quoted attribute value");
    }
    const char quote = peek();
    ++pos_;
    const std::size_t start = pos_;
    const std::size_t stop = input_.find_first_of(quote == '"' ? "\"<" : "'<", pos_);
    if (stop == std::string_view::npos) {
      pos_ = input_.size();
      return fail("xml.unterminated-attr", "unterminated attribute value");
    }
    pos_ = stop;
    if (input_[stop] == '<') return fail("xml.lt-in-attr", "'<' not allowed in attribute value");
    Result<std::string> value = decode_entities(input_.substr(start, stop - start));
    if (!value.ok()) return value.error();
    ++pos_;  // closing quote
    return Attribute{std::string(name.value()), std::move(value.value())};
  }

  Result<Element> parse_element_node(std::size_t depth) {
    if (depth > options_.max_depth) return fail("xml.too-deep", "maximum nesting depth exceeded");
    if (at_end() || peek() != '<') return fail("xml.expected-element", "expected '<'");
    const Location tag_loc = location_at(pos_);
    ++pos_;
    Result<std::string_view> name = scan_name();
    if (!name.ok()) return name.error();
    Element element{std::string(name.value())};
    element.set_source_location(tag_loc.line, tag_loc.column);

    while (true) {
      skip_space();
      if (at_end()) return fail("xml.unterminated-tag", "unterminated start tag");
      if (peek() == '>') {
        ++pos_;
        break;
      }
      if (looking_at("/>")) {
        pos_ += 2;
        return element;
      }
      Result<Attribute> attr = parse_attribute();
      if (!attr.ok()) return attr.error();
      if (element.has_attribute(attr.value().name)) {
        return fail("xml.duplicate-attr", "duplicate attribute '" + attr.value().name + "'");
      }
      if (element.attributes().empty()) element.attributes().reserve(4);
      element.attributes().push_back(std::move(attr.value()));
    }

    // Content until matching end tag. Dispatch on the character after '<'
    // instead of re-comparing token substrings for every child.
    while (true) {
      if (at_end()) {
        return fail("xml.unterminated-element", "missing end tag for '" + element.name() + "'");
      }
      if (peek() != '<') {
        // Character data.
        const std::size_t start = pos_;
        const std::size_t lt = input_.find('<', pos_);
        pos_ = lt == std::string_view::npos ? input_.size() : lt;
        Result<std::string> text = decode_entities(input_.substr(start, pos_ - start));
        if (!text.ok()) return text.error();
        if (!trim(text.value()).empty()) element.add_text(std::move(text.value()));
        continue;
      }
      const char next = pos_ + 1 < input_.size() ? input_[pos_ + 1] : '\0';
      if (next == '/') {
        pos_ += 2;
        Result<std::string_view> end_name = scan_name();
        if (!end_name.ok()) return end_name.error();
        if (end_name.value() != element.name()) {
          return fail("xml.mismatched-tag", "end tag '" + std::string(end_name.value()) +
                                                "' does not match start tag '" + element.name() +
                                                "'");
        }
        skip_space();
        if (at_end() || peek() != '>') return fail("xml.bad-end-tag", "malformed end tag");
        ++pos_;
        return element;
      }
      if (next == '!') {
        if (looking_at("<!--")) {
          const std::size_t end = input_.find("-->", pos_);
          if (end == std::string_view::npos) {
            return fail("xml.unterminated-comment", "unterminated comment");
          }
          if (options_.keep_comments) {
            element.add_comment(std::string(input_.substr(pos_ + 4, end - pos_ - 4)));
          }
          pos_ = end + 3;
          continue;
        }
        if (looking_at("<![CDATA[")) {
          const std::size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return fail("xml.unterminated-cdata", "unterminated CDATA section");
          }
          element.add_cdata(std::string(input_.substr(pos_ + 9, end - pos_ - 9)));
          pos_ = end + 3;
          continue;
        }
      } else if (next == '?') {
        const std::size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return fail("xml.unterminated-pi", "unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (element.children().empty()) element.children().reserve(4);
      Result<Element> child = parse_element_node(depth + 1);
      if (!child.ok()) return child.error();
      element.add_child(std::move(child.value()));
    }
  }

  std::string_view input_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  // Lazy location state: how far newline counting has progressed, the line
  // number at that point, and the index just past the last '\n' seen.
  std::size_t loc_scanned_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Result<Document> parse(std::string_view input, const ParseOptions& options) {
  return Parser{input, options}.parse_document();
}

Result<Element> parse_element(std::string_view input, const ParseOptions& options) {
  Result<Document> doc = parse(input, options);
  if (!doc.ok()) return doc.error();
  return std::move(doc.value().root);
}

}  // namespace wsx::xml
