#include "xml/parser.hpp"

#include <cctype>
#include <string>

#include "common/strings.hpp"

namespace wsx::xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '.';
}

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> parse_document() {
    Document doc;
    skip_bom();
    skip_misc_allowing_prolog(doc);
    if (at_end()) return fail("xml.no-root", "document has no root element");
    Result<Element> root = parse_element_node(0);
    if (!root.ok()) return root.error();
    doc.root = std::move(root.value());
    skip_trailing_misc();
    if (!at_end()) return fail("xml.trailing-content", "content after root element");
    return doc;
  }

 private:
  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  bool looking_at(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  void skip_space() {
    while (!at_end() && is_space(peek())) advance();
  }

  Error fail(std::string code, std::string_view what) const {
    return Error{std::move(code), std::string(what) + " at line " + std::to_string(line_) +
                                      ", column " + std::to_string(column_)};
  }

  void skip_bom() {
    if (input_.substr(0, 3) == "\xEF\xBB\xBF") pos_ = 3;
  }

  void skip_misc_allowing_prolog(Document& doc) {
    skip_space();
    if (looking_at("<?xml")) {
      const std::size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) return;  // malformed prolog caught later
      const std::string_view prolog = input_.substr(pos_, end - pos_);
      extract_pseudo_attribute(prolog, "version", doc.version);
      extract_pseudo_attribute(prolog, "encoding", doc.encoding);
      advance_by(end + 2 - pos_);
    }
    skip_misc();
  }

  static void extract_pseudo_attribute(std::string_view prolog, std::string_view key,
                                       std::string& out) {
    const std::size_t key_pos = prolog.find(key);
    if (key_pos == std::string_view::npos) return;
    const std::size_t quote = prolog.find_first_of("\"'", key_pos);
    if (quote == std::string_view::npos) return;
    const char q = prolog[quote];
    const std::size_t close = prolog.find(q, quote + 1);
    if (close == std::string_view::npos) return;
    out = std::string(prolog.substr(quote + 1, close - quote - 1));
  }

  void skip_misc() {
    while (true) {
      skip_space();
      if (looking_at("<!--")) {
        const std::size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          pos_ = input_.size();
          return;
        }
        advance_by(end + 3 - pos_);
      } else if (looking_at("<?")) {
        const std::size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          pos_ = input_.size();
          return;
        }
        advance_by(end + 2 - pos_);
      } else if (looking_at("<!DOCTYPE")) {
        // Skip doctype without internal subset; reject subsets.
        std::size_t scan = pos_;
        int depth = 0;
        for (; scan < input_.size(); ++scan) {
          if (input_[scan] == '[') ++depth;
          if (input_[scan] == ']') --depth;
          if (input_[scan] == '>' && depth == 0) break;
        }
        advance_by(scan + 1 - pos_);
      } else {
        return;
      }
    }
  }

  void skip_trailing_misc() { skip_misc(); }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return fail("xml.bad-name", "expected a name");
    const std::size_t start = pos_;
    while (!at_end() && is_name_char(peek())) advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return fail("xml.bad-entity", "unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "amp") {
        out += '&';
      } else if (entity == "apos") {
        out += '\'';
      } else if (entity == "quot") {
        out += '"';
      } else if (!entity.empty() && entity[0] == '#') {
        unsigned long value = 0;
        try {
          value = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')
                      ? std::stoul(std::string(entity.substr(2)), nullptr, 16)
                      : std::stoul(std::string(entity.substr(1)), nullptr, 10);
        } catch (...) {
          return fail("xml.bad-entity", "malformed character reference");
        }
        append_utf8(out, value);
      } else {
        return fail("xml.unknown-entity", "unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  static void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Attribute> parse_attribute() {
    Result<std::string> name = parse_name();
    if (!name.ok()) return name.error();
    skip_space();
    if (at_end() || peek() != '=') return fail("xml.expected-eq", "expected '=' after attribute");
    advance();
    skip_space();
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return fail("xml.expected-quote", "expected quoted attribute value");
    }
    const char quote = peek();
    advance();
    const std::size_t start = pos_;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') return fail("xml.lt-in-attr", "'<' not allowed in attribute value");
      advance();
    }
    if (at_end()) return fail("xml.unterminated-attr", "unterminated attribute value");
    Result<std::string> value = decode_entities(input_.substr(start, pos_ - start));
    if (!value.ok()) return value.error();
    advance();  // closing quote
    return Attribute{std::move(name.value()), std::move(value.value())};
  }

  Result<Element> parse_element_node(std::size_t depth) {
    if (depth > options_.max_depth) return fail("xml.too-deep", "maximum nesting depth exceeded");
    if (at_end() || peek() != '<') return fail("xml.expected-element", "expected '<'");
    const std::size_t tag_line = line_;
    const std::size_t tag_column = column_;
    advance();
    Result<std::string> name = parse_name();
    if (!name.ok()) return name.error();
    Element element{std::move(name.value())};
    element.set_source_location(tag_line, tag_column);

    while (true) {
      skip_space();
      if (at_end()) return fail("xml.unterminated-tag", "unterminated start tag");
      if (peek() == '>') {
        advance();
        break;
      }
      if (looking_at("/>")) {
        advance_by(2);
        return element;
      }
      Result<Attribute> attr = parse_attribute();
      if (!attr.ok()) return attr.error();
      if (element.has_attribute(attr.value().name)) {
        return fail("xml.duplicate-attr", "duplicate attribute '" + attr.value().name + "'");
      }
      element.attributes().push_back(std::move(attr.value()));
    }

    // Content until matching end tag.
    while (true) {
      if (at_end()) {
        return fail("xml.unterminated-element", "missing end tag for '" + element.name() + "'");
      }
      if (looking_at("</")) {
        advance_by(2);
        Result<std::string> end_name = parse_name();
        if (!end_name.ok()) return end_name.error();
        if (end_name.value() != element.name()) {
          return fail("xml.mismatched-tag", "end tag '" + end_name.value() +
                                                "' does not match start tag '" + element.name() +
                                                "'");
        }
        skip_space();
        if (at_end() || peek() != '>') return fail("xml.bad-end-tag", "malformed end tag");
        advance();
        return element;
      }
      if (looking_at("<!--")) {
        const std::size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return fail("xml.unterminated-comment", "unterminated comment");
        }
        if (options_.keep_comments) {
          element.add_comment(std::string(input_.substr(pos_ + 4, end - pos_ - 4)));
        }
        advance_by(end + 3 - pos_);
        continue;
      }
      if (looking_at("<![CDATA[")) {
        const std::size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return fail("xml.unterminated-cdata", "unterminated CDATA section");
        }
        element.add_cdata(std::string(input_.substr(pos_ + 9, end - pos_ - 9)));
        advance_by(end + 3 - pos_);
        continue;
      }
      if (looking_at("<?")) {
        const std::size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return fail("xml.unterminated-pi", "unterminated processing instruction");
        }
        advance_by(end + 2 - pos_);
        continue;
      }
      if (peek() == '<') {
        Result<Element> child = parse_element_node(depth + 1);
        if (!child.ok()) return child.error();
        element.add_child(std::move(child.value()));
        continue;
      }
      // Character data.
      const std::size_t start = pos_;
      while (!at_end() && peek() != '<') advance();
      Result<std::string> text = decode_entities(input_.substr(start, pos_ - start));
      if (!text.ok()) return text.error();
      if (!trim(text.value()).empty()) element.add_text(std::move(text.value()));
    }
  }

  std::string_view input_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Result<Document> parse(std::string_view input, const ParseOptions& options) {
  return Parser{input, options}.parse_document();
}

Result<Element> parse_element(std::string_view input, const ParseOptions& options) {
  Result<Document> doc = parse(input, options);
  if (!doc.ok()) return doc.error();
  return std::move(doc.value().root);
}

}  // namespace wsx::xml
