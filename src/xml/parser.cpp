// parser.cpp — DOM front-end over the streaming pull tokenizer.
//
// The tokenizer (xml/pull.*) owns every lexical decision: names, attributes,
// entities, depth limits and error codes. This file only materialises the
// token stream into the value-semantic tree, so the DOM and the streaming
// SOAP path (soap/envelope.*) cannot disagree about whether an input is
// well-formed or what error it produces.
#include "xml/parser.hpp"

#include <string>

#include "common/strings.hpp"

namespace wsx::xml {
namespace {

Element element_from(const pull::Token& token) {
  Element element{std::string(token.name)};
  element.set_source_location(token.line, token.column);
  if (token.attr_count > 0) {
    element.attributes().reserve(token.attr_count < 4 ? 4 : token.attr_count);
    for (std::size_t i = 0; i < token.attr_count; ++i) {
      element.attributes().push_back(
          Attribute{std::string(token.attrs[i].name), std::string(token.attrs[i].value)});
    }
  }
  return element;
}

}  // namespace

Result<Element> collect_element(pull::Tokenizer& tok, const pull::Token& start,
                                const ParseOptions& options) {
  Element root = element_from(start);
  // Ancestor chain into the tree under construction. Pointers stay valid:
  // only the top element's children vector ever grows, and no pointer to a
  // sibling below the top is retained.
  std::vector<Element*> open{&root};
  while (!open.empty()) {
    const pull::Token& token = tok.next();
    switch (token.kind) {
      case pull::TokenKind::kStartElement: {
        Element& parent = *open.back();
        if (parent.children().empty()) parent.children().reserve(4);
        open.push_back(&parent.add_child(element_from(token)));
        break;
      }
      case pull::TokenKind::kEndElement:
        open.pop_back();
        break;
      case pull::TokenKind::kText:
        // Whitespace-only runs (pretty-printed indentation) are dropped,
        // matching the historical DOM behaviour.
        if (!trim(token.value).empty()) open.back()->add_text(std::string(token.value));
        break;
      case pull::TokenKind::kCData:
        open.back()->add_cdata(std::string(token.value));
        break;
      case pull::TokenKind::kComment:
        if (options.keep_comments) open.back()->add_comment(std::string(token.value));
        break;
      case pull::TokenKind::kPi:
        break;  // skipped, as before
      default:
        // kError / kNeedMore (and, defensively, anything else mid-subtree).
        return tok.error();
    }
  }
  return root;
}

Result<Document> parse(std::string_view input, const ParseOptions& options) {
  pull::Tokenizer tok{input, pull::TokenizerOptions{options.max_depth}};
  Document doc;
  for (;;) {
    const pull::Token& token = tok.next();
    switch (token.kind) {
      case pull::TokenKind::kStartDocument:
        // Empty view = pseudo-attribute absent (keep the defaults); a
        // present-but-empty value has a non-null data pointer.
        if (token.version.data() != nullptr) doc.version = std::string(token.version);
        if (token.encoding.data() != nullptr) doc.encoding = std::string(token.encoding);
        break;
      case pull::TokenKind::kComment:
      case pull::TokenKind::kPi:
        break;  // misc before the root has nowhere to live in the Document
      case pull::TokenKind::kStartElement: {
        Result<Element> root = collect_element(tok, token, options);
        if (!root.ok()) return root.error();
        doc.root = std::move(root.value());
        // Trailing misc after the root; the tokenizer rejects real content.
        for (;;) {
          const pull::Token& trailing = tok.next();
          if (trailing.kind == pull::TokenKind::kEndDocument) return doc;
          if (trailing.kind == pull::TokenKind::kError ||
              trailing.kind == pull::TokenKind::kNeedMore) {
            return tok.error();
          }
        }
      }
      case pull::TokenKind::kEndDocument:
        // Unreachable: the tokenizer reports xml.no-root itself.
        return Error{"xml.no-root", "document has no root element"};
      default:
        return tok.error();
    }
  }
}

Result<Element> parse_element(std::string_view input, const ParseOptions& options) {
  Result<Document> doc = parse(input, options);
  if (!doc.ok()) return doc.error();
  return std::move(doc.value().root);
}

}  // namespace wsx::xml
