// node.hpp — a small, value-semantic XML DOM.
//
// The tree is deliberately simple: elements, text, CDATA and comments.
// Namespace handling follows the XML Namespaces recommendation: prefixes
// are declared via xmlns/xmlns:p attributes and resolved lexically.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "xml/qname.hpp"

namespace wsx::xml {

struct Text {
  std::string value;
  friend bool operator==(const Text&, const Text&) = default;
};

struct CData {
  std::string value;
  friend bool operator==(const CData&, const CData&) = default;
};

struct Comment {
  std::string value;
  friend bool operator==(const Comment&, const Comment&) = default;
};

struct Attribute {
  std::string name;  ///< lexical name, possibly prefixed ("xsi:type")
  std::string value;
  friend bool operator==(const Attribute&, const Attribute&) = default;
};

struct Node;  // defined below; vector<Node> of incomplete type is valid C++17+

/// An XML element. Element names are stored lexically (optionally prefixed);
/// namespace resolution happens via NamespaceScope (see query.hpp) so a
/// serialized-then-reparsed tree behaves identically to the original.
class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Local part of a possibly-prefixed lexical name.
  std::string local_name() const;
  /// Prefix of the lexical name, or "" when unprefixed.
  std::string prefix() const;

  const std::vector<Attribute>& attributes() const { return attributes_; }
  std::vector<Attribute>& attributes() { return attributes_; }
  /// Returns attribute value by lexical name, or nullopt.
  std::optional<std::string> attribute(std::string_view name) const;
  /// Sets (or replaces) an attribute.
  Element& set_attribute(std::string name, std::string value);
  bool has_attribute(std::string_view name) const { return attribute(name).has_value(); }

  const std::vector<Node>& children() const { return children_; }
  std::vector<Node>& children() { return children_; }

  /// Appends a child element and returns a reference to the stored copy.
  Element& add_child(Element child);
  Element& add_element(std::string name);  ///< convenience: add_child(Element{name})
  void add_text(std::string text);
  void add_cdata(std::string text);
  void add_comment(std::string text);

  /// Concatenation of all direct Text/CData children.
  std::string text() const;

  /// Direct child elements (filtering out text/comments).
  std::vector<const Element*> child_elements() const;
  std::vector<Element*> child_elements();
  /// First direct child element with the given lexical local name, or nullptr.
  const Element* child(std::string_view local_name) const;
  Element* child(std::string_view local_name);
  /// All direct child elements with the given lexical local name.
  std::vector<const Element*> children_named(std::string_view local_name) const;

  /// Removes the first direct child element with the given lexical local
  /// name; returns true when one was removed.
  bool remove_child(std::string_view local_name);
  /// Removes the attribute with the given lexical name; true when removed.
  bool remove_attribute(std::string_view name);
  /// Inserts a child element at the front (before all existing children).
  Element& prepend_child(Element child);

  /// Declares a namespace: xmlns:prefix="uri" (or default xmlns when prefix
  /// is empty).
  Element& declare_namespace(std::string_view prefix, std::string_view uri);
  /// Looks up a prefix declared on *this element only* (no ancestor walk).
  std::optional<std::string> local_namespace_for_prefix(std::string_view prefix) const;

  /// 1-based position of the start tag in the parsed source; 0 when the
  /// element was built programmatically. Excluded from operator== so a
  /// serialized-then-reparsed tree still compares equal to the original.
  std::size_t source_line() const { return source_line_; }
  std::size_t source_column() const { return source_column_; }
  void set_source_location(std::size_t line, std::size_t column) {
    source_line_ = line;
    source_column_ = column;
  }

  friend bool operator==(const Element&, const Element&);

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<Node> children_;
  std::size_t source_line_ = 0;
  std::size_t source_column_ = 0;
};

struct Node : std::variant<Element, Text, CData, Comment> {
  using variant::variant;

  bool is_element() const { return std::holds_alternative<Element>(*this); }
  const Element* as_element() const { return std::get_if<Element>(this); }
  Element* as_element() { return std::get_if<Element>(this); }
};

bool operator==(const Element& a, const Element& b);

/// A parsed document: prolog info plus the root element.
struct Document {
  std::string version = "1.0";
  std::string encoding = "UTF-8";
  Element root;
};

}  // namespace wsx::xml
