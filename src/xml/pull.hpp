// pull.hpp — zero-copy streaming (pull) XML tokenizer.
//
// The one XML scanner in the tree. The DOM front-end (parser.*) and the
// streaming SOAP envelope path (soap/envelope.*, soap/validate.*) are both
// clients of this tokenizer, so the two representations cannot drift: they
// see the same token stream, the same error codes and the same
// well-formedness decisions on every input.
//
// Zero-copy: token names, attribute names and values, and character data
// are std::string_view slices of the input buffer whenever possible. The
// only bytes the tokenizer copies are entity-decoded values, which land in
// an owned common::Arena and stay valid until the tokenizer is destroyed.
//
// Incremental feed: a tokenizer constructed without input accepts bytes
// via feed() and returns kNeedMore when the next token is not yet complete
// (the partial token is rescanned once more bytes arrive — cheap, since
// tokens are small). finish() marks end-of-input, after which incomplete
// constructs become the same errors the one-shot parse reports.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "common/result.hpp"

namespace wsx::xml::pull {

enum class TokenKind : unsigned char {
  kStartDocument,  ///< prolog seen (or absent); carries version/encoding
  kStartElement,   ///< name + attributes; self_closing when <.../>
  kEndElement,     ///< also synthesized after a self-closing start
  kText,           ///< character data, entity-decoded
  kCData,          ///< raw CDATA content
  kComment,        ///< comment body (content between <!-- and -->)
  kPi,             ///< processing instruction, skipped content
  kEndDocument,    ///< the document is complete and well-formed
  kNeedMore,       ///< incremental mode: feed more bytes (or finish())
  kError,          ///< see Tokenizer::error()
};

struct AttrView {
  std::string_view name;   ///< lexical name ("xmlns:soapenv", "x")
  std::string_view value;  ///< decoded; aliases input unless entities forced a copy
};

/// One token. Views alias the tokenizer's buffer: in one-shot mode they
/// stay valid for the tokenizer's lifetime; in incremental mode until the
/// next feed() (which may reallocate the pending buffer).
struct Token {
  TokenKind kind = TokenKind::kError;
  std::string_view name;     ///< element name (start/end), PI target
  std::string_view value;    ///< text/cdata/comment content
  const AttrView* attrs = nullptr;
  std::size_t attr_count = 0;
  bool self_closing = false;   ///< kStartElement of an empty-element tag
  std::size_t line = 0;        ///< 1-based, start elements only
  std::size_t column = 0;
  std::string_view version;    ///< kStartDocument; empty = no prolog value
  std::string_view encoding;
};

struct TokenizerOptions {
  /// Reject documents whose nesting depth exceeds this bound (same meaning
  /// as ParseOptions::max_depth).
  std::size_t max_depth = 256;
};

class Tokenizer {
 public:
  /// One-shot: tokenize a complete document held by the caller. Views
  /// alias `input`, which must outlive the tokenizer.
  explicit Tokenizer(std::string_view input, TokenizerOptions options = {});

  /// Incremental: start empty, feed() chunks, finish() at end-of-input.
  explicit Tokenizer(TokenizerOptions options);

  Tokenizer(const Tokenizer&) = delete;
  Tokenizer& operator=(const Tokenizer&) = delete;

  /// Appends bytes (incremental mode only). Invalidates outstanding views.
  void feed(std::string_view chunk);
  /// Marks end-of-input: pending incomplete constructs become errors.
  void finish();

  /// Scans and returns the next token. After kError / kEndDocument every
  /// further call returns the same token.
  const Token& next();

  /// The failure, valid once next() returned kError. Codes and messages
  /// match the DOM parser's ("xml." prefix, line/column in the message).
  const Error& error() const { return error_; }

  /// Elements currently open (depth of the cursor).
  std::size_t depth() const { return stack_.size(); }

  /// Scratch arena holding decoded values; reset() only when every
  /// outstanding token view has been consumed.
  common::Arena& arena() { return arena_; }

 private:
  enum class State : unsigned char {
    kStartOfDocument,  ///< BOM + prolog not yet emitted
    kBeforeRoot,       ///< prolog emitted, root start tag pending
    kContent,          ///< inside the root element
    kEpilog,           ///< root closed, trailing misc allowed
    kDone,
    kFailed,
  };

  std::string_view buffer() const {
    return incremental_ ? std::string_view(pending_) : input_;
  }
  bool at_end(std::size_t pos) const { return pos >= buffer().size(); }

  const Token& emit_error(std::string code, std::string what, std::size_t pos);
  const Token& emit_need_more(std::size_t rewind_to);
  const Token& scan_start_of_document();
  const Token& scan_before_root();
  const Token& scan_content();
  const Token& scan_epilog();
  const Token& scan_element_start();
  const Token& scan_element_end();
  bool scan_attribute();  ///< false on error/need-more (token_ already set)

  /// Decodes entities in raw (no-op view when `&` is absent); false on a
  /// malformed reference (token_ set to the error, positioned at `err_pos`).
  bool decode(std::string_view raw, std::size_t err_pos, std::string_view& out);

  struct Location {
    std::size_t line;
    std::size_t column;
  };
  Location location_at(std::size_t pos);

  std::string_view input_;   ///< one-shot buffer
  std::string pending_;      ///< incremental buffer (grows on feed)
  bool incremental_ = false;
  bool finished_ = false;
  TokenizerOptions options_;

  State state_ = State::kStartOfDocument;
  std::size_t pos_ = 0;
  bool pending_end_element_ = false;  ///< self-closing start emitted, end next
  std::string_view pending_end_name_;  ///< stable name for that synthesized end
  /// Open element names. One-shot mode: views into the caller's buffer.
  /// Incremental mode: arena copies — feed() may reallocate pending_, but
  /// arena allocations never move.
  std::vector<std::string_view> stack_;
  std::vector<AttrView> attrs_;          ///< reused per start tag
  Token token_;
  Error error_;
  common::Arena arena_;

  // Lazy line/column accounting (same scheme as the old DOM parser): the
  // newline scan advances monotonically, so tokens and errors pay only for
  // the bytes between consecutive location requests.
  std::size_t loc_scanned_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

/// Drains `tok` until kEndDocument or kError; the cheap well-formedness
/// oracle (used by the fuzz/chaos bridge and by consumers that must reach
/// end-of-document to preserve error parity with the DOM path).
Result<bool> drain(Tokenizer& tok);

/// Consumes the element whose kStartElement token was just returned,
/// through its matching end tag, without building anything.
/// Returns the tokenizer's error if the subtree is malformed.
Result<bool> skip_element(Tokenizer& tok, const Token& start);

}  // namespace wsx::xml::pull
