#include "xml/qname.hpp"

namespace wsx::xml {

namespace ns {

// The length switch below hard-codes the URI lengths; keep it honest.
static_assert(kXsd.size() == 32 && kWsdl.size() == 32);
static_assert(kXsi.size() == 41 && kSoapEnvelope.size() == 41 && kSoapEncoding.size() == 41);
static_assert(kWsdlSoap.size() == 37);
static_assert(kSoap12Envelope.size() == 39);
static_assert(kSoapHttp.size() == 36 && kWsAddressing.size() == 36 && kXmlNs.size() == 36);

Id intern(std::string_view uri) {
  if (uri.empty()) return Id::kNone;
  switch (uri.size()) {
    case 32:
      if (uri == kXsd) return Id::kXsd;
      if (uri == kWsdl) return Id::kWsdl;
      break;
    case 41:
      if (uri == kSoapEnvelope) return Id::kSoapEnvelope;
      if (uri == kXsi) return Id::kXsi;
      if (uri == kSoapEncoding) return Id::kSoapEncoding;
      break;
    case 37:
      if (uri == kWsdlSoap) return Id::kWsdlSoap;
      break;
    case 39:
      if (uri == kSoap12Envelope) return Id::kSoap12Envelope;
      break;
    case 36:
      if (uri == kSoapHttp) return Id::kSoapHttp;
      if (uri == kWsAddressing) return Id::kWsAddressing;
      if (uri == kXmlNs) return Id::kXmlNs;
      break;
    default:
      break;
  }
  return Id::kOther;
}

}  // namespace ns

std::string QName::expanded() const {
  if (namespace_uri_.empty()) return local_name_;
  return "{" + namespace_uri_ + "}" + local_name_;
}

std::string QName::lexical() const {
  if (prefix_.empty()) return local_name_;
  return prefix_ + ":" + local_name_;
}

QName xsd(std::string local_name) {
  return QName{std::string(ns::kXsd), std::move(local_name), "xsd"};
}

}  // namespace wsx::xml
