#include "xml/qname.hpp"

namespace wsx::xml {

std::string QName::expanded() const {
  if (namespace_uri_.empty()) return local_name_;
  return "{" + namespace_uri_ + "}" + local_name_;
}

std::string QName::lexical() const {
  if (prefix_.empty()) return local_name_;
  return prefix_ + ":" + local_name_;
}

QName xsd(std::string local_name) {
  return QName{std::string(ns::kXsd), std::move(local_name), "xsd"};
}

}  // namespace wsx::xml
