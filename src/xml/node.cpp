#include "xml/node.hpp"

#include <algorithm>

namespace wsx::xml {

std::string Element::local_name() const {
  const std::size_t pos = name_.find(':');
  return pos == std::string::npos ? name_ : name_.substr(pos + 1);
}

std::string Element::prefix() const {
  const std::size_t pos = name_.find(':');
  return pos == std::string::npos ? std::string{} : name_.substr(0, pos);
}

std::optional<std::string> Element::attribute(std::string_view name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return attr.value;
  }
  return std::nullopt;
}

Element& Element::set_attribute(std::string name, std::string value) {
  for (Attribute& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::move(value);
      return *this;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
  return *this;
}

Element& Element::add_child(Element child) {
  children_.emplace_back(std::move(child));
  return *children_.back().as_element();
}

Element& Element::add_element(std::string name) { return add_child(Element{std::move(name)}); }

void Element::add_text(std::string text) { children_.emplace_back(Text{std::move(text)}); }
void Element::add_cdata(std::string text) { children_.emplace_back(CData{std::move(text)}); }
void Element::add_comment(std::string text) { children_.emplace_back(Comment{std::move(text)}); }

std::string Element::text() const {
  std::string out;
  for (const Node& node : children_) {
    if (const Text* t = std::get_if<Text>(&node)) out += t->value;
    if (const CData* c = std::get_if<CData>(&node)) out += c->value;
  }
  return out;
}

std::vector<const Element*> Element::child_elements() const {
  std::vector<const Element*> out;
  for (const Node& node : children_) {
    if (const Element* e = node.as_element()) out.push_back(e);
  }
  return out;
}

std::vector<Element*> Element::child_elements() {
  std::vector<Element*> out;
  for (Node& node : children_) {
    if (Element* e = node.as_element()) out.push_back(e);
  }
  return out;
}

const Element* Element::child(std::string_view local_name) const {
  for (const Node& node : children_) {
    if (const Element* e = node.as_element()) {
      if (e->local_name() == local_name) return e;
    }
  }
  return nullptr;
}

Element* Element::child(std::string_view local_name) {
  for (Node& node : children_) {
    if (Element* e = node.as_element()) {
      if (e->local_name() == local_name) return e;
    }
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view local_name) const {
  std::vector<const Element*> out;
  for (const Node& node : children_) {
    if (const Element* e = node.as_element()) {
      if (e->local_name() == local_name) out.push_back(e);
    }
  }
  return out;
}

bool Element::remove_child(std::string_view local_name) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (const Element* element = it->as_element()) {
      if (element->local_name() == local_name) {
        children_.erase(it);
        return true;
      }
    }
  }
  return false;
}

bool Element::remove_attribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

Element& Element::prepend_child(Element child) {
  children_.insert(children_.begin(), Node{std::move(child)});
  return *children_.front().as_element();
}

Element& Element::declare_namespace(std::string_view prefix, std::string_view uri) {
  const std::string attr_name =
      prefix.empty() ? std::string{"xmlns"} : "xmlns:" + std::string(prefix);
  return set_attribute(attr_name, std::string(uri));
}

std::optional<std::string> Element::local_namespace_for_prefix(std::string_view prefix) const {
  const std::string attr_name =
      prefix.empty() ? std::string{"xmlns"} : "xmlns:" + std::string(prefix);
  return attribute(attr_name);
}

bool operator==(const Element& a, const Element& b) {
  return a.name_ == b.name_ && a.attributes_ == b.attributes_ && a.children_ == b.children_;
}

}  // namespace wsx::xml
