// query.hpp — namespace resolution and tree queries over parsed XML.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/node.hpp"
#include "xml/qname.hpp"

namespace wsx::xml {

/// Lexically-scoped namespace environment. Push a frame per element while
/// walking the tree; lookups see the innermost binding of a prefix.
class NamespaceScope {
 public:
  NamespaceScope();

  /// Pushes the declarations found on `element` (xmlns / xmlns:p attributes).
  void push(const Element& element);
  void pop();

  /// URI bound to `prefix`, or nullopt. The empty prefix looks up the
  /// default namespace; "xml" is always bound per the XML spec.
  std::optional<std::string> resolve_prefix(std::string_view prefix) const;

  /// Zero-copy variant: pointer to the bound URI (valid until the scope is
  /// mutated), or nullptr when the prefix is undeclared. Hot paths that only
  /// compare the URI use this to skip the std::string copy resolve_prefix
  /// makes.
  const std::string* find_prefix(std::string_view prefix) const;

  /// Resolves a lexical QName ("p:local" or "local"). Unprefixed names take
  /// the default namespace when `use_default_ns` is set (element names do;
  /// attribute names and many WSDL attribute values do not).
  std::optional<QName> resolve(std::string_view lexical, bool use_default_ns = true) const;

 private:
  struct Binding {
    std::string prefix;
    std::string uri;
  };
  std::vector<std::vector<Binding>> frames_;
};

/// Walks the tree depth-first, maintaining a NamespaceScope, and invokes
/// `visit(element, scope)` for every element (including the root).
void walk(const Element& root,
          const std::function<void(const Element&, const NamespaceScope&)>& visit);

/// All descendant (not self) elements whose resolved QName equals `name`.
std::vector<const Element*> find_all(const Element& root, const QName& name);

/// First descendant element with the given resolved QName, or nullptr.
const Element* find_first(const Element& root, const QName& name);

/// Resolves the element's own name against declarations in scope starting
/// from `root` (the element must be a descendant-or-self of root).
std::optional<QName> resolved_name(const Element& root, const Element& target);

/// Depth-first search (self included) for the first element satisfying
/// `predicate`; mutable variant for tree editing.
Element* find_descendant(Element& root, const std::function<bool(const Element&)>& predicate);
const Element* find_descendant(const Element& root,
                               const std::function<bool(const Element&)>& predicate);

}  // namespace wsx::xml
