#include "xml/pull.hpp"

#include <array>
#include <cstring>
#include <string>

namespace wsx::xml::pull {
namespace {

// Branch-free character classes (shared philosophy with the writer's
// escape table): a 256-entry lookup keeps name/space scanning to a load
// and a test per byte.
enum : unsigned char { kNameStart = 1, kNameChar = 2, kSpace = 4 };

constexpr std::array<unsigned char, 256> build_char_classes() {
  std::array<unsigned char, 256> table{};
  for (int c = 'A'; c <= 'Z'; ++c) table[c] = kNameStart | kNameChar;
  for (int c = 'a'; c <= 'z'; ++c) table[c] = kNameStart | kNameChar;
  table['_'] = table[':'] = kNameStart | kNameChar;
  for (int c = '0'; c <= '9'; ++c) table[c] = kNameChar;
  table['-'] = table['.'] = kNameChar;
  table[' '] = table['\t'] = table['\r'] = table['\n'] = kSpace;
  return table;
}

constexpr std::array<unsigned char, 256> kCharClass = build_char_classes();

bool is_name_start(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameStart) != 0;
}

bool is_name_char(char c) {
  return (kCharClass[static_cast<unsigned char>(c)] & kNameChar) != 0;
}

bool is_space(char c) { return (kCharClass[static_cast<unsigned char>(c)] & kSpace) != 0; }

/// True when `text` could still grow into `token` (it is a proper prefix);
/// the incremental mode's "don't decide yet" test.
bool is_prefix_of(std::string_view text, std::string_view token) {
  return text.size() < token.size() && token.substr(0, text.size()) == text;
}

void append_utf8(char*& out, unsigned long cp) {
  if (cp < 0x80) {
    *out++ = static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out++ = static_cast<char>(0xC0 | (cp >> 6));
    *out++ = static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out++ = static_cast<char>(0xE0 | (cp >> 12));
    *out++ = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out++ = static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out++ = static_cast<char>(0xF0 | (cp >> 18));
    *out++ = static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out++ = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out++ = static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Extracts version="..."/encoding="..." views from the prolog text.
std::string_view pseudo_attribute(std::string_view prolog, std::string_view key) {
  const std::size_t key_pos = prolog.find(key);
  if (key_pos == std::string_view::npos) return {};
  const std::size_t quote = prolog.find_first_of("\"'", key_pos);
  if (quote == std::string_view::npos) return {};
  const char q = prolog[quote];
  const std::size_t close = prolog.find(q, quote + 1);
  if (close == std::string_view::npos) return {};
  return prolog.substr(quote + 1, close - quote - 1);
}

}  // namespace

Tokenizer::Tokenizer(std::string_view input, TokenizerOptions options)
    : input_(input), options_(options) {
  finished_ = true;
  stack_.reserve(16);
  attrs_.reserve(8);
}

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  incremental_ = true;
  stack_.reserve(16);
  attrs_.reserve(8);
}

void Tokenizer::feed(std::string_view chunk) { pending_.append(chunk); }

void Tokenizer::finish() { finished_ = true; }

Tokenizer::Location Tokenizer::location_at(std::size_t pos) {
  const char* base = buffer().data();
  while (loc_scanned_ < pos) {
    const void* nl = std::memchr(base + loc_scanned_, '\n', pos - loc_scanned_);
    if (nl == nullptr) break;
    const std::size_t idx = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
    ++line_;
    line_start_ = idx + 1;
    loc_scanned_ = idx + 1;
  }
  if (pos > loc_scanned_) loc_scanned_ = pos;
  return Location{line_, pos - line_start_ + 1};
}

const Token& Tokenizer::emit_error(std::string code, std::string what, std::size_t pos) {
  const Location loc = location_at(pos);
  error_ = Error{std::move(code), what + " at line " + std::to_string(loc.line) +
                                      ", column " + std::to_string(loc.column)};
  state_ = State::kFailed;
  token_ = Token{};
  token_.kind = TokenKind::kError;
  return token_;
}

const Token& Tokenizer::emit_need_more(std::size_t rewind_to) {
  pos_ = rewind_to;
  token_ = Token{};
  token_.kind = TokenKind::kNeedMore;
  return token_;
}

const Token& Tokenizer::next() {
  switch (state_) {
    case State::kStartOfDocument:
      return scan_start_of_document();
    case State::kBeforeRoot:
      return scan_before_root();
    case State::kContent:
      return scan_content();
    case State::kEpilog:
      return scan_epilog();
    case State::kDone:
      token_ = Token{};
      token_.kind = TokenKind::kEndDocument;
      return token_;
    case State::kFailed:
      token_ = Token{};
      token_.kind = TokenKind::kError;
      return token_;
  }
  return token_;  // unreachable
}

const Token& Tokenizer::scan_start_of_document() {
  const std::string_view in = buffer();
  const std::size_t start = pos_;

  // BOM. With fewer than 3 bytes buffered we cannot yet tell.
  if (pos_ == 0) {
    if (is_prefix_of(in, "\xEF\xBB\xBF") && !finished_) return emit_need_more(start);
    if (in.substr(0, 3) == "\xEF\xBB\xBF") {
      pos_ = 3;
      // The BOM is not part of column accounting: column 1 stays the first
      // real character.
      line_start_ = 3;
      loc_scanned_ = 3;
    }
  }

  while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
  if (pos_ >= in.size() && !finished_) return emit_need_more(start);

  token_ = Token{};
  token_.kind = TokenKind::kStartDocument;

  const std::string_view rest = in.substr(pos_);
  if (is_prefix_of(rest, "<?xml") && !finished_) return emit_need_more(start);
  if (rest.substr(0, 5) == "<?xml") {
    const std::size_t end = in.find("?>", pos_);
    if (end == std::string_view::npos) {
      if (!finished_) return emit_need_more(start);
      // Malformed prolog: leave it for the misc scanner, which consumes it
      // as an unterminated PI and reports "no root element" (the DOM
      // parser's historical behaviour).
    } else {
      const std::string_view prolog = in.substr(pos_, end - pos_);
      token_.version = pseudo_attribute(prolog, "version");
      token_.encoding = pseudo_attribute(prolog, "encoding");
      pos_ = end + 2;
    }
  }
  state_ = State::kBeforeRoot;
  return token_;
}

const Token& Tokenizer::scan_before_root() {
  const std::string_view in = buffer();
  for (;;) {
    const std::size_t start = pos_;
    while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
    if (pos_ >= in.size()) {
      if (!finished_) return emit_need_more(start);
      return emit_error("xml.no-root", "document has no root element", pos_);
    }
    const std::string_view rest = in.substr(pos_);
    if (is_prefix_of(rest, "<!--") || is_prefix_of(rest, "<!DOCTYPE")) {
      if (!finished_) return emit_need_more(start);
    }
    if (rest.substr(0, 4) == "<!--") {
      const std::size_t end = in.find("-->", pos_);
      if (end == std::string_view::npos) {
        if (!finished_) return emit_need_more(start);
        // Unterminated misc before the root swallows the rest of the
        // input; the next scan reports the missing root.
        pos_ = in.size();
        continue;
      }
      token_ = Token{};
      token_.kind = TokenKind::kComment;
      token_.value = in.substr(pos_ + 4, end - pos_ - 4);
      pos_ = end + 3;
      return token_;
    }
    if (rest.substr(0, 9) == "<!DOCTYPE") {
      // Skip doctype, tracking an optional internal subset's brackets.
      std::size_t scan = pos_;
      int depth = 0;
      for (; scan < in.size(); ++scan) {
        if (in[scan] == '[') ++depth;
        if (in[scan] == ']') --depth;
        if (in[scan] == '>' && depth == 0) break;
      }
      if (scan >= in.size() && !finished_) return emit_need_more(start);
      pos_ = scan < in.size() ? scan + 1 : in.size();
      continue;
    }
    if (rest.substr(0, 2) == "<?" || (rest == "<" && !finished_)) {
      if (rest.size() < 2 && !finished_) return emit_need_more(start);
      if (rest.substr(0, 2) == "<?") {
        const std::size_t end = in.find("?>", pos_);
        if (end == std::string_view::npos) {
          if (!finished_) return emit_need_more(start);
          pos_ = in.size();
          continue;
        }
        token_ = Token{};
        token_.kind = TokenKind::kPi;
        token_.value = in.substr(pos_ + 2, end - pos_ - 2);
        pos_ = end + 2;
        return token_;
      }
    }
    if (in[pos_] != '<') {
      return emit_error("xml.expected-element", "expected '<'", pos_);
    }
    return scan_element_start();
  }
}

const Token& Tokenizer::scan_content() {
  if (pending_end_element_) {
    pending_end_element_ = false;
    token_ = Token{};
    token_.kind = TokenKind::kEndElement;
    token_.name = pending_end_name_;
    pending_end_name_ = {};
    if (stack_.empty()) state_ = State::kEpilog;
    return token_;
  }
  const std::string_view in = buffer();
  const std::size_t start = pos_;
  if (pos_ >= in.size()) {
    if (!finished_) return emit_need_more(start);
    return emit_error("xml.unterminated-element",
                      "missing end tag for '" + std::string(stack_.back()) + "'", pos_);
  }
  if (in[pos_] != '<') {
    // Character data up to the next markup.
    const std::size_t lt = in.find('<', pos_);
    if (lt == std::string_view::npos && !finished_) return emit_need_more(start);
    const std::size_t run_end = lt == std::string_view::npos ? in.size() : lt;
    std::string_view decoded;
    if (!decode(in.substr(pos_, run_end - pos_), run_end, decoded)) return token_;
    pos_ = run_end;
    token_ = Token{};
    token_.kind = TokenKind::kText;
    token_.value = decoded;
    return token_;
  }
  // Markup: dispatch on the character after '<'.
  const std::string_view rest = in.substr(pos_);
  if (rest.size() < 2 && !finished_) return emit_need_more(start);
  const char next_char = rest.size() > 1 ? rest[1] : '\0';
  if (next_char == '/') return scan_element_end();
  if (next_char == '!') {
    if ((is_prefix_of(rest, "<!--") || is_prefix_of(rest, "<![CDATA[")) && !finished_) {
      return emit_need_more(start);
    }
    if (rest.substr(0, 4) == "<!--") {
      const std::size_t end = in.find("-->", pos_);
      if (end == std::string_view::npos) {
        if (!finished_) return emit_need_more(start);
        return emit_error("xml.unterminated-comment", "unterminated comment", pos_);
      }
      token_ = Token{};
      token_.kind = TokenKind::kComment;
      token_.value = in.substr(pos_ + 4, end - pos_ - 4);
      pos_ = end + 3;
      return token_;
    }
    if (rest.substr(0, 9) == "<![CDATA[") {
      const std::size_t end = in.find("]]>", pos_);
      if (end == std::string_view::npos) {
        if (!finished_) return emit_need_more(start);
        return emit_error("xml.unterminated-cdata", "unterminated CDATA section", pos_);
      }
      token_ = Token{};
      token_.kind = TokenKind::kCData;
      token_.value = in.substr(pos_ + 9, end - pos_ - 9);
      pos_ = end + 3;
      return token_;
    }
    // "<!" that is neither comment nor CDATA: falls through to the element
    // scanner, which rejects '!' as a name start (DOM parser parity).
    return scan_element_start();
  }
  if (next_char == '?') {
    const std::size_t end = in.find("?>", pos_);
    if (end == std::string_view::npos) {
      if (!finished_) return emit_need_more(start);
      return emit_error("xml.unterminated-pi", "unterminated processing instruction", pos_);
    }
    token_ = Token{};
    token_.kind = TokenKind::kPi;
    token_.value = in.substr(pos_ + 2, end - pos_ - 2);
    pos_ = end + 2;
    return token_;
  }
  return scan_element_start();
}

const Token& Tokenizer::scan_element_start() {
  const std::string_view in = buffer();
  const std::size_t tag_start = pos_;
  if (stack_.size() > options_.max_depth) {
    return emit_error("xml.too-deep", "maximum nesting depth exceeded", pos_);
  }
  const Location tag_loc = location_at(pos_);
  std::size_t p = pos_ + 1;  // past '<'
  if (p >= in.size()) {
    if (!finished_) return emit_need_more(tag_start);
    return emit_error("xml.bad-name", "expected a name", p);
  }
  if (!is_name_start(in[p])) return emit_error("xml.bad-name", "expected a name", p);
  const std::size_t name_start = p;
  ++p;
  while (p < in.size() && is_name_char(in[p])) ++p;
  if (p >= in.size() && !finished_) return emit_need_more(tag_start);
  const std::string_view name = in.substr(name_start, p - name_start);
  pos_ = p;

  attrs_.clear();
  for (;;) {
    while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
    if (pos_ >= in.size()) {
      if (!finished_) return emit_need_more(tag_start);
      return emit_error("xml.unterminated-tag", "unterminated start tag", pos_);
    }
    if (in[pos_] == '>') {
      ++pos_;
      // Incremental mode: feed() may reallocate the pending buffer, so the
      // name kept across tokens must live in the arena (which never moves).
      stack_.push_back(incremental_ ? arena_.copy(name) : name);
      token_ = Token{};
      token_.kind = TokenKind::kStartElement;
      token_.name = name;
      token_.attrs = attrs_.data();
      token_.attr_count = attrs_.size();
      token_.line = tag_loc.line;
      token_.column = tag_loc.column;
      state_ = State::kContent;
      return token_;
    }
    if (in.substr(pos_, 2) == "/>") {
      pos_ += 2;
      token_ = Token{};
      token_.kind = TokenKind::kStartElement;
      token_.name = name;
      token_.attrs = attrs_.data();
      token_.attr_count = attrs_.size();
      token_.self_closing = true;
      token_.line = tag_loc.line;
      token_.column = tag_loc.column;
      // The matching kEndElement is synthesized by the next call; the
      // element is never pushed, so depth() excludes it. The name must
      // survive a feed() in between, hence the arena copy.
      pending_end_element_ = true;
      pending_end_name_ = incremental_ ? arena_.copy(name) : name;
      state_ = State::kContent;
      return token_;
    }
    if (in[pos_] == '/' && pos_ + 1 >= in.size() && !finished_) {
      return emit_need_more(tag_start);
    }
    if (!scan_attribute()) {
      if (token_.kind == TokenKind::kNeedMore) return emit_need_more(tag_start);
      return token_;  // error already emitted
    }
  }
}

bool Tokenizer::scan_attribute() {
  const std::string_view in = buffer();
  if (pos_ >= in.size() || !is_name_start(in[pos_])) {
    emit_error("xml.bad-name", "expected a name", pos_);
    return false;
  }
  const std::size_t name_start = pos_;
  std::size_t p = pos_ + 1;
  while (p < in.size() && is_name_char(in[p])) ++p;
  if (p >= in.size() && !finished_) {
    token_ = Token{};
    token_.kind = TokenKind::kNeedMore;
    return false;
  }
  const std::string_view name = in.substr(name_start, p - name_start);
  pos_ = p;
  while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
  if (pos_ >= in.size() && !finished_) {
    token_ = Token{};
    token_.kind = TokenKind::kNeedMore;
    return false;
  }
  if (pos_ >= in.size() || in[pos_] != '=') {
    emit_error("xml.expected-eq", "expected '=' after attribute", pos_);
    return false;
  }
  ++pos_;
  while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
  if (pos_ >= in.size() && !finished_) {
    token_ = Token{};
    token_.kind = TokenKind::kNeedMore;
    return false;
  }
  if (pos_ >= in.size() || (in[pos_] != '"' && in[pos_] != '\'')) {
    emit_error("xml.expected-quote", "expected quoted attribute value", pos_);
    return false;
  }
  const char quote = in[pos_];
  ++pos_;
  const std::size_t value_start = pos_;
  const std::size_t stop = in.find_first_of(quote == '"' ? "\"<" : "'<", pos_);
  if (stop == std::string_view::npos) {
    if (!finished_) {
      token_ = Token{};
      token_.kind = TokenKind::kNeedMore;
      return false;
    }
    pos_ = in.size();
    emit_error("xml.unterminated-attr", "unterminated attribute value", pos_);
    return false;
  }
  pos_ = stop;
  if (in[stop] == '<') {
    emit_error("xml.lt-in-attr", "'<' not allowed in attribute value", pos_);
    return false;
  }
  std::string_view value;
  if (!decode(in.substr(value_start, stop - value_start), stop, value)) return false;
  ++pos_;  // closing quote
  for (const AttrView& existing : attrs_) {
    if (existing.name == name) {
      emit_error("xml.duplicate-attr", "duplicate attribute '" + std::string(name) + "'",
                 pos_);
      return false;
    }
  }
  attrs_.push_back(AttrView{name, value});
  return true;
}

const Token& Tokenizer::scan_element_end() {
  const std::string_view in = buffer();
  const std::size_t tag_start = pos_;
  pos_ += 2;  // past "</"
  if (pos_ >= in.size() && !finished_) return emit_need_more(tag_start);
  if (pos_ >= in.size() || !is_name_start(in[pos_])) {
    return emit_error("xml.bad-name", "expected a name", pos_);
  }
  const std::size_t name_start = pos_;
  std::size_t p = pos_ + 1;
  while (p < in.size() && is_name_char(in[p])) ++p;
  if (p >= in.size() && !finished_) return emit_need_more(tag_start);
  const std::string_view name = in.substr(name_start, p - name_start);
  pos_ = p;
  if (name != stack_.back()) {
    return emit_error("xml.mismatched-tag", "end tag '" + std::string(name) +
                                                "' does not match start tag '" +
                                                std::string(stack_.back()) + "'",
                      pos_);
  }
  while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
  if (pos_ >= in.size() && !finished_) return emit_need_more(tag_start);
  if (pos_ >= in.size() || in[pos_] != '>') {
    return emit_error("xml.bad-end-tag", "malformed end tag", pos_);
  }
  ++pos_;
  stack_.pop_back();
  token_ = Token{};
  token_.kind = TokenKind::kEndElement;
  token_.name = name;
  if (stack_.empty()) state_ = State::kEpilog;
  return token_;
}

const Token& Tokenizer::scan_epilog() {
  const std::string_view in = buffer();
  for (;;) {
    const std::size_t start = pos_;
    while (pos_ < in.size() && is_space(in[pos_])) ++pos_;
    if (pos_ >= in.size()) {
      if (!finished_) return emit_need_more(start);
      state_ = State::kDone;
      token_ = Token{};
      token_.kind = TokenKind::kEndDocument;
      return token_;
    }
    const std::string_view rest = in.substr(pos_);
    if ((is_prefix_of(rest, "<!--") || is_prefix_of(rest, "<!DOCTYPE") ||
         is_prefix_of(rest, "<?")) &&
        !finished_) {
      return emit_need_more(start);
    }
    if (rest.substr(0, 4) == "<!--") {
      const std::size_t end = in.find("-->", pos_);
      if (end == std::string_view::npos) {
        // The DOM parser accepted unterminated trailing misc (skip_misc
        // consumed to end-of-input); preserved for parity.
        if (!finished_) return emit_need_more(start);
        pos_ = in.size();
        continue;
      }
      token_ = Token{};
      token_.kind = TokenKind::kComment;
      token_.value = in.substr(pos_ + 4, end - pos_ - 4);
      pos_ = end + 3;
      return token_;
    }
    if (rest.substr(0, 2) == "<?") {
      const std::size_t end = in.find("?>", pos_);
      if (end == std::string_view::npos) {
        if (!finished_) return emit_need_more(start);
        pos_ = in.size();
        continue;
      }
      token_ = Token{};
      token_.kind = TokenKind::kPi;
      token_.value = in.substr(pos_ + 2, end - pos_ - 2);
      pos_ = end + 2;
      return token_;
    }
    if (rest.substr(0, 9) == "<!DOCTYPE") {
      std::size_t scan = pos_;
      int depth = 0;
      for (; scan < in.size(); ++scan) {
        if (in[scan] == '[') ++depth;
        if (in[scan] == ']') --depth;
        if (in[scan] == '>' && depth == 0) break;
      }
      if (scan >= in.size() && !finished_) return emit_need_more(start);
      pos_ = scan < in.size() ? scan + 1 : in.size();
      continue;
    }
    return emit_error("xml.trailing-content", "content after root element", pos_);
  }
}

bool Tokenizer::decode(std::string_view raw, std::size_t err_pos, std::string_view& out) {
  const std::size_t amp = raw.find('&');
  if (amp == std::string_view::npos) {
    out = raw;  // common case: zero-copy
    return true;
  }
  // Decoded text is never longer than the raw text (every reference is at
  // least as long as what it produces), so one arena block suffices.
  char* buf = arena_.char_buffer(raw.size());
  char* write = buf;
  std::memcpy(write, raw.data(), amp);
  write += amp;
  for (std::size_t i = amp; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      const std::size_t next = raw.find('&', i);
      const std::size_t run_end = next == std::string_view::npos ? raw.size() : next;
      std::memcpy(write, raw.data() + i, run_end - i);
      write += run_end - i;
      i = run_end - 1;
      continue;
    }
    const std::size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      emit_error("xml.bad-entity", "unterminated entity", err_pos);
      return false;
    }
    const std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      *write++ = '<';
    } else if (entity == "gt") {
      *write++ = '>';
    } else if (entity == "amp") {
      *write++ = '&';
    } else if (entity == "apos") {
      *write++ = '\'';
    } else if (entity == "quot") {
      *write++ = '"';
    } else if (!entity.empty() && entity[0] == '#') {
      unsigned long value = 0;
      try {
        value = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')
                    ? std::stoul(std::string(entity.substr(2)), nullptr, 16)
                    : std::stoul(std::string(entity.substr(1)), nullptr, 10);
      } catch (...) {
        emit_error("xml.bad-entity", "malformed character reference", err_pos);
        return false;
      }
      append_utf8(write, value);
    } else {
      emit_error("xml.unknown-entity", "unknown entity '&" + std::string(entity) + ";'",
                 err_pos);
      return false;
    }
    i = semi;
  }
  out = std::string_view(buf, static_cast<std::size_t>(write - buf));
  return true;
}

Result<bool> drain(Tokenizer& tok) {
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kEndDocument) return true;
    if (token.kind == TokenKind::kError) return tok.error();
    if (token.kind == TokenKind::kNeedMore) {
      return Error{"xml.incomplete", "input ended before the document was complete"};
    }
  }
}

Result<bool> skip_element(Tokenizer& tok, const Token& start) {
  std::size_t open = 1;
  (void)start;  // the start token is already consumed; self-closing starts
                // synthesize their end, so the loop is uniform
  while (open > 0) {
    const Token& token = tok.next();
    switch (token.kind) {
      case TokenKind::kStartElement:
        ++open;
        break;
      case TokenKind::kEndElement:
        --open;
        break;
      case TokenKind::kError:
        return tok.error();
      case TokenKind::kNeedMore:
        return Error{"xml.incomplete", "input ended inside an element"};
      default:
        break;
    }
  }
  return true;
}

}  // namespace wsx::xml::pull
