#include "xml/writer.hpp"

#include <array>

namespace wsx::xml {
namespace {

// Escape classes per byte: most values contain nothing to escape, so the
// writer scans with a table lookup and bulk-appends the clean runs instead
// of appending character by character. Output bytes are identical to the
// historical per-character writer: '<' '>' '&' always escape, '"' only
// inside attribute values, '\'' never.
enum : unsigned char { kEscapeInText = 1, kEscapeInAttr = 2 };

constexpr std::array<unsigned char, 256> build_escape_classes() {
  std::array<unsigned char, 256> table{};
  table['<'] = table['>'] = table['&'] = kEscapeInText | kEscapeInAttr;
  table['"'] = kEscapeInAttr;
  return table;
}

constexpr std::array<unsigned char, 256> kEscapeClass = build_escape_classes();

void append_escaped(std::string& out, std::string_view text, bool in_attribute) {
  const unsigned char mask = in_attribute ? kEscapeInAttr : kEscapeInText;
  std::size_t clean_start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if ((kEscapeClass[static_cast<unsigned char>(text[i])] & mask) == 0) continue;
    out.append(text, clean_start, i - clean_start);
    switch (text[i]) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:  // '"', only reachable with the attribute mask
        out += "&quot;";
    }
    clean_start = i + 1;
  }
  out.append(text, clean_start, text.size() - clean_start);
}

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  void write_element(const Element& element, std::size_t depth) {
    indent(depth);
    out_ += '<';
    out_ += element.name();
    for (const Attribute& attr : element.attributes()) {
      out_ += ' ';
      out_ += attr.name;
      out_ += "=\"";
      append_escaped(out_, attr.value, /*in_attribute=*/true);
      out_ += '"';
    }
    if (element.children().empty()) {
      out_ += "/>";
      newline();
      return;
    }
    out_ += '>';

    const bool text_only = is_text_only(element);
    if (!text_only) newline();
    for (const Node& node : element.children()) {
      if (const Element* child = node.as_element()) {
        write_element(*child, depth + 1);
      } else if (const Text* text = std::get_if<Text>(&node)) {
        if (!text_only) indent(depth + 1);
        append_escaped(out_, text->value, /*in_attribute=*/false);
        if (!text_only) newline();
      } else if (const CData* cdata = std::get_if<CData>(&node)) {
        if (!text_only) indent(depth + 1);
        out_ += "<![CDATA[";
        out_ += cdata->value;
        out_ += "]]>";
        if (!text_only) newline();
      } else if (const Comment* comment = std::get_if<Comment>(&node)) {
        if (!text_only) indent(depth + 1);
        out_ += "<!--";
        out_ += comment->value;
        out_ += "-->";
        if (!text_only) newline();
      }
    }
    if (!text_only) indent(depth);
    out_ += "</";
    out_ += element.name();
    out_ += '>';
    newline();
  }

  std::string take() { return std::move(out_); }

  void write_declaration(const Document& doc) {
    out_ += "<?xml version=\"";
    out_ += doc.version;
    out_ += "\" encoding=\"";
    out_ += doc.encoding;
    out_ += "\"?>";
    newline();
  }

  void write_default_declaration() {
    out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    newline();
  }

 private:
  static bool is_text_only(const Element& element) {
    for (const Node& node : element.children()) {
      if (node.is_element() || std::holds_alternative<Comment>(node)) return false;
    }
    return true;
  }

  void indent(std::size_t depth) {
    if (options_.pretty) out_.append(depth * options_.indent_width, ' ');
  }

  void newline() {
    if (options_.pretty) out_ += '\n';
  }

  const WriteOptions& options_;
  std::string out_;
};

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*in_attribute=*/false);
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*in_attribute=*/true);
  return out;
}

std::string write(const Element& root, const WriteOptions& options) {
  Writer writer{options};
  if (options.xml_declaration) writer.write_default_declaration();
  writer.write_element(root, 0);
  return writer.take();
}

std::string write(const Document& document, const WriteOptions& options) {
  Writer writer{options};
  if (options.xml_declaration) writer.write_declaration(document);
  writer.write_element(document.root, 0);
  return writer.take();
}

}  // namespace wsx::xml
