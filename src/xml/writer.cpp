#include "xml/writer.hpp"

namespace wsx::xml {
namespace {

void append_escaped(std::string& out, std::string_view text, bool in_attribute) {
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        if (in_attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
}

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  void write_element(const Element& element, std::size_t depth) {
    indent(depth);
    out_ += '<';
    out_ += element.name();
    for (const Attribute& attr : element.attributes()) {
      out_ += ' ';
      out_ += attr.name;
      out_ += "=\"";
      append_escaped(out_, attr.value, /*in_attribute=*/true);
      out_ += '"';
    }
    if (element.children().empty()) {
      out_ += "/>";
      newline();
      return;
    }
    out_ += '>';

    const bool text_only = is_text_only(element);
    if (!text_only) newline();
    for (const Node& node : element.children()) {
      if (const Element* child = node.as_element()) {
        write_element(*child, depth + 1);
      } else if (const Text* text = std::get_if<Text>(&node)) {
        if (!text_only) indent(depth + 1);
        append_escaped(out_, text->value, /*in_attribute=*/false);
        if (!text_only) newline();
      } else if (const CData* cdata = std::get_if<CData>(&node)) {
        if (!text_only) indent(depth + 1);
        out_ += "<![CDATA[";
        out_ += cdata->value;
        out_ += "]]>";
        if (!text_only) newline();
      } else if (const Comment* comment = std::get_if<Comment>(&node)) {
        if (!text_only) indent(depth + 1);
        out_ += "<!--";
        out_ += comment->value;
        out_ += "-->";
        if (!text_only) newline();
      }
    }
    if (!text_only) indent(depth);
    out_ += "</";
    out_ += element.name();
    out_ += '>';
    newline();
  }

  std::string take() { return std::move(out_); }

  void write_declaration(const Document& doc) {
    out_ += "<?xml version=\"";
    out_ += doc.version;
    out_ += "\" encoding=\"";
    out_ += doc.encoding;
    out_ += "\"?>";
    newline();
  }

  void write_default_declaration() {
    out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    newline();
  }

 private:
  static bool is_text_only(const Element& element) {
    for (const Node& node : element.children()) {
      if (node.is_element() || std::holds_alternative<Comment>(node)) return false;
    }
    return true;
  }

  void indent(std::size_t depth) {
    if (options_.pretty) out_.append(depth * options_.indent_width, ' ');
  }

  void newline() {
    if (options_.pretty) out_ += '\n';
  }

  const WriteOptions& options_;
  std::string out_;
};

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*in_attribute=*/false);
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  append_escaped(out, text, /*in_attribute=*/true);
  return out;
}

std::string write(const Element& root, const WriteOptions& options) {
  Writer writer{options};
  if (options.xml_declaration) writer.write_default_declaration();
  writer.write_element(root, 0);
  return writer.take();
}

std::string write(const Document& document, const WriteOptions& options) {
  Writer writer{options};
  if (options.xml_declaration) writer.write_declaration(document);
  writer.write_element(document.root, 0);
  return writer.take();
}

}  // namespace wsx::xml
