// request_gen.hpp — per-operation request synthesis. A corpus is compiled
// from the deployed service's WSDL/XSD contract: the parameter type is
// resolved through the operation wrapper exactly the way the server-side
// binder resolves it, and each case draws schema-valid values from the
// per-type generators (enumeration constants for enum parameters, lexical
// members for built-ins, per-field values for bean complexTypes,
// occurrence-aware repeats for arrays). Case identity — not generation
// order — keys the PRNG stream, so a corpus is byte-identical at any
// worker count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frameworks/invocation.hpp"
#include "frameworks/server.hpp"

namespace wsx::gen {

/// One generated request for one operation of one service.
struct GeneratedCase {
  std::string service;    ///< ServiceSpec::service_name()
  std::string operation;
  frameworks::CallPayload payload;
  std::string case_id;    ///< "<service>|<operation>|<index>" — the PRNG stream
};

struct CorpusOptions {
  std::uint64_t seed = 7;
  std::size_t cases_per_operation = 4;  ///< the per-operation quota
  int max_depth = 2;       ///< recursion bound for nested instance trees
  /// Inject the schema-violation bug: values are drawn *outside* the
  /// parameter's value space, so validate_case (and the server's typed
  /// unmarshalling) must catch them and the shrinker must minimise them.
  bool sabotage = false;
};

/// Compiles the per-operation corpus for one deployed service.
std::vector<GeneratedCase> generate_corpus(const frameworks::DeployedService& service,
                                           const CorpusOptions& options);

/// Checks every value the case carries against the service's XSD contract
/// (the generator↔validator agreement property). Returns the violation, or
/// nullopt when the case is schema-valid.
std::optional<std::string> validate_case(const frameworks::DeployedService& service,
                                         const GeneratedCase& generated);

/// Human-readable payload for reports: the scalar value, or
/// "name=value;..." for structured cases.
std::string render_payload(const frameworks::CallPayload& payload);

}  // namespace wsx::gen
