#include "gen/campaign.hpp"

#include <iomanip>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/pool.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "gen/shrink.hpp"

namespace wsx::gen {

const char* to_string(PropOutcome outcome) {
  switch (outcome) {
    case PropOutcome::kBlocked:
      return "blocked";
    case PropOutcome::kPass:
      return "pass";
    case PropOutcome::kSkipped:
      return "skipped";
    case PropOutcome::kInvalidValue:
      return "invalid value";
    case PropOutcome::kMismatch:
      return "mismatch";
    case PropOutcome::kTimedOut:
      return "timed out";
  }
  return "unknown";
}

std::size_t PropcheckResult::total(PropOutcome outcome) const {
  std::size_t total = 0;
  for (const PropServerResult& server : servers) {
    for (const PropCell& cell : server.cells) total += cell.count(outcome);
  }
  return total;
}

std::size_t PropcheckResult::total_failures() const {
  std::size_t total = 0;
  for (const PropServerResult& server : servers) {
    for (const PropCell& cell : server.cells) total += cell.failures.size();
  }
  return total;
}

namespace {

const char* to_string(frameworks::EchoOutcome outcome) {
  switch (outcome) {
    case frameworks::EchoOutcome::kTransportError:
      return "transport error";
    case frameworks::EchoOutcome::kVersionMismatch:
      return "version mismatch";
    case frameworks::EchoOutcome::kServerFault:
      return "server fault";
    case frameworks::EchoOutcome::kEchoMismatch:
      return "echo mismatch";
    case frameworks::EchoOutcome::kOk:
      return "ok";
  }
  return "unknown";
}

void add_outcome(PairDelta& delta, PropOutcome outcome, std::size_t count = 1) {
  delta.outcomes[static_cast<std::size_t>(outcome)] += count;
}

}  // namespace

PairDelta run_propcheck_pair(const frameworks::ServerFramework& server,
                             const frameworks::DeployedService& service,
                             const frameworks::SharedDescription* description,
                             const std::vector<GeneratedCase>& corpus,
                             const frameworks::ClientFramework& client,
                             const compilers::Compiler* compiler, const GenConfig& config) {
  PairDelta delta;
  // With the cache off the pair re-parses once; either way every case below
  // consumes the same shared parse (the invocation path requires one).
  const frameworks::SharedDescription local =
      description != nullptr
          ? *description
          : frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false);
  obs::add(config.metrics,
           config.parse_cache ? "gen.parse.cache_hits" : "gen.parse.wsdl_parses");

  const frameworks::PreparedCall baseline =
      frameworks::prepare_echo_call(service, local, client, compiler);
  if (baseline.status != frameworks::PreparedCall::Status::kReady) {
    add_outcome(delta, PropOutcome::kBlocked, corpus.size());
    return delta;
  }
  const frameworks::EchoClassification baseline_class = frameworks::classify_echo_response(
      server.handle_http(service, baseline.request), baseline.payload);
  delta.virtual_ms += kCaseCostMs;

  // Runs one candidate end to end; used for cases and shrink probes alike.
  const auto classify_candidate =
      [&](const GeneratedCase& candidate) -> std::optional<frameworks::EchoOutcome> {
    const frameworks::PreparedCall prepared =
        frameworks::prepare_call(service, local, client, compiler, &candidate.payload);
    if (prepared.status != frameworks::PreparedCall::Status::kReady) return std::nullopt;
    return frameworks::classify_echo_response(server.handle_http(service, prepared.request),
                                              prepared.payload)
        .outcome;
  };

  for (const GeneratedCase& generated : corpus) {
    obs::add(config.metrics, "gen.cases_total");
    // Property 1: validity. The corpus must live inside the contract.
    if (const std::optional<std::string> violation = validate_case(service, generated)) {
      PropFailure failure;
      failure.case_id = generated.case_id;
      failure.kind = "invalid-value";
      failure.detail = *violation;
      failure.payload = render_payload(generated.payload);
      if (config.shrink) {
        ShrinkStats stats;
        const GeneratedCase minimal = shrink_case(
            generated,
            [&](const GeneratedCase& candidate) {
              return validate_case(service, candidate).has_value();
            },
            &stats);
        failure.shrunk = render_payload(minimal.payload);
        failure.shrink_steps = stats.accepted;
      }
      add_outcome(delta, PropOutcome::kInvalidValue);
      delta.failures.push_back(std::move(failure));
      obs::add(config.metrics, "gen.failures");
      continue;
    }
    // Structured marshalling bypasses the uncommon-structure element these
    // pairs are defined by, so the comparison is not meaningful there.
    if (baseline.uncommon_marshalling && !generated.payload.fields.empty()) {
      add_outcome(delta, PropOutcome::kSkipped);
      continue;
    }
    delta.virtual_ms += kCaseCostMs;
    const std::optional<frameworks::EchoOutcome> observed = classify_candidate(generated);
    frameworks::EchoOutcome expected = baseline_class.outcome;
    // One documented normalisation: the uncommon-marshalling server drops
    // the argument and echoes "", so an empty expected echo *matches* even
    // though the non-empty baseline probe mismatched.
    if (baseline.uncommon_marshalling && generated.payload.expected_echo().empty() &&
        expected == frameworks::EchoOutcome::kEchoMismatch) {
      expected = frameworks::EchoOutcome::kOk;
    }
    if (observed.has_value() && *observed == expected) {
      add_outcome(delta, PropOutcome::kPass);
      continue;
    }
    // Property 2: stability. Record and minimise the drift.
    PropFailure failure;
    failure.case_id = generated.case_id;
    failure.kind = "mismatch";
    failure.detail = std::string("expected ") + to_string(expected) + ", got " +
                     (observed.has_value() ? to_string(*observed) : "no prepared call");
    failure.payload = render_payload(generated.payload);
    if (config.shrink) {
      ShrinkStats stats;
      const GeneratedCase minimal = shrink_case(
          generated,
          [&](const GeneratedCase& candidate) {
            if (validate_case(service, candidate).has_value()) return false;
            const std::optional<frameworks::EchoOutcome> probe = classify_candidate(candidate);
            return probe == observed;  // the same drift, not a new failure class
          },
          &stats);
      failure.shrunk = render_payload(minimal.payload);
      failure.shrink_steps = stats.accepted;
    }
    add_outcome(delta, PropOutcome::kMismatch);
    delta.failures.push_back(std::move(failure));
    obs::add(config.metrics, "gen.failures");
  }
  return delta;
}

PropcheckResult run_propcheck(const GenConfig& config) {
  PropcheckResult result;
  result.corpus = config.corpus;
  result.shrink = config.shrink;

  obs::Span run_span(config.tracer, "propcheck");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog =
      catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  client_compilers.reserve(clients.size());
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  for (const auto& server : servers) {
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;

    PropServerResult server_result;
    server_result.server = server->name();
    for (const auto& client : clients) {
      PropCell cell;
      cell.client = client->name();
      server_result.cells.push_back(std::move(cell));
    }

    obs::Span round_span(config.tracer, "round:" + server_result.server, run_span);
    obs::Span deploy_span(config.tracer, "phase:deploy", round_span);
    obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "gen.phase.deploy_us");
    std::vector<frameworks::DeployedService> deployed;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) deployed.push_back(std::move(service.value()));
    }
    server_result.services_deployed = deployed.size();
    obs::add(config.metrics, "gen.services_deployed", deployed.size());
    deploy_span.annotate("deployed", deployed.size());
    deploy_span.end();
    deploy_timer.stop();

    std::vector<frameworks::SharedDescription> descriptions;
    if (config.parse_cache) {
      obs::Span parse_span(config.tracer, "phase:parse", round_span);
      obs::ScopedTimer parse_timer = obs::timer(config.metrics, "gen.phase.parse_us");
      const auto build_slice = [&](std::size_t begin, std::size_t end) {
        std::vector<frameworks::SharedDescription> built;
        built.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          built.push_back(
              frameworks::SharedDescription::from_deployed(deployed[i], /*with_wsi=*/false));
        }
        return built;
      };
      descriptions.reserve(deployed.size());
      for (std::vector<frameworks::SharedDescription>& slice :
           parallel_slices(deployed.size(), config.jobs, build_slice)) {
        for (frameworks::SharedDescription& description : slice) {
          descriptions.push_back(std::move(description));
        }
      }
      parse_span.end();
      parse_timer.stop();
    }

    // Corpus compilation parallelises over services; each case's PRNG
    // stream is keyed by case identity, so slicing cannot change a byte.
    obs::Span corpus_span(config.tracer, "phase:generate", round_span);
    obs::ScopedTimer corpus_timer = obs::timer(config.metrics, "gen.phase.generate_us");
    const auto generate_slice = [&](std::size_t begin, std::size_t end) {
      std::vector<std::vector<GeneratedCase>> built;
      built.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        built.push_back(generate_corpus(deployed[i], config.corpus));
      }
      return built;
    };
    std::vector<std::vector<GeneratedCase>> corpora;
    corpora.reserve(deployed.size());
    for (std::vector<std::vector<GeneratedCase>>& slice :
         parallel_slices(deployed.size(), config.jobs, generate_slice)) {
      for (std::vector<GeneratedCase>& corpus : slice) {
        server_result.cases_generated += corpus.size();
        corpora.push_back(std::move(corpus));
      }
    }
    obs::add(config.metrics, "gen.cases_generated", server_result.cases_generated);
    corpus_span.annotate("cases", server_result.cases_generated);
    corpus_span.end();
    corpus_timer.stop();

    obs::Span calls_span(config.tracer, "phase:check", round_span);
    obs::ScopedTimer calls_timer = obs::timer(config.metrics, "gen.phase.check_us");
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
      std::vector<PairDelta> partial(clients.size());
      for (std::size_t index = begin; index < end; ++index) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          PairDelta delta = run_propcheck_pair(
              *server, deployed[index], config.parse_cache ? &descriptions[index] : nullptr,
              corpora[index], *clients[i], client_compilers[i].get(), config);
          PairDelta& cell = partial[i];
          for (std::size_t outcome = 0; outcome < kPropOutcomeCount; ++outcome) {
            cell.outcomes[outcome] += delta.outcomes[outcome];
          }
          for (PropFailure& failure : delta.failures) {
            cell.failures.push_back(std::move(failure));
          }
          cell.virtual_ms += delta.virtual_ms;
        }
      }
      return partial;
    };
    PoolStats pool_stats;
    const std::vector<std::vector<PairDelta>> partials =
        parallel_slices(deployed.size(), config.jobs, run_slice, &pool_stats);
    if (config.metrics != nullptr) {
      config.metrics->gauge("gen.pool.workers").set_max(
          static_cast<std::int64_t>(pool_stats.workers));
      config.metrics->gauge("gen.pool.max_queue_depth").set_max(
          static_cast<std::int64_t>(pool_stats.max_queue_depth));
    }
    // Slices fold in slice order (parallel_slices merges ordered), so the
    // failure lists stay in service order — byte-identical at any -j.
    for (const std::vector<PairDelta>& partial : partials) {
      for (std::size_t i = 0; i < clients.size(); ++i) {
        PropCell& cell = server_result.cells[i];
        for (std::size_t outcome = 0; outcome < kPropOutcomeCount; ++outcome) {
          cell.outcomes[outcome] += partial[i].outcomes[outcome];
        }
        for (const PropFailure& failure : partial[i].failures) {
          cell.failures.push_back(failure);
        }
        cell.virtual_ms += partial[i].virtual_ms;
      }
    }
    calls_span.end();
    calls_timer.stop();
    result.servers.push_back(std::move(server_result));
  }
  return result;
}

std::string replay_command(const CorpusOptions& corpus) {
  std::ostringstream out;
  out << "wsinterop propcheck --seed " << corpus.seed << " --cases "
      << corpus.cases_per_operation;
  if (corpus.sabotage) out << " --sabotage";
  out << " --shrink";
  return out.str();
}

std::string format_propcheck(const PropcheckResult& result, bool with_shrink) {
  std::ostringstream out;
  out << "Property-based communication study (seed " << result.corpus.seed << ", "
      << result.corpus.cases_per_operation << " case(s) per operation"
      << (result.corpus.sabotage ? ", sabotage mode" : "") << ")\n";
  for (const PropServerResult& server : result.servers) {
    out << server.server << " — " << server.services_deployed << " services, "
        << server.cases_generated << " generated cases\n";
    out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(8)
        << "blocked" << std::setw(7) << "pass" << std::setw(9) << "skipped" << std::setw(9)
        << "invalid" << std::setw(10) << "mismatch" << std::setw(10) << "timed-out"
        << "\n";
    for (const PropCell& cell : server.cells) {
      out << "  " << std::left << std::setw(44) << cell.client << std::right << std::setw(8)
          << cell.count(PropOutcome::kBlocked) << std::setw(7)
          << cell.count(PropOutcome::kPass) << std::setw(9)
          << cell.count(PropOutcome::kSkipped) << std::setw(9)
          << cell.count(PropOutcome::kInvalidValue) << std::setw(10)
          << cell.count(PropOutcome::kMismatch) << std::setw(10)
          << cell.count(PropOutcome::kTimedOut) << "\n";
    }
  }
  out << "totals: " << result.total(PropOutcome::kPass) << " passed, "
      << result.total(PropOutcome::kInvalidValue) + result.total(PropOutcome::kMismatch)
      << " property violation(s), " << result.total(PropOutcome::kSkipped) << " skipped, "
      << result.total(PropOutcome::kBlocked) << " blocked\n";
  if (with_shrink && result.total_failures() > 0) {
    out << "\nCounterexamples (shrunk to local minima)\n";
    for (const PropServerResult& server : result.servers) {
      for (const PropCell& cell : server.cells) {
        for (const PropFailure& failure : cell.failures) {
          out << "  " << server.server << " | " << cell.client << " | " << failure.case_id
              << "\n    " << failure.kind << ": " << failure.detail << "\n    payload:   '"
              << failure.payload << "'\n    minimized: '" << failure.shrunk << "' ("
              << failure.shrink_steps << " shrink step(s))\n    replay:    "
              << replay_command(result.corpus) << "\n";
        }
      }
    }
  }
  return out.str();
}

std::string propcheck_json(const PropcheckResult& result) {
  json::ArrayWriter servers;
  for (const PropServerResult& server : result.servers) {
    json::ArrayWriter cells;
    for (const PropCell& cell : server.cells) {
      json::ArrayWriter outcomes;
      for (const std::size_t count : cell.outcomes) outcomes.raw_item(std::to_string(count));
      json::ArrayWriter failures;
      for (const PropFailure& failure : cell.failures) {
        failures.raw_item(json::ObjectWriter{}
                              .field("id", failure.case_id)
                              .field("kind", failure.kind)
                              .field("detail", failure.detail)
                              .field("payload", failure.payload)
                              .field("shrunk", failure.shrunk)
                              .field("shrink_steps", failure.shrink_steps)
                              .str());
      }
      cells.raw_item(json::ObjectWriter{}
                         .field("client", cell.client)
                         .raw_field("outcomes", outcomes.str())
                         .raw_field("failures", failures.str())
                         .field("virtual_ms", static_cast<std::size_t>(cell.virtual_ms))
                         .str());
    }
    servers.raw_item(json::ObjectWriter{}
                         .field("server", server.server)
                         .field("services", server.services_deployed)
                         .field("cases", server.cases_generated)
                         .raw_field("clients", cells.str())
                         .str());
  }
  json::ObjectWriter root;
  root.field("experiment", "propcheck");
  root.field("seed", static_cast<std::size_t>(result.corpus.seed));
  root.field("cases_per_operation", result.corpus.cases_per_operation);
  root.field("sabotage", result.corpus.sabotage);
  root.field("shrink", result.shrink);
  root.field("passed", result.total(PropOutcome::kPass));
  root.field("violations",
             result.total(PropOutcome::kInvalidValue) + result.total(PropOutcome::kMismatch));
  root.raw_field("servers", servers.str());
  return root.str();
}

}  // namespace wsx::gen
