// value_gen.hpp — per-type value generators compiled from the wsx::xsd
// model. Every generator draws from the type's lexical space, mixing
// boundary values (empty strings, min/max numerics, NaN/INF, leap days,
// surrogate-adjacent UTF-8) with random members, so each value it emits
// satisfies xsd::is_valid_value for the same type — the generator↔validator
// round-trip property the test pack enforces. sabotage_value is the
// deliberate exception: it emits a lexically *invalid* value so the
// propcheck harness can prove it detects and shrinks schema violations.
#pragma once

#include <string>
#include <vector>

#include "gen/rng.hpp"
#include "xml/node.hpp"
#include "xsd/builtin.hpp"
#include "xsd/model.hpp"

namespace wsx::gen {

/// The fixed boundary/edge values for a built-in type. Every entry is a
/// valid lexical form; generators sample them alongside random values.
const std::vector<std::string>& edge_values(xsd::Builtin type);

/// A random member of the builtin's lexical space.
std::string generate_value(xsd::Builtin type, Rng& rng);

/// Facet-aware generation for a simpleType restriction: enumeration picks
/// a declared constant; otherwise the base type's generator runs under the
/// minLength/maxLength/totalDigits/pattern facets.
std::string generate_value(const xsd::SimpleTypeDecl& type, Rng& rng);

/// A value that deliberately violates the builtin's lexical space — the
/// injected schema-violation bug. For xsd:string (whose lexical space is
/// all text) the scalar cannot be invalid, so callers fall back to a
/// facet/enumeration violation instead.
std::string sabotage_value(xsd::Builtin type, Rng& rng);
/// An off-enumeration (or facet-violating) member for a simpleType.
std::string sabotage_value(const xsd::SimpleTypeDecl& type, Rng& rng);

/// Instantiates a complexType as an element subtree: one child per
/// element particle (arrays get 0..max_occurs_cap repeats), builtin leaves
/// get generated text, nested/self-recursive types recurse down to
/// `depth` and are pruned below it (optional particles dropped, required
/// ones emitted empty). This is the bounded-depth recursive generator for
/// types like the self-referencing GeneratorCrash chain.
xml::Element generate_instance(const xsd::Schema& schema, const xsd::ComplexType& type,
                               std::string_view element_name, int depth, Rng& rng);

}  // namespace wsx::gen
