#include "gen/request_gen.hpp"

#include <string_view>

#include "gen/rng.hpp"
#include "gen/value_gen.hpp"
#include "xml/qname.hpp"
#include "xsd/values.hpp"

namespace wsx::gen {
namespace {

/// How one operation's parameter is generated, resolved once per service.
struct ParameterPlan {
  enum class Kind {
    kOpaqueText,   ///< no resolvable parameter type — plain text scalar
    kEnumeration,  ///< simpleType restriction — scalar from the value space
    kBuiltin,      ///< built-in scalar (e.g. the CRUD fetch key)
    kBean,         ///< complexType with builtin fields — scalar or structured
  };
  Kind kind = Kind::kOpaqueText;
  const xsd::SimpleTypeDecl* enum_type = nullptr;
  xsd::Builtin builtin = xsd::Builtin::kString;
  /// The builtin-typed element particles of the bean, reference order.
  std::vector<const xsd::ElementDecl*> fields;
};

/// Resolves operation → wrapper element → arg0 declaration → parameter
/// type, mirroring frameworks/server.cpp's unmarshalling path so generated
/// structure is exactly what the binder will validate.
ParameterPlan resolve_parameter(const frameworks::DeployedService& service,
                                const std::string& operation) {
  ParameterPlan plan;
  // Typed proxies for enumeration parameters only admit declared constants
  // (and the server validates every non-empty scalar against them), so an
  // enum type anywhere in the contract pins the whole value space.
  for (const xsd::Schema& schema : service.wsdl.schemas) {
    for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
      if (!simple.enumeration.empty()) {
        plan.kind = ParameterPlan::Kind::kEnumeration;
        plan.enum_type = &simple;
        return plan;
      }
    }
  }
  for (const xsd::Schema& schema : service.wsdl.schemas) {
    const xsd::ElementDecl* wrapper = schema.find_element(operation);
    if (wrapper == nullptr || !wrapper->inline_type.has_value()) continue;
    for (const xsd::ElementDecl* arg_decl : wrapper->inline_type->elements()) {
      if (arg_decl->name != "arg0" || arg_decl->type.empty()) continue;
      if (arg_decl->type.namespace_uri() == xml::ns::kXsd) {
        if (const std::optional<xsd::Builtin> builtin =
                xsd::builtin_from_local_name(arg_decl->type.local_name())) {
          plan.kind = ParameterPlan::Kind::kBuiltin;
          plan.builtin = *builtin;
          return plan;
        }
        continue;
      }
      const xsd::ComplexType* bean =
          schema.find_complex_type(arg_decl->type.local_name());
      if (bean == nullptr) continue;
      for (const xsd::ElementDecl* field : bean->elements()) {
        if (field->type.namespace_uri() == xml::ns::kXsd &&
            xsd::builtin_from_local_name(field->type.local_name())) {
          plan.fields.push_back(field);
        }
      }
      if (!plan.fields.empty()) {
        plan.kind = ParameterPlan::Kind::kBean;
        return plan;
      }
    }
  }
  return plan;
}

std::string scalar_for(const ParameterPlan& plan, const CorpusOptions& options,
                       Rng& rng) {
  switch (plan.kind) {
    case ParameterPlan::Kind::kEnumeration:
      return options.sabotage ? sabotage_value(*plan.enum_type, rng)
                              : generate_value(*plan.enum_type, rng);
    case ParameterPlan::Kind::kBuiltin:
      return options.sabotage ? sabotage_value(plan.builtin, rng)
                              : generate_value(plan.builtin, rng);
    case ParameterPlan::Kind::kBean:
    case ParameterPlan::Kind::kOpaqueText:
      break;
  }
  // Opaque scalars stay in xsd:string's lexical space, which sabotage
  // cannot leave — those corpora are simply clean.
  std::string value = generate_value(xsd::Builtin::kString, rng);
  // "!throw" is the catalog's reserved fault trigger; the alphabet cannot
  // spell it, but edge recombination is guarded anyway.
  if (value == "!throw") value = "throw";
  return value;
}

std::vector<soap::Argument> fields_for(const ParameterPlan& plan,
                                       const CorpusOptions& options, Rng& rng) {
  std::vector<soap::Argument> fields;
  for (const xsd::ElementDecl* field : plan.fields) {
    const xsd::Builtin builtin =
        *xsd::builtin_from_local_name(field->type.local_name());
    const int cap = field->max_occurs == xsd::kUnbounded
                        ? field->min_occurs + 3
                        : std::max(field->max_occurs, field->min_occurs);
    const int reps =
        field->min_occurs +
        static_cast<int>(rng.below(static_cast<std::size_t>(cap - field->min_occurs) + 1));
    for (int i = 0; i < reps; ++i) {
      std::string value = options.sabotage ? sabotage_value(builtin, rng)
                                           : generate_value(builtin, rng);
      if (value == "!throw") value = "throw";
      fields.push_back({field->name, std::move(value)});
    }
  }
  return fields;
}

}  // namespace

std::vector<GeneratedCase> generate_corpus(const frameworks::DeployedService& service,
                                           const CorpusOptions& options) {
  std::vector<GeneratedCase> corpus;
  const std::string service_name = service.spec.service_name();
  for (const wsdl::PortType& port_type : service.wsdl.port_types) {
    for (const wsdl::Operation& operation : port_type.operations) {
      const ParameterPlan plan = resolve_parameter(service, operation.name);
      for (std::size_t index = 0; index < options.cases_per_operation; ++index) {
        GeneratedCase generated;
        generated.service = service_name;
        generated.operation = operation.name;
        generated.case_id =
            service_name + "|" + operation.name + "|" + std::to_string(index);
        Rng rng(options.seed, "gen|" + generated.case_id);
        // Bean parameters alternate scalar and structured marshalling, so
        // both binder paths see every seed.
        if (plan.kind == ParameterPlan::Kind::kBean && index % 2 == 1) {
          generated.payload.fields = fields_for(plan, options, rng);
          if (generated.payload.fields.empty()) {
            // Every array drew zero repeats: the case degenerates to an
            // empty scalar, which is still schema-valid.
            generated.payload.value.clear();
          }
        } else {
          generated.payload.value = scalar_for(plan, options, rng);
        }
        corpus.push_back(std::move(generated));
      }
    }
  }
  return corpus;
}

std::optional<std::string> validate_case(const frameworks::DeployedService& service,
                                         const GeneratedCase& generated) {
  // Structured fields: each against its declared builtin, resolved through
  // the wrapper the way the server-side binder resolves it.
  if (!generated.payload.fields.empty()) {
    const ParameterPlan plan = resolve_parameter(service, generated.operation);
    for (const soap::Argument& field : generated.payload.fields) {
      const xsd::ElementDecl* declared = nullptr;
      for (const xsd::ElementDecl* candidate : plan.fields) {
        if (candidate->name == field.name) declared = candidate;
      }
      if (declared == nullptr) {
        return "undeclared element '" + field.name + "'";
      }
      const std::optional<xsd::Builtin> builtin =
          xsd::builtin_from_local_name(declared->type.local_name());
      if (builtin && !xsd::is_valid_value(*builtin, field.value)) {
        return "'" + field.value + "' is not a valid xsd:" +
               std::string(xsd::local_name(*builtin)) + " for element '" + field.name +
               "'";
      }
    }
    return std::nullopt;
  }
  const std::string& value = generated.payload.value;
  // Scalars: every enumeration type in the contract constrains non-empty
  // values (the server validates exactly this), and builtin parameters
  // constrain the lexical space.
  for (const xsd::Schema& schema : service.wsdl.schemas) {
    for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
      if (!simple.enumeration.empty() && !value.empty() &&
          !xsd::is_valid_value(simple, value)) {
        return "'" + value + "' is not a valid " + simple.name + " value";
      }
    }
  }
  const ParameterPlan plan = resolve_parameter(service, generated.operation);
  if (plan.kind == ParameterPlan::Kind::kBuiltin &&
      !xsd::is_valid_value(plan.builtin, value)) {
    return "'" + value + "' is not a valid xsd:" +
           std::string(xsd::local_name(plan.builtin)) + " value";
  }
  return std::nullopt;
}

std::string render_payload(const frameworks::CallPayload& payload) {
  if (payload.fields.empty()) return payload.value;
  std::string text;
  for (const soap::Argument& field : payload.fields) {
    if (!text.empty()) text += ";";
    text += field.name + "=" + field.value;
  }
  return text;
}

}  // namespace wsx::gen
