#include "gen/value_gen.hpp"

#include <algorithm>
#include <optional>
#include <string_view>

#include "xsd/pattern.hpp"
#include "xsd/values.hpp"

namespace wsx::gen {
namespace {

// No '!' — "!throw" is the catalog's reserved fault trigger and generated
// strings must never spell it by accident.
constexpr std::string_view kTextAlphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-.";
constexpr std::string_view kNameAlphabet = "abcdefghijklmnopqrstuvwxyz";
constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr std::string_view kHexAlphabet = "0123456789ABCDEF";

std::string random_text(Rng& rng, std::size_t max_length) {
  std::string value;
  const std::size_t length = rng.below(max_length + 1);
  value.reserve(length);
  for (std::size_t i = 0; i < length; ++i) value.push_back(rng.pick(kTextAlphabet));
  return value;
}

std::string random_digits(Rng& rng, std::size_t count) {
  std::string value;
  for (std::size_t i = 0; i < count; ++i) value.push_back(rng.pick("0123456789"));
  return value;
}

std::string two_digits(std::size_t value) {
  std::string text = std::to_string(value);
  return text.size() < 2 ? "0" + text : text;
}

std::string random_date(Rng& rng) {
  // Day capped at 28 so every (month, day) pair is a real date.
  return std::to_string(1000 + rng.below(3000)) + "-" + two_digits(1 + rng.below(12)) +
         "-" + two_digits(1 + rng.below(28));
}

std::string random_time(Rng& rng) {
  std::string value = two_digits(rng.below(24)) + ":" + two_digits(rng.below(60)) + ":" +
                      two_digits(rng.below(60));
  if (rng.chance(30)) value += "." + random_digits(rng, 1 + rng.below(3));
  return value;
}

std::string random_signed(Rng& rng, long long min_value, long long max_value) {
  const unsigned long long span =
      static_cast<unsigned long long>(max_value) - static_cast<unsigned long long>(min_value);
  const unsigned long long offset = span == ~0ull ? rng.next() : rng.next() % (span + 1);
  return std::to_string(static_cast<long long>(static_cast<unsigned long long>(min_value) +
                                               offset));
}

std::string random_float(Rng& rng) {
  std::string value;
  if (rng.chance(30)) value += "-";
  value += random_digits(rng, 1 + rng.below(6));
  if (rng.chance(50)) value += "." + random_digits(rng, 1 + rng.below(6));
  if (rng.chance(30)) value += std::string(rng.chance(50) ? "e" : "E") +
                               (rng.chance(50) ? "-" : "") + random_digits(rng, 1 + rng.below(2));
  return value;
}

std::string random_decimal(Rng& rng) {
  std::string value;
  if (rng.chance(30)) value += "-";
  value += random_digits(rng, 1 + rng.below(8));
  if (rng.chance(50)) value += "." + random_digits(rng, 1 + rng.below(4));
  return value;
}

std::string random_base64(Rng& rng) {
  std::string value;
  const std::size_t quads = rng.below(5);
  for (std::size_t i = 0; i < quads * 4; ++i) value.push_back(rng.pick(kBase64Alphabet));
  return value;
}

// Synthesises a member of a pattern-lite facet: fixed repeat counts
// within each term's bounds, one admitted character per repeat.
std::string value_from_pattern(const xsd::Pattern& pattern, Rng& rng) {
  std::string value;
  for (const xsd::PatternTerm& term : pattern.terms) {
    const int cap = term.max_count == xsd::kPatternUnbounded
                        ? term.min_count + 2
                        : term.max_count;
    const std::size_t reps =
        static_cast<std::size_t>(term.min_count) +
        rng.below(static_cast<std::size_t>(cap - term.min_count) + 1);
    for (std::size_t i = 0; i < reps; ++i) {
      char c = 'a';
      switch (term.atom.kind) {
        case xsd::PatternAtom::Kind::kLiteral:
          c = term.atom.literal;
          break;
        case xsd::PatternAtom::Kind::kAny:
          c = rng.pick(kTextAlphabet);
          break;
        case xsd::PatternAtom::Kind::kClass: {
          // Collect the printable characters the class admits and pick one.
          std::string admitted;
          for (char candidate = ' '; candidate < '\x7F'; ++candidate) {
            if (xsd::atom_admits(term.atom, candidate)) admitted.push_back(candidate);
          }
          c = rng.pick(admitted);
          break;
        }
      }
      value.push_back(c);
    }
  }
  return value;
}

}  // namespace

const std::vector<std::string>& edge_values(xsd::Builtin type) {
  using B = xsd::Builtin;
  // U+D7FF / U+E000 — the characters bracketing the surrogate block.
  static const std::vector<std::string> kText = {
      "", "a", "with space inside", "\xED\x9F\xBF", "\xEE\x80\x80", "&<>\"'"};
  static const std::vector<std::string> kBool = {"true", "false", "1", "0"};
  static const std::vector<std::string> kByte = {"-128", "127", "0"};
  static const std::vector<std::string> kShort = {"-32768", "32767", "0"};
  static const std::vector<std::string> kInt = {"-2147483648", "2147483647", "0"};
  static const std::vector<std::string> kLong = {"-9223372036854775808",
                                                "9223372036854775807", "0"};
  static const std::vector<std::string> kUByte = {"0", "255"};
  static const std::vector<std::string> kUShort = {"0", "65535"};
  static const std::vector<std::string> kUInt = {"0", "4294967295"};
  static const std::vector<std::string> kULong = {"0", "18446744073709551615"};
  static const std::vector<std::string> kFloat = {"NaN", "INF",    "-INF",
                                                  "0",   "-0.0",   "3.402823e38",
                                                  "1E-5", "1.5"};
  static const std::vector<std::string> kDecimal = {"0", "-1.5", "0.0001",
                                                    "12345678901234567890"};
  static const std::vector<std::string> kInteger = {
      "0", "-1", "+42", "123456789012345678901234567890"};
  static const std::vector<std::string> kDate = {"1000-01-01", "3999-12-31",
                                                 "2024-02-29"};
  static const std::vector<std::string> kTime = {"00:00:00", "23:59:59",
                                                 "12:30:45.123"};
  static const std::vector<std::string> kDateTime = {"1000-01-01T00:00:00",
                                                     "3999-12-31T23:59:59Z"};
  static const std::vector<std::string> kDuration = {"P1Y", "PT0S", "-P1D"};
  static const std::vector<std::string> kBase64 = {"", "QQ==", "QUJD"};
  static const std::vector<std::string> kHex = {"", "00", "DEADBEEF"};
  static const std::vector<std::string> kQName = {"a", "tns:element"};
  switch (type) {
    case B::kString:
    case B::kAnyType:
    case B::kAnyUri:
      return kText;
    case B::kBoolean:
      return kBool;
    case B::kByte:
      return kByte;
    case B::kShort:
      return kShort;
    case B::kInt:
      return kInt;
    case B::kLong:
      return kLong;
    case B::kUnsignedByte:
      return kUByte;
    case B::kUnsignedShort:
      return kUShort;
    case B::kUnsignedInt:
      return kUInt;
    case B::kUnsignedLong:
      return kULong;
    case B::kFloat:
    case B::kDouble:
      return kFloat;
    case B::kDecimal:
      return kDecimal;
    case B::kInteger:
      return kInteger;
    case B::kDate:
      return kDate;
    case B::kTime:
      return kTime;
    case B::kDateTime:
      return kDateTime;
    case B::kDuration:
      return kDuration;
    case B::kBase64Binary:
      return kBase64;
    case B::kHexBinary:
      return kHex;
    case B::kQNameType:
      return kQName;
  }
  return kText;
}

std::string generate_value(xsd::Builtin type, Rng& rng) {
  using B = xsd::Builtin;
  // Half the draws come from the boundary list, half from the lexical
  // space at large — the PropEr-style mix of edges and bulk.
  if (rng.chance(50)) {
    const std::vector<std::string>& edges = edge_values(type);
    return edges[rng.below(edges.size())];
  }
  switch (type) {
    case B::kString:
    case B::kAnyType:
    case B::kAnyUri:
      return random_text(rng, 20);
    case B::kBoolean:
      return rng.chance(50) ? "true" : "false";
    case B::kByte:
      return random_signed(rng, -128, 127);
    case B::kShort:
      return random_signed(rng, -32768, 32767);
    case B::kInt:
      return random_signed(rng, -2147483648LL, 2147483647LL);
    case B::kLong:
      return std::to_string(static_cast<long long>(rng.next()));
    case B::kUnsignedByte:
      return std::to_string(rng.below(256));
    case B::kUnsignedShort:
      return std::to_string(rng.below(65536));
    case B::kUnsignedInt:
      return std::to_string(rng.next() % 4294967296ull);
    case B::kUnsignedLong:
      return std::to_string(rng.next());
    case B::kFloat:
    case B::kDouble:
      return random_float(rng);
    case B::kDecimal:
      return random_decimal(rng);
    case B::kInteger: {
      std::string value = rng.chance(30) ? "-" : "";
      return value + random_digits(rng, 1 + rng.below(24));
    }
    case B::kDate:
      return random_date(rng);
    case B::kTime:
      return random_time(rng);
    case B::kDateTime: {
      std::string value = random_date(rng) + "T" + random_time(rng);
      if (rng.chance(30)) value += "Z";
      return value;
    }
    case B::kDuration:
      return "P" + std::to_string(rng.below(1000)) + (rng.chance(50) ? "D" : "M");
    case B::kBase64Binary:
      return random_base64(rng);
    case B::kHexBinary: {
      std::string value;
      const std::size_t bytes = rng.below(10);
      for (std::size_t i = 0; i < bytes * 2; ++i) value.push_back(rng.pick(kHexAlphabet));
      return value;
    }
    case B::kQNameType: {
      std::string value;
      if (rng.chance(40)) {
        value.push_back(rng.pick(kNameAlphabet));
        value += ":";
      }
      for (std::size_t i = 0, n = 1 + rng.below(8); i < n; ++i) {
        value.push_back(rng.pick(kNameAlphabet));
      }
      return value;
    }
  }
  return random_text(rng, 20);
}

std::string generate_value(const xsd::SimpleTypeDecl& type, Rng& rng) {
  if (!type.enumeration.empty()) {
    return type.enumeration[rng.below(type.enumeration.size())];
  }
  const std::optional<xsd::Builtin> base =
      xsd::builtin_from_local_name(type.base.local_name());
  // Pattern facet: walk the compiled pattern, then keep only candidates
  // that clear the remaining facets + base lexical space.
  if (!type.pattern.empty()) {
    if (const std::optional<xsd::Pattern> pattern = xsd::parse_pattern(type.pattern)) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        std::string value = value_from_pattern(*pattern, rng);
        if (xsd::is_valid_value(type, value)) return value;
      }
    }
  }
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::string value = base ? generate_value(*base, rng) : random_text(rng, 20);
    // Length facets on text bases are satisfiable by construction.
    if ((!base || *base == xsd::Builtin::kString || *base == xsd::Builtin::kAnyUri) &&
        type.pattern.empty()) {
      if (type.min_length >= 0 &&
          value.size() < static_cast<std::size_t>(type.min_length)) {
        value.append(static_cast<std::size_t>(type.min_length) - value.size(), 'a');
      }
      if (type.max_length >= 0 &&
          value.size() > static_cast<std::size_t>(type.max_length)) {
        value.resize(static_cast<std::size_t>(type.max_length));
      }
    }
    if (type.total_digits > 0 && base && *base != xsd::Builtin::kString) {
      value = random_digits(rng, 1 + rng.below(static_cast<std::size_t>(type.total_digits)));
    }
    if (xsd::is_valid_value(type, value)) return value;
  }
  // Facet combinations the sampler cannot hit fall back to the base space;
  // the round-trip property test keeps this path honest for modelled types.
  return base ? generate_value(*base, rng) : random_text(rng, 20);
}

std::string sabotage_value(xsd::Builtin type, Rng& rng) {
  using B = xsd::Builtin;
  switch (type) {
    case B::kString:
    case B::kAnyType:
    case B::kAnyUri:
      // Any text is lexically valid — callers must sabotage a facet instead.
      return random_text(rng, 8);
    case B::kBoolean:
    case B::kByte:
    case B::kShort:
    case B::kInt:
    case B::kLong:
    case B::kUnsignedByte:
    case B::kUnsignedShort:
    case B::kUnsignedInt:
    case B::kUnsignedLong:
    case B::kInteger:
    case B::kFloat:
    case B::kDouble:
    case B::kDecimal:
      return "not-a-number-" + random_digits(rng, 2);
    case B::kDate:
    case B::kTime:
    case B::kDateTime:
      return "not-a-date";
    case B::kDuration:
      return "one day";
    case B::kBase64Binary:
      return "%%%";
    case B::kHexBinary:
      return "xyz";
    case B::kQNameType:
      return "no names here";
  }
  return "not-a-number";
}

std::string sabotage_value(const xsd::SimpleTypeDecl& type, Rng& rng) {
  if (!type.enumeration.empty()) {
    // Off-enumeration, lexically fine for the base, trivially shrinkable.
    return "zz-sabotage-" + random_digits(rng, 3);
  }
  const std::optional<xsd::Builtin> base =
      xsd::builtin_from_local_name(type.base.local_name());
  return sabotage_value(base.value_or(xsd::Builtin::kInt), rng);
}

xml::Element generate_instance(const xsd::Schema& schema, const xsd::ComplexType& type,
                               std::string_view element_name, int depth, Rng& rng) {
  xml::Element node{std::string(element_name)};
  for (const xsd::Particle& particle : type.particles) {
    const xsd::ElementDecl* decl = std::get_if<xsd::ElementDecl>(&particle);
    if (decl == nullptr) continue;  // wildcards contribute no generated content
    // A ref to a top-level element resolves to its declaration; unresolved
    // refs (foreign documents) are skipped like optional particles.
    const xsd::ElementDecl* resolved = decl;
    if (decl->is_ref()) {
      resolved = schema.find_element(decl->ref.local_name());
      if (resolved == nullptr) continue;
    }
    // Occurrence comes from the reference site, name/type from the target.
    const int cap = decl->max_occurs == xsd::kUnbounded
                        ? decl->min_occurs + 3
                        : std::max(decl->max_occurs, decl->min_occurs);
    const int reps = decl->min_occurs +
                     static_cast<int>(rng.below(
                         static_cast<std::size_t>(cap - decl->min_occurs) + 1));
    for (int i = 0; i < reps; ++i) {
      const std::optional<xsd::Builtin> builtin =
          xsd::builtin_from_local_name(resolved->type.local_name());
      if (builtin) {
        node.add_element(resolved->name).add_text(generate_value(*builtin, rng));
        continue;
      }
      if (const xsd::SimpleTypeDecl* simple =
              schema.find_simple_type(resolved->type.local_name())) {
        node.add_element(resolved->name).add_text(generate_value(*simple, rng));
        continue;
      }
      const xsd::ComplexType* nested =
          resolved->inline_type ? resolved->inline_type.get()
                                : schema.find_complex_type(resolved->type.local_name());
      if (nested != nullptr && depth > 0) {
        node.add_child(generate_instance(schema, *nested, resolved->name, depth - 1, rng));
      } else if (decl->min_occurs > 0) {
        // Depth exhausted (e.g. a self-recursive chain): required particles
        // are emitted empty so the tree stays schema-shaped but bounded.
        node.add_element(resolved->name);
      }
    }
  }
  return node;
}

}  // namespace wsx::gen
