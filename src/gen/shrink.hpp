// shrink.hpp — counterexample minimisation. Given a failing generated
// case and a predicate that re-runs it, the shrinker walks a candidate
// lattice (drop fields ddmin-style, empty/halve/chunk strings, simplify
// characters to 'a' / '0') and keeps a candidate only when it still fails
// AND strictly decreases the complexity measure (total size, then count
// of non-canonical characters) — so shrinking always terminates and the
// result is locally minimal: no single candidate move from it still fails.
#pragma once

#include <cstddef>
#include <functional>

#include "gen/request_gen.hpp"

namespace wsx::gen {

/// Re-runs a candidate; true = the candidate still exhibits the failure.
using CaseFails = std::function<bool(const GeneratedCase&)>;

struct ShrinkStats {
  std::size_t accepted = 0;   ///< candidates that advanced the shrink
  std::size_t evaluated = 0;  ///< predicate invocations
};

/// Size component of the complexity measure.
std::size_t case_size(const GeneratedCase& generated);

/// Minimises `failing` (precondition: fails(failing)). Returns a case that
/// still fails, is no larger than the input, and is a local minimum of the
/// candidate moves above.
GeneratedCase shrink_case(GeneratedCase failing, const CaseFails& fails,
                          ShrinkStats* stats = nullptr);

}  // namespace wsx::gen
