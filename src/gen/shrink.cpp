#include "gen/shrink.hpp"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace wsx::gen {
namespace {

/// Secondary measure: characters that are not already the canonical 'a'
/// (letters) / '0' (digits). Character simplification lowers this without
/// changing the size, so the total order is still well-founded.
std::size_t non_canonical(const std::string& text) {
  std::size_t count = 0;
  for (const unsigned char c : text) {
    if (std::isdigit(c) != 0 ? c != '0' : c != 'a') ++count;
  }
  return count;
}

struct Complexity {
  std::size_t size = 0;
  std::size_t rough = 0;
  friend bool operator<(const Complexity& a, const Complexity& b) {
    return a.size != b.size ? a.size < b.size : a.rough < b.rough;
  }
};

Complexity complexity(const GeneratedCase& generated) {
  Complexity measure;
  measure.size = case_size(generated);
  measure.rough = non_canonical(generated.payload.value);
  for (const soap::Argument& field : generated.payload.fields) {
    measure.rough += non_canonical(field.value);
  }
  return measure;
}

/// Shrink candidates for one string slot, largest cut first.
std::vector<std::string> string_candidates(const std::string& value) {
  std::vector<std::string> candidates;
  if (value.empty()) return candidates;
  candidates.emplace_back();                         // the empty string
  if (value.size() > 1) {
    candidates.push_back(value.substr(0, value.size() / 2));        // front half
    candidates.push_back(value.substr(value.size() / 2));           // back half
    std::string trimmed = value;
    trimmed.pop_back();
    candidates.push_back(std::move(trimmed));                       // drop last char
    candidates.push_back(value.substr(1));                          // drop first char
  }
  // Character simplification: canonicalise each position (size unchanged,
  // roughness strictly down when the character is not canonical).
  for (std::size_t i = 0; i < value.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    const char canonical = std::isdigit(c) != 0 ? '0' : 'a';
    if (value[i] == canonical) continue;
    std::string simplified = value;
    simplified[i] = canonical;
    candidates.push_back(std::move(simplified));
  }
  return candidates;
}

}  // namespace

std::size_t case_size(const GeneratedCase& generated) {
  std::size_t size = generated.payload.value.size();
  for (const soap::Argument& field : generated.payload.fields) {
    size += 1 + field.name.size() + field.value.size();  // +1: the element itself
  }
  return size;
}

GeneratedCase shrink_case(GeneratedCase failing, const CaseFails& fails,
                          ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& tally = stats != nullptr ? *stats : local;
  Complexity current = complexity(failing);

  const auto consider = [&](GeneratedCase candidate) {
    const Complexity measure = complexity(candidate);
    if (!(measure < current)) return false;
    ++tally.evaluated;
    if (!fails(candidate)) return false;
    failing = std::move(candidate);
    current = measure;
    ++tally.accepted;
    return true;
  };

  bool improved = true;
  while (improved) {
    improved = false;

    // Drop fields: halves first (ddmin's big steps), then one at a time.
    const std::size_t field_count = failing.payload.fields.size();
    if (field_count > 1) {
      for (const bool front : {true, false}) {
        GeneratedCase candidate = failing;
        const std::size_t half = field_count / 2;
        auto& fields = candidate.payload.fields;
        if (front) {
          fields.erase(fields.begin(), fields.begin() + static_cast<std::ptrdiff_t>(half));
        } else {
          fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(half), fields.end());
        }
        if (consider(std::move(candidate))) {
          improved = true;
          break;
        }
      }
      if (improved) continue;
    }
    for (std::size_t i = 0; i < failing.payload.fields.size(); ++i) {
      GeneratedCase candidate = failing;
      candidate.payload.fields.erase(candidate.payload.fields.begin() +
                                     static_cast<std::ptrdiff_t>(i));
      if (consider(std::move(candidate))) {
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // Shrink the scalar payload.
    for (std::string& candidate_value : string_candidates(failing.payload.value)) {
      GeneratedCase candidate = failing;
      candidate.payload.value = std::move(candidate_value);
      if (consider(std::move(candidate))) {
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // Shrink each field value.
    for (std::size_t i = 0; i < failing.payload.fields.size() && !improved; ++i) {
      for (std::string& candidate_value :
           string_candidates(failing.payload.fields[i].value)) {
        GeneratedCase candidate = failing;
        candidate.payload.fields[i].value = std::move(candidate_value);
        if (consider(std::move(candidate))) {
          improved = true;
          break;
        }
      }
    }
  }
  return failing;
}

}  // namespace wsx::gen
