// bridge.hpp — the propcheck↔fuzz↔chaos bridge. A generated corpus is a
// set of schema-valid envelopes; this module (a) proves the fault-free
// wire is transparent to them — a corpus replayed over a FaultyWire at
// rate 0 classifies identically to the plain communication path — and
// (b) layers wire faults *on top of* schema-valid inputs, so the chaos
// study's adversarial surface is no longer limited to the fixed echo
// probe.
#pragma once

#include <string_view>

#include "chaos/wire.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/server.hpp"

namespace wsx::gen {

/// The two classifications of one prepared generated call: straight into
/// the server, and through the wire (rate-0 wires must agree).
struct WireEquivalence {
  frameworks::EchoClassification direct;
  frameworks::EchoClassification wired;
  bool delivered = false;   ///< the wire attempt completed with a response
  bool identical = false;   ///< outcomes (and status codes) agree
};

/// Replays `call` both ways; `call_id` keys the wire's schedule.
WireEquivalence check_wire_equivalence(const chaos::FaultyWire& wire,
                                       const frameworks::ServerFramework& server,
                                       const frameworks::DeployedService& service,
                                       const frameworks::PreparedCall& call,
                                       std::string_view call_id);

/// Applies a fuzz-style body fault to a prepared (schema-valid) request —
/// the layered-fault entry point for chaos-over-generated-corpora.
soap::HttpRequest corrupt_request_body(soap::HttpRequest request, chaos::FaultKind kind,
                                       std::uint64_t salt);

}  // namespace wsx::gen
