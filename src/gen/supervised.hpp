// supervised.hpp — the propcheck campaign re-driven under the resilience
// supervisor: the sixth supervised campaign. Task granularity is one
// deployed service; one task replays that service's generated corpus
// through every client pair and charges the virtual wire cost against the
// per-task deadline. A deadline-quarantined service folds every client
// cell as kTimedOut for the whole corpus, so the matrix still accounts for
// the full generated population. Checkpoint/resume is byte-identical at
// any worker count because the corpus is a pure function of (config, ids).
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "gen/campaign.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::gen {

/// Supervisor knobs for the propcheck verb (jobs lives in GenConfig::jobs).
struct SupervisedGenOptions {
  resilience::JournalOptions journal;
  std::string checkpoint_path;
  const resilience::Journal* resume = nullptr;
  std::size_t trip_after_tasks = 0;
};

/// Canonical config fingerprint for the propcheck campaign, and its
/// inverse (used by `wsinterop resume`). Round-trips byte-identically
/// through json::parse + to_text; jobs/sinks are deliberately excluded.
std::string gen_config_json(const GenConfig& config);
Result<GenConfig> gen_config_from_json(std::string_view text);

struct SupervisedGenResult {
  PropcheckResult propcheck;
  resilience::SupervisorReport supervisor;
};

/// Runs the propcheck campaign under supervision.
Result<SupervisedGenResult> run_propcheck_supervised(const GenConfig& config,
                                                     const SupervisedGenOptions& options);

}  // namespace wsx::gen
