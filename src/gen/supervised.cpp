#include "gen/supervised.hpp"

#include <memory>
#include <utility>

#include "catalog/spec_json.hpp"
#include "common/json.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::gen {
namespace {

Error bad_config(const std::string& what) {
  return Error{"resilience.bad-config", "propcheck config: " + what};
}

Error bad_record(const std::string& id, const std::string& what) {
  return Error{"resilience.bad-record", "task record for '" + id + "': " + what};
}

bool read_count(const json::Value& value, std::string_view key, std::size_t& out) {
  const json::Value* member = value.find(key);
  if (member == nullptr || !member->is_number()) return false;
  out = static_cast<std::size_t>(member->as_number());
  return true;
}

std::string pair_delta_json(const PairDelta& delta) {
  json::ArrayWriter outcomes;
  for (const std::size_t count : delta.outcomes) {
    outcomes.raw_item(std::to_string(count));
  }
  json::ArrayWriter failures;
  for (const PropFailure& failure : delta.failures) {
    failures.raw_item(json::ObjectWriter{}
                          .field("id", failure.case_id)
                          .field("k", failure.kind)
                          .field("d", failure.detail)
                          .field("p", failure.payload)
                          .field("s", failure.shrunk)
                          .field("n", failure.shrink_steps)
                          .str());
  }
  return json::ObjectWriter{}
      .raw_field("o", outcomes.str())
      .raw_field("f", failures.str())
      .field("vms", static_cast<std::size_t>(delta.virtual_ms))
      .str();
}

bool pair_delta_from_json(const json::Value& value, PairDelta& out) {
  const json::Value* outcomes = value.find("o");
  if (outcomes == nullptr || !outcomes->is_array() ||
      outcomes->size() != kPropOutcomeCount) {
    return false;
  }
  for (std::size_t i = 0; i < kPropOutcomeCount; ++i) {
    const json::Value& count = outcomes->items()[i];
    if (!count.is_number()) return false;
    out.outcomes[i] = static_cast<std::size_t>(count.as_number());
  }
  const json::Value* failures = value.find("f");
  if (failures == nullptr || !failures->is_array()) return false;
  for (const json::Value& entry : failures->items()) {
    PropFailure failure;
    const json::Value* id = entry.find("id");
    const json::Value* kind = entry.find("k");
    const json::Value* detail = entry.find("d");
    const json::Value* payload = entry.find("p");
    const json::Value* shrunk = entry.find("s");
    if (id == nullptr || !id->is_string() || kind == nullptr || !kind->is_string() ||
        detail == nullptr || !detail->is_string() || payload == nullptr ||
        !payload->is_string() || shrunk == nullptr || !shrunk->is_string() ||
        !read_count(entry, "n", failure.shrink_steps)) {
      return false;
    }
    failure.case_id = id->as_string();
    failure.kind = kind->as_string();
    failure.detail = detail->as_string();
    failure.payload = payload->as_string();
    failure.shrunk = shrunk->as_string();
    out.failures.push_back(std::move(failure));
  }
  std::size_t vms = 0;
  if (!read_count(value, "vms", vms)) return false;
  out.virtual_ms = vms;
  return true;
}

std::pair<std::size_t, std::size_t> locate_task(const std::vector<std::size_t>& first_task,
                                                std::size_t task) {
  std::size_t server_index = first_task.size() - 1;
  while (first_task[server_index] > task) --server_index;
  return {server_index, task - first_task[server_index]};
}

}  // namespace

std::string gen_config_json(const GenConfig& config) {
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(config.java_spec))
      .raw_field("dotnet", catalog::to_json(config.dotnet_spec))
      .field("seed", static_cast<std::size_t>(config.corpus.seed))
      .field("cases_per_operation", config.corpus.cases_per_operation)
      .field("max_depth", static_cast<std::size_t>(config.corpus.max_depth))
      .field("sabotage", config.corpus.sabotage)
      .field("shrink", config.shrink)
      .field("parse_cache", config.parse_cache)
      .str();
}

Result<GenConfig> gen_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  GenConfig config;
  const json::Value* java = parsed->find("java");
  const json::Value* dotnet = parsed->find("dotnet");
  if (java == nullptr || !java->is_object() || dotnet == nullptr || !dotnet->is_object()) {
    return bad_config("missing catalog specs");
  }
  Result<catalog::JavaCatalogSpec> java_spec = catalog::java_spec_from_json(json::to_text(*java));
  if (!java_spec.ok()) return java_spec.error();
  config.java_spec = java_spec.value();
  Result<catalog::DotNetCatalogSpec> dotnet_spec =
      catalog::dotnet_spec_from_json(json::to_text(*dotnet));
  if (!dotnet_spec.ok()) return dotnet_spec.error();
  config.dotnet_spec = dotnet_spec.value();

  std::size_t seed = 0;
  std::size_t max_depth = 0;
  if (!read_count(*parsed, "seed", seed) ||
      !read_count(*parsed, "cases_per_operation", config.corpus.cases_per_operation) ||
      !read_count(*parsed, "max_depth", max_depth)) {
    return bad_config("missing corpus counters");
  }
  config.corpus.seed = seed;
  config.corpus.max_depth = static_cast<int>(max_depth);
  const auto read_flag = [&](std::string_view key, bool& out) {
    const json::Value* member = parsed->find(key);
    if (member == nullptr || !member->is_bool()) return false;
    out = member->as_bool();
    return true;
  };
  if (!read_flag("sabotage", config.corpus.sabotage) ||
      !read_flag("shrink", config.shrink) || !read_flag("parse_cache", config.parse_cache)) {
    return bad_config("missing flags");
  }
  return config;
}

Result<SupervisedGenResult> run_propcheck_supervised(const GenConfig& config,
                                                     const SupervisedGenOptions& options) {
  SupervisedGenResult out;
  PropcheckResult& result = out.propcheck;
  result.corpus = config.corpus;
  result.shrink = config.shrink;

  obs::Span run_span(config.tracer, "propcheck");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog =
      catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  client_compilers.reserve(clients.size());
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  // Deploy + shared parse + corpus compilation up front, as in
  // run_propcheck; the pair replays run under supervision.
  struct PreparedRound {
    std::vector<frameworks::DeployedService> deployed;
    std::vector<frameworks::SharedDescription> descriptions;
    std::vector<std::vector<GeneratedCase>> corpora;
  };
  std::vector<PreparedRound> prepared;
  std::vector<std::size_t> first_task;
  resilience::CampaignTasks tasks;
  tasks.campaign = "propcheck";
  tasks.config_json = gen_config_json(config);
  for (const auto& server : servers) {
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    obs::Span round_span(config.tracer, "round:" + server->name(), run_span);
    obs::Span deploy_span(config.tracer, "phase:deploy", round_span);
    obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "gen.phase.deploy_us");
    PreparedRound round;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) round.deployed.push_back(std::move(service.value()));
    }
    obs::add(config.metrics, "gen.services_deployed", round.deployed.size());
    deploy_span.annotate("deployed", round.deployed.size());
    deploy_span.end();
    deploy_timer.stop();
    if (config.parse_cache) {
      obs::Span parse_span(config.tracer, "phase:parse", round_span);
      obs::ScopedTimer parse_timer = obs::timer(config.metrics, "gen.phase.parse_us");
      round.descriptions.reserve(round.deployed.size());
      for (const frameworks::DeployedService& service : round.deployed) {
        round.descriptions.push_back(
            frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false));
      }
      parse_span.end();
      parse_timer.stop();
    }
    obs::Span corpus_span(config.tracer, "phase:generate", round_span);
    obs::ScopedTimer corpus_timer = obs::timer(config.metrics, "gen.phase.generate_us");
    round.corpora.reserve(round.deployed.size());
    for (const frameworks::DeployedService& service : round.deployed) {
      round.corpora.push_back(generate_corpus(service, config.corpus));
    }
    corpus_span.end();
    corpus_timer.stop();
    first_task.push_back(tasks.ids.size());
    for (const frameworks::DeployedService& service : round.deployed) {
      tasks.ids.push_back(server->name() + "|" + service.spec.service_name());
    }
    prepared.push_back(std::move(round));
  }

  // One task = one service's corpus against every client pair.
  tasks.run = [&](std::size_t index, resilience::TaskContext& context) {
    const auto [server_index, service_index] = locate_task(first_task, index);
    const PreparedRound& round = prepared[server_index];
    const frameworks::DeployedService& service = round.deployed[service_index];
    const frameworks::SharedDescription* description =
        config.parse_cache ? &round.descriptions[service_index] : nullptr;
    json::ArrayWriter rows;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const PairDelta delta = run_propcheck_pair(
          *servers[server_index], service, description, round.corpora[service_index],
          *clients[i], client_compilers[i].get(), config);
      context.charge(delta.virtual_ms);
      rows.raw_item(pair_delta_json(delta));
    }
    return json::ObjectWriter{}.raw_field("clients", rows.str()).str();
  };

  obs::Span calls_span(config.tracer, "phase:check", run_span);
  obs::ScopedTimer calls_timer = obs::timer(config.metrics, "gen.phase.check_us");
  resilience::SupervisorOptions sup;
  sup.journal = options.journal;
  sup.jobs = config.jobs;
  sup.checkpoint_path = options.checkpoint_path;
  sup.resume = options.resume;
  sup.trip_after_tasks = options.trip_after_tasks;
  sup.metrics = config.metrics;
  Result<resilience::SupervisorReport> supervised = resilience::supervise(tasks, sup);
  calls_span.end();
  calls_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold in task order. Completed pairs add their deltas; deadline
  // quarantines synthesize kTimedOut for the service's whole corpus.
  for (std::size_t server_index = 0; server_index < servers.size(); ++server_index) {
    PropServerResult server_result;
    server_result.server = servers[server_index]->name();
    server_result.services_deployed = prepared[server_index].deployed.size();
    for (const std::vector<GeneratedCase>& corpus : prepared[server_index].corpora) {
      server_result.cases_generated += corpus.size();
    }
    for (const auto& client : clients) {
      PropCell cell;
      cell.client = client->name();
      server_result.cells.push_back(std::move(cell));
    }
    result.servers.push_back(std::move(server_result));
  }
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    const auto [server_index, service_index] = locate_task(first_task, task.task);
    PropServerResult& server_result = result.servers[server_index];
    const std::size_t corpus_size = prepared[server_index].corpora[service_index].size();
    if (task.state == resilience::TaskState::kQuarantined && task.timed_out) {
      for (PropCell& cell : server_result.cells) {
        cell.outcomes[static_cast<std::size_t>(PropOutcome::kTimedOut)] += corpus_size;
      }
      continue;
    }
    if (task.state != resilience::TaskState::kCompleted) continue;
    Result<json::Value> record = json::parse(task.record);
    if (!record.ok()) return record.error();
    const json::Value* rows = record->find("clients");
    if (rows == nullptr || !rows->is_array() || rows->size() != clients.size()) {
      return bad_record(task.id, "client row count mismatch");
    }
    for (std::size_t i = 0; i < clients.size(); ++i) {
      PairDelta delta;
      if (!pair_delta_from_json(rows->items()[i], delta)) {
        return bad_record(task.id, "malformed pair delta");
      }
      PropCell& cell = server_result.cells[i];
      for (std::size_t outcome = 0; outcome < kPropOutcomeCount; ++outcome) {
        cell.outcomes[outcome] += delta.outcomes[outcome];
      }
      for (PropFailure& failure : delta.failures) {
        cell.failures.push_back(std::move(failure));
      }
      cell.virtual_ms += delta.virtual_ms;
    }
  }
  return out;
}

}  // namespace wsx::gen
