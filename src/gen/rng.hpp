// rng.hpp — the deterministic PRNG behind every generated corpus.
//
// Stream identity, not call order, decides the numbers: a generator is
// seeded by folding (seed, stream-id string) through FNV-1a — the same
// construction the chaos fault planner uses for its per-call schedules —
// and then advances with the splitmix64 step. Two cases never share a
// stream, so a corpus is byte-for-byte identical at any worker count and
// under any generation order.
#pragma once

#include <cstdint>
#include <string_view>

namespace wsx::gen {

class Rng {
 public:
  Rng(std::uint64_t seed, std::string_view stream) {
    std::uint64_t h = 1469598103934665603ull ^ (seed * 0x9E3779B97F4A7C15ull);
    for (const char c : stream) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    state_ = h;
  }

  /// splitmix64: one additive step plus a finalizing scramble.
  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, bound); 0 when bound is 0.
  std::size_t below(std::size_t bound) {
    return bound == 0 ? 0 : static_cast<std::size_t>(next() % bound);
  }

  /// True with probability percent/100.
  bool chance(unsigned percent) { return below(100) < percent; }

  char pick(std::string_view alphabet) {
    return alphabet.empty() ? 'a' : alphabet[below(alphabet.size())];
  }

 private:
  std::uint64_t state_ = 0;
};

}  // namespace wsx::gen
