#include "gen/bridge.hpp"

#include <utility>

namespace wsx::gen {

WireEquivalence check_wire_equivalence(const chaos::FaultyWire& wire,
                                       const frameworks::ServerFramework& server,
                                       const frameworks::DeployedService& service,
                                       const frameworks::PreparedCall& call,
                                       std::string_view call_id) {
  WireEquivalence result;
  result.direct = frameworks::classify_echo_response(
      server.handle_http(service, call.request), call.payload);
  const chaos::CallSchedule schedule = wire.schedule(call_id);
  const chaos::WireAttempt attempt = wire.attempt(service, call.request, schedule, 0);
  result.delivered = attempt.status == chaos::WireAttempt::Status::kDelivered;
  if (!result.delivered) return result;
  result.wired = frameworks::classify_echo_response(attempt.response, call.payload);
  result.identical = result.wired.outcome == result.direct.outcome &&
                     result.wired.http_status == result.direct.http_status;
  return result;
}

soap::HttpRequest corrupt_request_body(soap::HttpRequest request, chaos::FaultKind kind,
                                       std::uint64_t salt) {
  request.body = chaos::apply_body_fault(kind, std::move(request.body), salt);
  return request;
}

}  // namespace wsx::gen
