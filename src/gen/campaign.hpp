// campaign.hpp — the propcheck campaign: WSDL-guided property-based
// testing of the communication phase. For every (server, service, client)
// pair it establishes the pair's baseline classification with the study's
// fixed echo probe, then replays the service's generated corpus through
// the exact same invocation pipeline and checks two properties:
//
//   1. validity  — every generated value is inside the contract's value
//      space (xsd::is_valid_value agrees with the generators);
//   2. stability — a schema-valid payload classifies exactly like the
//      baseline (payload content never changes the interop verdict).
//
// A violated property becomes a PropFailure carrying the offending payload
// and — when shrinking is on — a locally minimal counterexample plus a
// deterministic replay command.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/client.hpp"
#include "frameworks/server.hpp"
#include "frameworks/shared_description.hpp"
#include "gen/request_gen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::gen {

/// How one generated case resolved against its pair.
enum class PropOutcome {
  kBlocked,       ///< pair blocked before the wire — case never ran
  kPass,          ///< both properties held
  kSkipped,       ///< structured case on an uncommon-marshalling pair
  kInvalidValue,  ///< validity property violated (generator emitted outside the contract)
  kMismatch,      ///< stability property violated (classification drifted from baseline)
  kTimedOut,      ///< supervised run: the service's deadline quarantined the pair
};
inline constexpr std::size_t kPropOutcomeCount = 6;
const char* to_string(PropOutcome outcome);

/// One property violation, shrunk when shrinking is enabled.
struct PropFailure {
  std::string case_id;
  std::string kind;          ///< "invalid-value" | "mismatch"
  std::string detail;        ///< validator message / expected-vs-observed
  std::string payload;       ///< rendered offending payload
  std::string shrunk;        ///< rendered minimal counterexample ("" = not shrunk)
  std::size_t shrink_steps = 0;  ///< accepted shrink moves
  friend bool operator==(const PropFailure&, const PropFailure&) = default;
};

/// Everything one (service, client) pair contributes; a pure function of
/// (corpus, pair), so folding order never changes the result.
struct PairDelta {
  std::array<std::size_t, kPropOutcomeCount> outcomes{};
  std::vector<PropFailure> failures;
  std::uint64_t virtual_ms = 0;
};

struct PropCell {
  std::string client;
  std::array<std::size_t, kPropOutcomeCount> outcomes{};
  std::vector<PropFailure> failures;
  std::uint64_t virtual_ms = 0;

  std::size_t count(PropOutcome outcome) const {
    return outcomes[static_cast<std::size_t>(outcome)];
  }
};

struct PropServerResult {
  std::string server;
  std::size_t services_deployed = 0;
  std::size_t cases_generated = 0;  ///< corpus size across the server's services
  std::vector<PropCell> cells;
};

struct PropcheckResult {
  CorpusOptions corpus;
  bool shrink = true;
  std::vector<PropServerResult> servers;

  std::size_t total(PropOutcome outcome) const;
  std::size_t total_failures() const;
};

struct GenConfig {
  catalog::JavaCatalogSpec java_spec;
  catalog::DotNetCatalogSpec dotnet_spec;
  CorpusOptions corpus;
  bool shrink = true;
  std::size_t jobs = 0;  ///< 0 = hardware concurrency
  bool parse_cache = true;
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Virtual cost charged per wire invocation (baseline + each case), the
/// chaos campaign's base latency.
inline constexpr std::uint64_t kCaseCostMs = 5;

/// Runs one pair: baseline probe, then the whole corpus.
PairDelta run_propcheck_pair(const frameworks::ServerFramework& server,
                             const frameworks::DeployedService& service,
                             const frameworks::SharedDescription* description,
                             const std::vector<GeneratedCase>& corpus,
                             const frameworks::ClientFramework& client,
                             const compilers::Compiler* compiler, const GenConfig& config);

/// The full campaign: every server's catalog population.
PropcheckResult run_propcheck(const GenConfig& config);

/// Plain-text matrix; `with_shrink` appends the counterexample report with
/// minimized payloads and replay commands.
std::string format_propcheck(const PropcheckResult& result, bool with_shrink);
/// Canonical JSON (byte-deterministic at any worker count).
std::string propcheck_json(const PropcheckResult& result);
/// The deterministic CLI invocation that reproduces this corpus.
std::string replay_command(const CorpusOptions& corpus);

}  // namespace wsx::gen
