// journal.hpp — the checkpoint journal a supervised campaign writes.
//
// A journal is one JSON-lines file: a header object describing the
// campaign (name, canonical config, task count, and the deterministic
// supervisor knobs), followed by one entry object per finished task,
// appended block-by-block at the checkpoint cadence. `wsinterop resume`
// parses the file back, re-derives the campaign from the header, and skips
// every journaled task — so an interrupted run finishes with a final
// report byte-identical to an uninterrupted one.
//
// The header pins the knobs that influence campaign *output* (deadlines,
// quarantine threshold, budgets, cadence): a resume silently reusing them
// is what keeps interrupted and straight runs equivalent. Worker count is
// deliberately absent — output never depends on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"

namespace wsx::resilience {

/// The supervisor knobs that affect campaign output (not throughput).
/// Stored in the journal header; a resume must run under the same values.
struct JournalOptions {
  std::size_t checkpoint_every = 64;   ///< tasks per checkpointed block
  std::uint64_t task_deadline_ms = 0;  ///< per-task virtual deadline; 0 = none
  std::size_t quarantine_after = 3;    ///< failed attempts before quarantine
  std::uint64_t budget_ms = 0;         ///< campaign virtual-ms budget; 0 = none
  std::size_t budget_tasks = 0;        ///< campaign executed-task budget; 0 = none

  friend bool operator==(const JournalOptions&, const JournalOptions&) = default;
};

/// Terminal state of one journaled task.
enum class JournalState {
  kCompleted,    ///< ran to completion; `record` holds the result payload
  kQuarantined,  ///< failed or timed out `attempts` times; parked for good
};

const char* to_string(JournalState state);

struct JournalEntry {
  std::size_t task = 0;   ///< index into the campaign's task order
  std::string id;         ///< stable task id, e.g. "Metro (Glassfish)|EchoFoo"
  JournalState state = JournalState::kCompleted;
  std::size_t attempts = 1;
  bool timed_out = false;        ///< quarantine was caused by the deadline
  std::uint64_t virtual_ms = 0;  ///< virtual time the task consumed (all attempts)
  std::string record;            ///< campaign result payload as JSON text
  std::string reason;            ///< quarantine diagnostic; "" when completed
};

/// How Journal::parse treats a malformed final record.
struct JournalParseOptions {
  /// A crash mid-append leaves a truncated last line. When set, such a
  /// trailing record — malformed JSON or missing fields, but only on the
  /// *final* non-empty line — is discarded (its task simply re-executes on
  /// resume) instead of hard-failing the whole journal. Malformed lines
  /// anywhere else, and a malformed header, remain hard errors: they mean
  /// corruption, not interruption.
  bool tolerate_truncated_tail = false;
  /// When non-null, receives a one-line diagnostic if a tail was discarded
  /// ("" when the journal parsed clean).
  std::string* diagnostic = nullptr;
};

/// A parsed (or under-construction) journal.
struct Journal {
  std::string campaign;     ///< "study" | "communication" | "chaos" | "lint-corpus"
  std::string config_json;  ///< canonical campaign config (the fingerprint)
  std::size_t tasks = 0;    ///< total tasks in the campaign
  JournalOptions options;
  std::vector<JournalEntry> entries;

  /// Renders the header line (no trailing newline).
  std::string header_line() const;

  /// Renders one entry line (no trailing newline).
  static std::string entry_line(const JournalEntry& entry);

  /// Parses a whole journal document (header + entries). Error codes use
  /// the "journal." prefix. Duplicate task indices keep the first entry —
  /// an interrupted append can at worst repeat a block's lines.
  static Result<Journal> parse(std::string_view text, const JournalParseOptions& options = {});
};

}  // namespace wsx::resilience
