// supervisor.hpp — the checkpointed, deadline-aware campaign supervisor.
//
// A campaign hands the supervisor an ordered list of task ids plus a pure
// `run(index)` function; the supervisor executes the tasks on the shared
// WorkerPool in fixed blocks of `checkpoint_every`, journaling each block
// before admitting the next. Within that loop it provides the four
// robustness behaviours the ISSUE names:
//
//   * checkpoint/resume — finished tasks are appended to the journal, and a
//     resumed run replays their records instead of re-executing them;
//   * per-task deadlines — tasks charge virtual milliseconds through their
//     TaskContext and are aborted (DeadlineExceeded) when they cross the
//     deadline, instead of hanging the pool;
//   * poison quarantine — a task that throws or times out on every one of
//     its `quarantine_after` attempts is parked with its diagnostic and
//     never retried, including across resumes;
//   * graceful degradation — virtual-ms / task budgets are evaluated at
//     block boundaries only, over totals accumulated in task order, so the
//     admission decision is identical at any worker count and identical
//     between straight and resumed runs.
//
// Determinism contract: `run` must be a pure function of the task index.
// Given that, the sequence of TaskOutcomes — and therefore any report
// folded from it — is byte-identical for any jobs value and for any
// interrupt/resume split.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "resilience/journal.hpp"

namespace wsx::resilience {

/// Thrown out of TaskContext::charge() when a task crosses its deadline.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(std::uint64_t deadline_ms)
      : std::runtime_error("task deadline of " + std::to_string(deadline_ms) +
                           " virtual ms exceeded") {}
};

/// Per-attempt execution context handed to every task. Tasks report the
/// virtual time they consume through charge(); the deadline applies to one
/// attempt, while total_ms() accumulates across retries (it feeds the
/// campaign budget).
class TaskContext {
 public:
  explicit TaskContext(std::uint64_t deadline_ms) : deadline_ms_(deadline_ms) {}

  /// Adds `ms` of virtual time; throws DeadlineExceeded when the attempt
  /// crosses the deadline (0 = no deadline).
  void charge(std::uint64_t ms) {
    attempt_ms_ += ms;
    total_ms_ += ms;
    if (deadline_ms_ != 0 && attempt_ms_ > deadline_ms_) {
      throw DeadlineExceeded(deadline_ms_);
    }
  }

  std::uint64_t attempt_ms() const { return attempt_ms_; }
  std::uint64_t total_ms() const { return total_ms_; }

  /// Starts the next attempt: the per-attempt meter resets, the total
  /// carries over.
  void begin_attempt() { attempt_ms_ = 0; }

 private:
  std::uint64_t deadline_ms_;
  std::uint64_t attempt_ms_ = 0;
  std::uint64_t total_ms_ = 0;
};

/// A campaign, flattened to the shape the supervisor understands: a stable
/// name, a canonical config fingerprint, an ordered task list, and a pure
/// task function returning the task's result record as JSON text.
struct CampaignTasks {
  std::string campaign;          ///< "study" | "communication" | "chaos" | "lint-corpus"
  std::string config_json;       ///< canonical config (journal fingerprint)
  std::vector<std::string> ids;  ///< one stable id per task, in task order
  std::function<std::string(std::size_t index, TaskContext& context)> run;
};

struct SupervisorOptions {
  JournalOptions journal;        ///< the deterministic knobs (also journaled)
  std::size_t jobs = 1;          ///< worker threads; 0 = hardware
  std::string checkpoint_path;   ///< journal file; "" = no checkpointing
  const Journal* resume = nullptr;  ///< parsed journal to resume from
  /// Crash simulation for tests/CI: after a block whose checkpoint brought
  /// the number of tasks *executed this process* to >= this value, stop as
  /// if the process died. 0 = never trip.
  std::size_t trip_after_tasks = 0;
  obs::Registry* metrics = nullptr;  ///< supervisor counters, when non-null
};

/// Terminal state of one task after a supervised run.
enum class TaskState {
  kCompleted,    ///< ran (or was resumed) to completion; `record` is set
  kQuarantined,  ///< failed/timed out every attempt; parked with `reason`
  kNotAdmitted,  ///< never started: budget exhausted or run tripped
};

const char* to_string(TaskState state);

struct TaskOutcome {
  std::size_t task = 0;
  std::string id;
  TaskState state = TaskState::kNotAdmitted;
  bool resumed = false;          ///< replayed from the journal, not executed
  std::size_t attempts = 0;
  bool timed_out = false;        ///< quarantine was caused by the deadline
  std::uint64_t virtual_ms = 0;  ///< virtual time consumed (all attempts)
  std::string record;            ///< result payload JSON; "" unless completed
  std::string reason;            ///< quarantine diagnostic
};

struct SupervisorReport {
  std::vector<TaskOutcome> tasks;  ///< every task, in task order
  bool degraded = false;           ///< a budget stopped admission
  bool tripped = false;            ///< the crash-simulation trip fired
  std::size_t completed = 0;       ///< tasks with a record (resumed included)
  std::size_t resumed = 0;         ///< tasks replayed from the journal
  std::size_t quarantined = 0;     ///< parked tasks (resumed included)
  std::size_t not_admitted = 0;    ///< tasks never started
  std::size_t executed = 0;        ///< tasks actually run by this process
  std::uint64_t virtual_ms_total = 0;
  std::size_t checkpoints_written = 0;
};

/// Runs the campaign under supervision. Errors use the "resilience."
/// prefix (resume mismatches, unwritable checkpoint files).
Result<SupervisorReport> supervise(const CampaignTasks& tasks, const SupervisorOptions& options);

/// The supervisor section appended to every supervised campaign report:
/// degradation mark, coverage counters, and the quarantine list. Stable
/// field order; deterministic given the same resume state.
std::string supervisor_json(const SupervisorReport& report);

/// Same content as supervisor_json, rendered as a Markdown section.
std::string supervisor_markdown(const SupervisorReport& report);

}  // namespace wsx::resilience
