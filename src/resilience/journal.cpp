#include "resilience/journal.hpp"

#include <set>

namespace wsx::resilience {

namespace {

/// Format marker in the header line; bump on incompatible layout changes.
constexpr const char* kFormat = "wsx.resilience.v1";

Error fail(std::string code, std::string message) {
  return Error{"journal." + std::move(code), std::move(message)};
}

Result<std::size_t> read_count(const json::Value& object, std::string_view key) {
  const json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number()) {
    return fail("missing-field", "expected numeric field '" + std::string(key) + "'");
  }
  const double number = member->as_number();
  if (number < 0) return fail("bad-field", "negative value for '" + std::string(key) + "'");
  return static_cast<std::size_t>(number);
}

Result<std::string> read_string(const json::Value& object, std::string_view key) {
  const json::Value* member = object.find(key);
  if (member == nullptr || !member->is_string()) {
    return fail("missing-field", "expected string field '" + std::string(key) + "'");
  }
  return member->as_string();
}

}  // namespace

const char* to_string(JournalState state) {
  switch (state) {
    case JournalState::kCompleted:
      return "completed";
    case JournalState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string Journal::header_line() const {
  json::ObjectWriter writer;
  writer.field("journal", kFormat)
      .field("campaign", campaign)
      .raw_field("config", config_json)
      .field("tasks", tasks)
      .field("checkpoint_every", options.checkpoint_every)
      .field("task_deadline_ms", static_cast<std::size_t>(options.task_deadline_ms))
      .field("quarantine_after", options.quarantine_after)
      .field("budget_ms", static_cast<std::size_t>(options.budget_ms))
      .field("budget_tasks", options.budget_tasks);
  return writer.str();
}

std::string Journal::entry_line(const JournalEntry& entry) {
  json::ObjectWriter writer;
  writer.field("task", entry.task)
      .field("id", entry.id)
      .field("state", to_string(entry.state))
      .field("attempts", entry.attempts)
      .field("timed_out", entry.timed_out)
      .field("virtual_ms", static_cast<std::size_t>(entry.virtual_ms));
  if (entry.state == JournalState::kCompleted) {
    writer.raw_field("record", entry.record);
  } else {
    writer.field("reason", entry.reason);
  }
  return writer.str();
}

Result<Journal> Journal::parse(std::string_view text, const JournalParseOptions& parse_options) {
  Journal journal;
  if (parse_options.diagnostic != nullptr) parse_options.diagnostic->clear();
  bool saw_header = false;
  std::set<std::size_t> seen_tasks;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, end == std::string_view::npos ? std::string_view::npos : end - pos);
    pos = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;

    // A malformed *final* entry line is the signature of a crash mid-append;
    // in tolerant mode it is dropped (the task re-executes on resume) with a
    // diagnostic instead of failing the resume outright. Anything malformed
    // with more journal after it is corruption and stays a hard error, as
    // does a malformed header (without it there is nothing to resume).
    const auto tail_is_blank = [&] {
      const std::string_view rest = pos <= text.size() ? text.substr(pos) : std::string_view{};
      return rest.find_first_not_of(" \t\r\n") == std::string_view::npos;
    };
    const auto entry_failure = [&](std::string code, std::string message) -> Result<Journal> {
      if (saw_header && parse_options.tolerate_truncated_tail && tail_is_blank()) {
        if (parse_options.diagnostic != nullptr) {
          *parse_options.diagnostic = "discarded truncated trailing record (line " +
                                      std::to_string(line_no) + ": " + message + ")";
        }
        return journal;
      }
      if (code.rfind("journal.", 0) != 0) code = "journal." + code;
      return Error{std::move(code),
                   "line " + std::to_string(line_no) + ": " + std::move(message)};
    };

    Result<json::Value> parsed = json::parse(line);
    if (!parsed.ok()) {
      return entry_failure("bad-line", parsed.error().message);
    }
    const json::Value& object = parsed.value();
    if (!object.is_object()) {
      return entry_failure("bad-line", "expected an object");
    }

    if (!saw_header) {
      Result<std::string> format = read_string(object, "journal");
      if (!format.ok()) return format.error();
      if (format.value() != kFormat) {
        return fail("bad-format", "unsupported journal format '" + format.value() + "'");
      }
      Result<std::string> campaign = read_string(object, "campaign");
      if (!campaign.ok()) return campaign.error();
      const json::Value* config = object.find("config");
      if (config == nullptr) return fail("missing-field", "header lacks 'config'");
      Result<std::size_t> tasks = read_count(object, "tasks");
      if (!tasks.ok()) return tasks.error();
      Result<std::size_t> cadence = read_count(object, "checkpoint_every");
      if (!cadence.ok()) return cadence.error();
      Result<std::size_t> deadline = read_count(object, "task_deadline_ms");
      if (!deadline.ok()) return deadline.error();
      Result<std::size_t> quarantine = read_count(object, "quarantine_after");
      if (!quarantine.ok()) return quarantine.error();
      Result<std::size_t> budget_ms = read_count(object, "budget_ms");
      if (!budget_ms.ok()) return budget_ms.error();
      Result<std::size_t> budget_tasks = read_count(object, "budget_tasks");
      if (!budget_tasks.ok()) return budget_tasks.error();
      journal.campaign = std::move(campaign.value());
      journal.config_json = json::to_text(*config);
      journal.tasks = tasks.value();
      journal.options.checkpoint_every = cadence.value();
      journal.options.task_deadline_ms = deadline.value();
      journal.options.quarantine_after = quarantine.value();
      journal.options.budget_ms = budget_ms.value();
      journal.options.budget_tasks = budget_tasks.value();
      saw_header = true;
      continue;
    }

    JournalEntry entry;
    Result<std::size_t> task = read_count(object, "task");
    if (!task.ok()) return entry_failure(task.error().code, task.error().message);
    entry.task = task.value();
    if (entry.task >= journal.tasks) {
      return entry_failure("bad-entry",
                           "task index " + std::to_string(entry.task) + " out of range");
    }
    Result<std::string> id = read_string(object, "id");
    if (!id.ok()) return entry_failure(id.error().code, id.error().message);
    entry.id = std::move(id.value());
    Result<std::string> state = read_string(object, "state");
    if (!state.ok()) return entry_failure(state.error().code, state.error().message);
    if (state.value() == "completed") {
      entry.state = JournalState::kCompleted;
    } else if (state.value() == "quarantined") {
      entry.state = JournalState::kQuarantined;
    } else {
      return entry_failure("bad-entry", "unknown state '" + state.value() + "'");
    }
    Result<std::size_t> attempts = read_count(object, "attempts");
    if (!attempts.ok()) return entry_failure(attempts.error().code, attempts.error().message);
    entry.attempts = attempts.value();
    const json::Value* timed_out = object.find("timed_out");
    if (timed_out == nullptr || !timed_out->is_bool()) {
      return entry_failure("missing-field", "expected 'timed_out'");
    }
    entry.timed_out = timed_out->as_bool();
    Result<std::size_t> virtual_ms = read_count(object, "virtual_ms");
    if (!virtual_ms.ok()) {
      return entry_failure(virtual_ms.error().code, virtual_ms.error().message);
    }
    entry.virtual_ms = virtual_ms.value();
    if (entry.state == JournalState::kCompleted) {
      const json::Value* record = object.find("record");
      if (record == nullptr) {
        return entry_failure("missing-field", "expected 'record'");
      }
      entry.record = json::to_text(*record);
    } else {
      Result<std::string> reason = read_string(object, "reason");
      if (!reason.ok()) return entry_failure(reason.error().code, reason.error().message);
      entry.reason = std::move(reason.value());
    }
    // An interrupted append can at worst repeat a block's lines; the first
    // copy of a task wins, later duplicates are dropped.
    if (seen_tasks.insert(entry.task).second) {
      journal.entries.push_back(std::move(entry));
    }
  }

  if (!saw_header) return fail("empty", "journal has no header line");
  return journal;
}

}  // namespace wsx::resilience
