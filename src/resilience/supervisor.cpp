#include "resilience/supervisor.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "common/pool.hpp"

namespace wsx::resilience {

namespace {

Error fail(std::string code, std::string message) {
  return Error{"resilience." + std::move(code), std::move(message)};
}

/// Validates a resume journal against the campaign about to run. Every
/// mismatch is a hard error: silently resuming a different campaign (or the
/// same campaign under different knobs) would break the byte-identical
/// equivalence guarantee.
Status check_resume(const CampaignTasks& tasks, const SupervisorOptions& options) {
  const Journal& journal = *options.resume;
  if (journal.campaign != tasks.campaign) {
    return fail("resume-mismatch", "journal is for campaign '" + journal.campaign +
                                       "', not '" + tasks.campaign + "'");
  }
  if (journal.config_json != tasks.config_json) {
    return fail("resume-mismatch", "journal config fingerprint does not match this campaign");
  }
  if (journal.tasks != tasks.ids.size()) {
    return fail("resume-mismatch", "journal has " + std::to_string(journal.tasks) +
                                       " tasks, campaign has " +
                                       std::to_string(tasks.ids.size()));
  }
  if (!(journal.options == options.journal)) {
    return fail("resume-mismatch",
                "journal supervisor options do not match (checkpoint/deadline/"
                "quarantine/budget knobs must be identical on resume)");
  }
  for (const JournalEntry& entry : journal.entries) {
    if (entry.task >= tasks.ids.size() || tasks.ids[entry.task] != entry.id) {
      return fail("resume-mismatch", "journal entry for task " + std::to_string(entry.task) +
                                         " names id '" + entry.id +
                                         "' which this campaign does not");
    }
  }
  return Status::success();
}

/// Runs one task with the retry-until-quarantine loop. Never throws: every
/// failure mode folds into the returned TaskOutcome.
TaskOutcome execute_task(const CampaignTasks& tasks, const SupervisorOptions& options,
                         std::size_t index) {
  TaskOutcome outcome;
  outcome.task = index;
  outcome.id = tasks.ids[index];
  const std::size_t max_attempts = std::max<std::size_t>(1, options.journal.quarantine_after);
  TaskContext context(options.journal.task_deadline_ms);
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    context.begin_attempt();
    outcome.attempts = attempt;
    try {
      outcome.record = tasks.run(index, context);
      outcome.state = TaskState::kCompleted;
      break;
    } catch (const DeadlineExceeded& e) {
      outcome.state = TaskState::kQuarantined;
      outcome.timed_out = true;
      outcome.reason = e.what();
    } catch (const std::exception& e) {
      outcome.state = TaskState::kQuarantined;
      outcome.timed_out = false;
      outcome.reason = e.what();
    } catch (...) {
      outcome.state = TaskState::kQuarantined;
      outcome.timed_out = false;
      outcome.reason = "unknown exception";
    }
  }
  outcome.virtual_ms = context.total_ms();
  return outcome;
}

JournalEntry to_entry(const TaskOutcome& outcome) {
  JournalEntry entry;
  entry.task = outcome.task;
  entry.id = outcome.id;
  entry.state = outcome.state == TaskState::kCompleted ? JournalState::kCompleted
                                                       : JournalState::kQuarantined;
  entry.attempts = outcome.attempts;
  entry.timed_out = outcome.timed_out;
  entry.virtual_ms = outcome.virtual_ms;
  entry.record = outcome.record;
  entry.reason = outcome.reason;
  return entry;
}

void export_metrics(const SupervisorReport& report, std::size_t total,
                    const SupervisorOptions& options) {
  obs::Registry* metrics = options.metrics;
  if (metrics == nullptr) return;
  obs::add(metrics, "resilience.tasks_total", total);
  obs::add(metrics, "resilience.tasks_completed", report.completed);
  obs::add(metrics, "resilience.tasks_resumed", report.resumed);
  obs::add(metrics, "resilience.tasks_quarantined", report.quarantined);
  obs::add(metrics, "resilience.tasks_not_admitted", report.not_admitted);
  obs::add(metrics, "resilience.checkpoints_written", report.checkpoints_written);
  std::uint64_t attempts = 0;
  std::uint64_t timed_out = 0;
  for (const TaskOutcome& outcome : report.tasks) {
    if (outcome.resumed || outcome.state == TaskState::kNotAdmitted) continue;
    attempts += outcome.attempts;
    if (outcome.timed_out) ++timed_out;
  }
  obs::add(metrics, "resilience.attempts", attempts);
  obs::add(metrics, "resilience.attempts_timed_out", timed_out);
  if (report.degraded) obs::add(metrics, "resilience.budget_exhausted");
  // Budget headroom as gauges (point-in-time values, dropped from the
  // deterministic export): what a serve `stats` query or a --metrics dump
  // reports without re-deriving it from the coverage counters.
  if (options.journal.budget_tasks != 0) {
    const std::size_t used = report.completed + report.quarantined;
    metrics->gauge("resilience.budget_tasks_remaining")
        .set(static_cast<std::int64_t>(
            options.journal.budget_tasks > used ? options.journal.budget_tasks - used : 0));
  }
  if (options.journal.budget_ms != 0) {
    metrics->gauge("resilience.budget_ms_remaining")
        .set(static_cast<std::int64_t>(options.journal.budget_ms > report.virtual_ms_total
                                           ? options.journal.budget_ms - report.virtual_ms_total
                                           : 0));
  }
}

}  // namespace

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kCompleted:
      return "completed";
    case TaskState::kQuarantined:
      return "quarantined";
    case TaskState::kNotAdmitted:
      return "not-admitted";
  }
  return "unknown";
}

Result<SupervisorReport> supervise(const CampaignTasks& tasks, const SupervisorOptions& options) {
  const std::size_t total = tasks.ids.size();
  SupervisorReport report;
  report.tasks.resize(total);

  // Map resumed entries by task index for O(1) lookup during admission.
  std::unordered_map<std::size_t, const JournalEntry*> resumed;
  if (options.resume != nullptr) {
    Status valid = check_resume(tasks, options);
    if (!valid.ok()) return valid.error();
    for (const JournalEntry& entry : options.resume->entries) {
      resumed.emplace(entry.task, &entry);
    }
  }

  std::ofstream journal_file;
  if (!options.checkpoint_path.empty()) {
    // A fresh run truncates and writes the header; a resume appends after
    // the entries already on disk.
    const auto mode = options.resume != nullptr ? std::ios::app : std::ios::trunc;
    journal_file.open(options.checkpoint_path, std::ios::out | mode);
    if (!journal_file.is_open()) {
      return fail("journal-io", "cannot open journal '" + options.checkpoint_path +
                                    "' for writing");
    }
    if (options.resume == nullptr) {
      Journal header;
      header.campaign = tasks.campaign;
      header.config_json = tasks.config_json;
      header.tasks = total;
      header.options = options.journal;
      journal_file << header.header_line() << '\n';
      journal_file.flush();
    }
  }

  // Block size: the checkpoint cadence. 0 means "one block" — no
  // intermediate checkpoints, everything journaled at the end. Block
  // boundaries exist only to checkpoint, enforce budgets and honour
  // trip_after_tasks; when none of those are in play the whole campaign is
  // one block, sparing a pool-wide synchronisation every cadence tasks.
  const bool blocks_matter = journal_file.is_open() || options.journal.budget_tasks != 0 ||
                             options.journal.budget_ms != 0 || options.trip_after_tasks != 0;
  const std::size_t cadence =
      !blocks_matter || options.journal.checkpoint_every == 0
          ? std::max<std::size_t>(1, total)
          : options.journal.checkpoint_every;
  const std::size_t workers = resolve_workers(options.jobs);

  // One pool for the whole run, built lazily on the first block that needs
  // threads. WorkerPool supports submit/wait/submit cycles, and a fresh
  // pool per block would pay a spawn/join cycle at every checkpoint — at
  // the default cadence that, not the bookkeeping, dominates supervisor
  // overhead.
  std::unique_ptr<WorkerPool> pool;

  std::size_t processed = 0;  // completed + quarantined so far (resumed included)
  for (std::size_t begin = 0; begin < total; begin += cadence) {
    const std::size_t end = std::min(total, begin + cadence);

    // Budget check — block boundary only, over totals accumulated in task
    // order, so the decision is identical at any worker count and for any
    // interrupt/resume split.
    const bool tasks_exhausted =
        options.journal.budget_tasks != 0 && processed >= options.journal.budget_tasks;
    const bool ms_exhausted =
        options.journal.budget_ms != 0 && report.virtual_ms_total >= options.journal.budget_ms;
    if (tasks_exhausted || ms_exhausted) {
      report.degraded = true;
      for (std::size_t i = begin; i < total; ++i) {
        report.tasks[i].task = i;
        report.tasks[i].id = tasks.ids[i];
        report.tasks[i].state = TaskState::kNotAdmitted;
        ++report.not_admitted;
      }
      break;
    }

    // Admit the block: resumed tasks replay their journal entry, the rest
    // execute on the pool (inline when one worker suffices).
    std::vector<std::size_t> to_run;
    for (std::size_t i = begin; i < end; ++i) {
      const auto found = resumed.find(i);
      if (found == resumed.end()) {
        to_run.push_back(i);
        continue;
      }
      const JournalEntry& entry = *found->second;
      TaskOutcome& outcome = report.tasks[i];
      outcome.task = i;
      outcome.id = entry.id;
      outcome.state = entry.state == JournalState::kCompleted ? TaskState::kCompleted
                                                              : TaskState::kQuarantined;
      outcome.resumed = true;
      outcome.attempts = entry.attempts;
      outcome.timed_out = entry.timed_out;
      outcome.virtual_ms = entry.virtual_ms;
      outcome.record = entry.record;
      outcome.reason = entry.reason;
    }
    if (workers <= 1 || to_run.size() <= 1) {
      for (const std::size_t i : to_run) {
        report.tasks[i] = execute_task(tasks, options, i);
      }
    } else {
      if (pool == nullptr) pool = std::make_unique<WorkerPool>(workers);
      for (const std::size_t i : to_run) {
        pool->submit([&, i] { report.tasks[i] = execute_task(tasks, options, i); });
      }
      pool->wait();  // execute_task never throws; nothing to rethrow
    }

    // Tally the block in task order and checkpoint the newly executed
    // entries before admitting more work.
    for (std::size_t i = begin; i < end; ++i) {
      const TaskOutcome& outcome = report.tasks[i];
      if (outcome.state == TaskState::kCompleted) ++report.completed;
      if (outcome.state == TaskState::kQuarantined) ++report.quarantined;
      if (outcome.resumed) {
        ++report.resumed;
      } else {
        ++report.executed;
      }
      report.virtual_ms_total += outcome.virtual_ms;
      ++processed;
      if (journal_file.is_open() && !outcome.resumed) {
        journal_file << Journal::entry_line(to_entry(outcome)) << '\n';
      }
    }
    if (journal_file.is_open()) {
      journal_file.flush();
      ++report.checkpoints_written;
      if (!journal_file.good()) {
        return fail("journal-io", "write to journal '" + options.checkpoint_path + "' failed");
      }
    }

    // Crash simulation: the process "dies" right after a checkpoint, the
    // worst-case-but-recoverable interrupt point.
    if (options.trip_after_tasks != 0 && report.executed >= options.trip_after_tasks &&
        end < total) {
      report.tripped = true;
      for (std::size_t i = end; i < total; ++i) {
        report.tasks[i].task = i;
        report.tasks[i].id = tasks.ids[i];
        report.tasks[i].state = TaskState::kNotAdmitted;
        ++report.not_admitted;
      }
      break;
    }
  }

  export_metrics(report, total, options);
  return report;
}

std::string supervisor_json(const SupervisorReport& report) {
  json::ArrayWriter quarantine;
  for (const TaskOutcome& outcome : report.tasks) {
    if (outcome.state != TaskState::kQuarantined) continue;
    json::ObjectWriter entry;
    entry.field("id", outcome.id)
        .field("attempts", outcome.attempts)
        .field("timed_out", outcome.timed_out)
        .field("resumed", outcome.resumed)
        .field("reason", outcome.reason);
    quarantine.raw_item(entry.str());
  }
  json::ObjectWriter writer;
  writer.field("degraded", report.degraded)
      .field("tasks", report.tasks.size())
      .field("completed", report.completed)
      .field("resumed", report.resumed)
      .field("quarantined", report.quarantined)
      .field("not_admitted", report.not_admitted)
      .field("virtual_ms", static_cast<std::size_t>(report.virtual_ms_total))
      .raw_field("quarantine", quarantine.str());
  return writer.str();
}

std::string supervisor_markdown(const SupervisorReport& report) {
  std::string out = "## Supervisor\n\n";
  out += "- degraded: ";
  out += report.degraded ? "**yes** (budget exhausted before full coverage)" : "no";
  out += "\n";
  out += "- coverage: " + std::to_string(report.completed) + "/" +
         std::to_string(report.tasks.size()) + " tasks completed";
  if (report.resumed != 0) {
    out += " (" + std::to_string(report.resumed) + " resumed from the journal)";
  }
  out += "\n";
  out += "- quarantined: " + std::to_string(report.quarantined) + "\n";
  out += "- not admitted: " + std::to_string(report.not_admitted) + "\n";
  out += "- virtual time: " + std::to_string(report.virtual_ms_total) + " ms\n";
  bool header_written = false;
  for (const TaskOutcome& outcome : report.tasks) {
    if (outcome.state != TaskState::kQuarantined) continue;
    if (!header_written) {
      out += "\n### Quarantine\n\n";
      out += "| task | attempts | timed out | reason |\n";
      out += "|------|----------|-----------|--------|\n";
      header_written = true;
    }
    out += "| " + outcome.id + " | " + std::to_string(outcome.attempts) + " | " +
           (outcome.timed_out ? "yes" : "no") + " | " + outcome.reason + " |\n";
  }
  return out;
}

}  // namespace wsx::resilience
