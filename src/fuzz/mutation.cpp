#include "fuzz/mutation.hpp"

#include <functional>

#include "common/strings.hpp"
#include "xml/parser.hpp"
#include "xml/query.hpp"
#include "xml/writer.hpp"

namespace wsx::fuzz {

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kRemoveOperations:
      return "remove-operations";
    case MutationKind::kDropTargetNamespace:
      return "drop-target-namespace";
    case MutationKind::kDropMessage:
      return "drop-message";
    case MutationKind::kRenameWrapperElement:
      return "rename-wrapper-element";
    case MutationKind::kDropBindingOperation:
      return "drop-binding-operation";
    case MutationKind::kDropSoapAction:
      return "drop-soap-action";
    case MutationKind::kSwitchToEncoded:
      return "switch-to-encoded";
    case MutationKind::kUndeclarePrefix:
      return "undeclare-prefix";
    case MutationKind::kDuplicateOperation:
      return "duplicate-operation";
    case MutationKind::kInjectForeignElement:
      return "inject-foreign-element";
    case MutationKind::kRelativeAddress:
      return "relative-address";
    case MutationKind::kLocationlessImport:
      return "locationless-import";
    case MutationKind::kCorruptEntity:
      return "corrupt-entity";
    case MutationKind::kMismatchedTag:
      return "mismatched-tag";
    case MutationKind::kTruncate:
      return "truncate";
    case MutationKind::kDuplicateAttribute:
      return "duplicate-attribute";
  }
  return "unknown";
}

std::vector<MutationKind> all_mutation_kinds() {
  return {
      MutationKind::kRemoveOperations,    MutationKind::kDropTargetNamespace,
      MutationKind::kDropMessage,         MutationKind::kRenameWrapperElement,
      MutationKind::kDropBindingOperation, MutationKind::kDropSoapAction,
      MutationKind::kSwitchToEncoded,     MutationKind::kUndeclarePrefix,
      MutationKind::kDuplicateOperation,  MutationKind::kInjectForeignElement,
      MutationKind::kRelativeAddress,     MutationKind::kLocationlessImport,
      MutationKind::kCorruptEntity,       MutationKind::kMismatchedTag,
      MutationKind::kTruncate,            MutationKind::kDuplicateAttribute,
  };
}

bool is_well_formed_kind(MutationKind kind) {
  switch (kind) {
    case MutationKind::kCorruptEntity:
    case MutationKind::kMismatchedTag:
    case MutationKind::kTruncate:
    case MutationKind::kDuplicateAttribute:
      return false;
    default:
      return true;
  }
}

namespace {

using xml::find_descendant;

/// Structure-level mutations operate on the parsed tree.
std::optional<std::string> mutate_tree(const std::string& wsdl_text, MutationKind kind,
                                       std::string& description) {
  Result<xml::Element> parsed = xml::parse_element(wsdl_text);
  if (!parsed.ok()) return std::nullopt;
  xml::Element root = std::move(parsed.value());

  switch (kind) {
    case MutationKind::kRemoveOperations: {
      xml::Element* port_type =
          find_descendant(root, [](const xml::Element& e) { return e.local_name() == "portType"; });
      if (port_type == nullptr) return std::nullopt;
      bool removed = false;
      while (port_type->remove_child("operation")) removed = true;
      if (!removed) return std::nullopt;
      description = "removed every operation from portType '" +
                    port_type->attribute("name").value_or("?") + "'";
      break;
    }
    case MutationKind::kDropTargetNamespace: {
      if (!root.remove_attribute("targetNamespace")) return std::nullopt;
      description = "removed targetNamespace from wsdl:definitions";
      break;
    }
    case MutationKind::kDropMessage: {
      if (!root.remove_child("message")) return std::nullopt;
      description = "removed the first wsdl:message";
      break;
    }
    case MutationKind::kRenameWrapperElement: {
      xml::Element* wrapper = find_descendant(root, [](const xml::Element& e) {
        return e.local_name() == "element" && e.attribute("name").has_value() &&
               e.attribute("name") == "echo";
      });
      if (wrapper == nullptr) return std::nullopt;
      wrapper->set_attribute("name", "echoRenamed");
      description = "renamed the request wrapper element; the message part dangles";
      break;
    }
    case MutationKind::kDropBindingOperation: {
      xml::Element* binding =
          find_descendant(root, [](const xml::Element& e) { return e.local_name() == "binding"; });
      if (binding == nullptr || !binding->remove_child("operation")) return std::nullopt;
      description = "removed the binding's operation; the portType is uncovered";
      break;
    }
    case MutationKind::kDropSoapAction: {
      xml::Element* soap_operation = find_descendant(root, [](const xml::Element& e) {
        return e.local_name() == "operation" && e.has_attribute("soapAction");
      });
      if (soap_operation == nullptr) return std::nullopt;
      soap_operation->remove_attribute("soapAction");
      description = "removed soapAction from soap:operation";
      break;
    }
    case MutationKind::kSwitchToEncoded: {
      xml::Element* body = find_descendant(root, [](const xml::Element& e) {
        return e.local_name() == "body" && e.attribute("use") == "literal";
      });
      if (body == nullptr) return std::nullopt;
      body->set_attribute("use", "encoded");
      description = "switched soap:body use to 'encoded'";
      break;
    }
    case MutationKind::kUndeclarePrefix: {
      if (!root.remove_attribute("xmlns:tns")) return std::nullopt;
      description = "removed the xmlns:tns declaration; tns-qualified QNames dangle";
      break;
    }
    case MutationKind::kDuplicateOperation: {
      xml::Element* port_type =
          find_descendant(root, [](const xml::Element& e) { return e.local_name() == "portType"; });
      if (port_type == nullptr) return std::nullopt;
      const xml::Element* operation = port_type->child("operation");
      if (operation == nullptr) return std::nullopt;
      port_type->add_child(*operation);
      description = "duplicated a portType operation (overloading, BP-prohibited)";
      break;
    }
    case MutationKind::kInjectForeignElement: {
      xml::Element foreign{"fz:fuzzer"};
      foreign.declare_namespace("fz", "urn:wsx:fuzzer");
      foreign.set_attribute("marker", "injected");
      root.add_child(std::move(foreign));
      description = "injected an unknown vendor extension element";
      break;
    }
    case MutationKind::kRelativeAddress: {
      xml::Element* address =
          find_descendant(root, [](const xml::Element& e) { return e.local_name() == "address"; });
      if (address == nullptr) return std::nullopt;
      address->set_attribute("location", "/relative/endpoint");
      description = "made the soap:address location relative";
      break;
    }
    case MutationKind::kLocationlessImport: {
      // Insert a wsdl:import without a location as the first child — the
      // consumer cannot fetch the promised document.
      xml::Element import{root.prefix().empty() ? std::string{"import"}
                                                : root.prefix() + ":import"};
      import.set_attribute("namespace", "urn:wsx:imported");
      root.prepend_child(std::move(import));
      description = "injected a wsdl:import without a location";
      break;
    }
    default:
      return std::nullopt;
  }
  return xml::write(root);
}

/// Text-level mutations deliberately break well-formedness.
std::optional<std::string> mutate_text(const std::string& wsdl_text, MutationKind kind,
                                       std::string& description) {
  switch (kind) {
    case MutationKind::kCorruptEntity: {
      const std::size_t pos = wsdl_text.find("targetNamespace=\"");
      if (pos == std::string::npos) return std::nullopt;
      std::string mutated = wsdl_text;
      mutated.insert(pos + 17, "&undefined;");
      description = "injected an undefined entity reference into an attribute";
      return mutated;
    }
    case MutationKind::kMismatchedTag: {
      const std::size_t pos = wsdl_text.rfind("</");
      if (pos == std::string::npos) return std::nullopt;
      std::string mutated = wsdl_text;
      mutated.insert(pos + 2, "broken-");
      description = "broke the final end tag";
      return mutated;
    }
    case MutationKind::kTruncate: {
      if (wsdl_text.size() < 64) return std::nullopt;
      description = "truncated the document at 60% of its length";
      return wsdl_text.substr(0, wsdl_text.size() * 6 / 10);
    }
    case MutationKind::kDuplicateAttribute: {
      const std::size_t pos = wsdl_text.find("targetNamespace=");
      if (pos == std::string::npos) return std::nullopt;
      const std::size_t end = wsdl_text.find('"', wsdl_text.find('"', pos) + 1);
      if (end == std::string::npos) return std::nullopt;
      std::string mutated = wsdl_text;
      const std::string attribute = wsdl_text.substr(pos, end + 1 - pos);
      mutated.insert(end + 1, " " + attribute);
      description = "duplicated the targetNamespace attribute";
      return mutated;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Mutant> mutate(const std::string& wsdl_text, MutationKind kind) {
  std::string description;
  std::optional<std::string> mutated =
      is_well_formed_kind(kind) ? mutate_tree(wsdl_text, kind, description)
                                : mutate_text(wsdl_text, kind, description);
  if (!mutated) return std::nullopt;
  return Mutant{kind, std::move(description), std::move(*mutated)};
}

std::vector<Mutant> mutate_all(const std::string& wsdl_text) {
  std::vector<Mutant> mutants;
  for (MutationKind kind : all_mutation_kinds()) {
    if (std::optional<Mutant> mutant = mutate(wsdl_text, kind)) {
      mutants.push_back(std::move(*mutant));
    }
  }
  return mutants;
}

std::optional<Mutant> mutate_chain(const std::string& wsdl_text,
                                   const std::vector<MutationKind>& kinds) {
  if (kinds.empty()) return std::nullopt;
  std::string current = wsdl_text;
  std::string description;
  for (MutationKind kind : kinds) {
    std::optional<Mutant> step = mutate(current, kind);
    if (!step) return std::nullopt;
    current = std::move(step->wsdl_text);
    if (!description.empty()) description += "; then ";
    description += step->description;
  }
  return Mutant{kinds.back(), std::move(description), std::move(current)};
}

}  // namespace wsx::fuzz
