// mutation.hpp — systematic WSDL mutation operators.
//
// The study injects faults implicitly (native types whose serialization
// produces broken descriptions); this module makes the injection explicit:
// a deterministic mutator that derives semantically or syntactically broken
// descriptions from a valid one. Running all client tools over the mutant
// corpus measures each tool's *robustness*: a sound tool rejects a broken
// description with a clean diagnostic; silent acceptance propagates the
// defect downstream — exactly the failure pattern §IV.B.1 criticizes.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace wsx::fuzz {

enum class MutationKind {
  // Structure-level (the mutant is well-formed XML, semantically broken).
  kRemoveOperations,      ///< strip every portType operation (unusable WSDL)
  kDropTargetNamespace,   ///< definitions loses its targetNamespace
  kDropMessage,           ///< delete a wsdl:message; operations dangle
  kRenameWrapperElement,  ///< rename a top-level schema element; parts dangle
  kDropBindingOperation,  ///< binding no longer covers the portType
  kDropSoapAction,        ///< soap:operation loses soapAction
  kSwitchToEncoded,       ///< use="literal" becomes use="encoded"
  kUndeclarePrefix,       ///< remove the tns declaration; QNames dangle
  kDuplicateOperation,    ///< duplicate an operation name (overloading)
  kInjectForeignElement,  ///< unknown vendor extension under definitions
  kRelativeAddress,       ///< soap:address loses its absolute URI
  kLocationlessImport,    ///< wsdl:import without a location (unfetchable)
  // Text-level (the mutant may not even be well-formed XML).
  kCorruptEntity,         ///< inject an undefined entity reference
  kMismatchedTag,         ///< break one end tag
  kTruncate,              ///< cut the document mid-element
  kDuplicateAttribute,    ///< repeat an attribute on the root element
};
inline constexpr std::size_t kMutationKindCount = 16;

const char* to_string(MutationKind kind);

/// All kinds, in declaration order.
std::vector<MutationKind> all_mutation_kinds();

/// True for mutants that remain well-formed XML (the structure-level ones).
bool is_well_formed_kind(MutationKind kind);

struct Mutant {
  MutationKind kind;
  std::string description;  ///< what was mutated, human-readable
  std::string wsdl_text;    ///< the mutated document
};

/// Applies `kind` to a served description. Returns nullopt when the
/// mutation is not applicable (e.g. no message to drop). Deterministic:
/// the same input yields the same mutant.
std::optional<Mutant> mutate(const std::string& wsdl_text, MutationKind kind);

/// Applies every applicable mutation kind once.
std::vector<Mutant> mutate_all(const std::string& wsdl_text);

/// Applies a chain of mutations in order (higher-order mutants). Returns
/// nullopt when any link of the chain is inapplicable to the intermediate
/// document.
std::optional<Mutant> mutate_chain(const std::string& wsdl_text,
                                   const std::vector<MutationKind>& kinds);

}  // namespace wsx::fuzz
