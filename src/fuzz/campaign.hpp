// campaign.hpp — the WSDL robustness campaign: every client tool against
// every mutant of a corpus of served descriptions.
//
// Classification philosophy (extends the paper's §IV.B.1 criticism of
// silently-accepting tools): for a *semantically broken* description the
// sound reactions are a clean rejection or at least a warning; silent
// success propagates the defect to later steps. For a *malformed* document
// (text-level mutants) anything but rejection is a robustness bug. The
// campaign also runs the WS-I checker over every well-formed mutant, which
// measures how much of the mutation space the Basic Profile can catch at
// the description step — the paper's deploy-time-gate argument,
// quantified over injected faults instead of natural ones.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fuzz/mutation.hpp"

namespace wsx::fuzz {

enum class Reaction {
  kRejected,       ///< generation error — the sound reaction to broken input
  kWarned,         ///< artifacts produced, but the tool flagged the issue
  kSilentSuccess,  ///< artifacts produced without any diagnostic
};
inline constexpr std::size_t kReactionCount = 3;

const char* to_string(Reaction reaction);

/// Reactions of one client tool, per mutation kind, across the corpus.
struct ToolRobustness {
  std::string client;
  /// [mutation kind][reaction] → count of corpus documents.
  std::array<std::array<std::size_t, kReactionCount>, kMutationKindCount> counts{};

  std::size_t count(MutationKind kind, Reaction reaction) const {
    return counts[static_cast<std::size_t>(kind)][static_cast<std::size_t>(reaction)];
  }
  std::size_t total(Reaction reaction) const;
  /// Silent successes on semantically broken, well-formed mutants — the
  /// §IV.B.1 failure pattern.
  std::size_t silent_on_broken() const;
};

struct FuzzReport {
  std::size_t corpus_size = 0;   ///< base descriptions mutated
  std::size_t mutant_count = 0;  ///< total mutants generated
  std::vector<ToolRobustness> tools;
  /// Per mutation kind: number of well-formed mutants the WS-I checker
  /// flags (fails or warns on).
  std::array<std::size_t, kMutationKindCount> wsi_detected{};
  std::array<std::size_t, kMutationKindCount> mutants_per_kind{};
};

struct FuzzConfig {
  /// Base descriptions drawn per server (plain deployable services).
  std::size_t corpus_per_server = 3;
};

/// Runs the robustness campaign over all three servers' descriptions and
/// all eleven client tools.
FuzzReport run_fuzz_campaign(const FuzzConfig& config = {});

/// Renders the robustness matrix and the WS-I detection column.
std::string format_fuzz(const FuzzReport& report);

/// Machine-readable form: client,mutation,rejected,warned,silent.
std::string fuzz_csv(const FuzzReport& report);

}  // namespace wsx::fuzz
