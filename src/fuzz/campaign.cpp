#include "fuzz/campaign.hpp"

#include <iomanip>
#include <sstream>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

namespace wsx::fuzz {

const char* to_string(Reaction reaction) {
  switch (reaction) {
    case Reaction::kRejected:
      return "rejected";
    case Reaction::kWarned:
      return "warned";
    case Reaction::kSilentSuccess:
      return "silent";
  }
  return "unknown";
}

std::size_t ToolRobustness::total(Reaction reaction) const {
  std::size_t total = 0;
  for (const auto& per_kind : counts) total += per_kind[static_cast<std::size_t>(reaction)];
  return total;
}

std::size_t ToolRobustness::silent_on_broken() const {
  std::size_t total = 0;
  for (MutationKind kind : all_mutation_kinds()) {
    if (!is_well_formed_kind(kind)) continue;
    // Benign-by-construction kinds don't count as "broken".
    if (kind == MutationKind::kInjectForeignElement) continue;
    total += count(kind, Reaction::kSilentSuccess);
  }
  return total;
}

namespace {

/// Picks `count` plain deployable descriptions from one server.
std::vector<std::string> pick_corpus(const frameworks::ServerFramework& server,
                                     const catalog::TypeCatalog& catalog,
                                     std::size_t count) {
  std::vector<std::string> corpus;
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (corpus.size() >= count) break;
    const std::uint64_t plain_mask = static_cast<std::uint64_t>(catalog::Trait::kDefaultCtor) |
                                     static_cast<std::uint64_t>(catalog::Trait::kSerializable);
    if (type.traits != plain_mask || !server.can_deploy(type)) continue;
    Result<frameworks::DeployedService> service =
        server.deploy(frameworks::ServiceSpec{&type});
    if (service.ok()) corpus.push_back(std::move(service->wsdl_text));
  }
  return corpus;
}

Reaction classify(const frameworks::GenerationResult& result) {
  if (result.diagnostics.has_errors()) return Reaction::kRejected;
  if (result.diagnostics.has_warnings()) return Reaction::kWarned;
  return Reaction::kSilentSuccess;
}

}  // namespace

FuzzReport run_fuzz_campaign(const FuzzConfig& config) {
  FuzzReport report;
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog();
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog();

  report.tools.resize(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    report.tools[i].client = clients[i]->name();
  }

  for (const auto& server : servers) {
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    for (const std::string& base : pick_corpus(*server, catalog, config.corpus_per_server)) {
      ++report.corpus_size;
      for (const Mutant& mutant : mutate_all(base)) {
        ++report.mutant_count;
        const std::size_t kind_index = static_cast<std::size_t>(mutant.kind);
        ++report.mutants_per_kind[kind_index];

        // WS-I detection over well-formed mutants.
        if (is_well_formed_kind(mutant.kind)) {
          Result<wsdl::Definitions> parsed = wsdl::parse(mutant.wsdl_text);
          if (parsed.ok()) {
            const wsi::ComplianceReport compliance = wsi::check(*parsed);
            if (!compliance.compliant() || !compliance.warnings().empty()) {
              ++report.wsi_detected[kind_index];
            }
          } else {
            ++report.wsi_detected[kind_index];  // does not even parse
          }
        }

        for (std::size_t i = 0; i < clients.size(); ++i) {
          const Reaction reaction = classify(clients[i]->generate(mutant.wsdl_text));
          ++report.tools[i].counts[kind_index][static_cast<std::size_t>(reaction)];
        }
      }
    }
  }
  return report;
}

std::string format_fuzz(const FuzzReport& report) {
  std::ostringstream out;
  out << "WSDL robustness fuzzing — " << report.corpus_size << " base descriptions, "
      << report.mutant_count << " mutants, " << report.tools.size() << " client tools\n\n";

  out << "Per-mutation detection (tools rejecting or warning, and WS-I coverage):\n";
  out << "  " << std::left << std::setw(26) << "mutation" << std::right << std::setw(9)
      << "mutants" << std::setw(12) << "rejecting" << std::setw(10) << "warning"
      << std::setw(9) << "silent" << std::setw(13) << "WS-I flags" << "\n";
  for (MutationKind kind : all_mutation_kinds()) {
    const std::size_t kind_index = static_cast<std::size_t>(kind);
    if (report.mutants_per_kind[kind_index] == 0) continue;
    std::size_t rejecting = 0;
    std::size_t warning = 0;
    std::size_t silent = 0;
    for (const ToolRobustness& tool : report.tools) {
      rejecting += tool.count(kind, Reaction::kRejected);
      warning += tool.count(kind, Reaction::kWarned);
      silent += tool.count(kind, Reaction::kSilentSuccess);
    }
    out << "  " << std::left << std::setw(26) << to_string(kind) << std::right << std::setw(9)
        << report.mutants_per_kind[kind_index] << std::setw(12) << rejecting << std::setw(10)
        << warning << std::setw(9) << silent << std::setw(9)
        << (is_well_formed_kind(kind)
                ? std::to_string(report.wsi_detected[kind_index]) + "/" +
                      std::to_string(report.mutants_per_kind[kind_index])
                : std::string("n/a"))
        << "\n";
  }

  out << "\nPer-tool robustness (all mutants):\n";
  out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(10)
      << "rejected" << std::setw(9) << "warned" << std::setw(9) << "silent" << std::setw(18)
      << "silent-on-broken" << "\n";
  for (const ToolRobustness& tool : report.tools) {
    out << "  " << std::left << std::setw(44) << tool.client << std::right << std::setw(10)
        << tool.total(Reaction::kRejected) << std::setw(9) << tool.total(Reaction::kWarned)
        << std::setw(9) << tool.total(Reaction::kSilentSuccess) << std::setw(18)
        << tool.silent_on_broken() << "\n";
  }
  return out.str();
}

std::string fuzz_csv(const FuzzReport& report) {
  std::ostringstream out;
  out << "client,mutation,rejected,warned,silent\n";
  for (const ToolRobustness& tool : report.tools) {
    for (MutationKind kind : all_mutation_kinds()) {
      if (report.mutants_per_kind[static_cast<std::size_t>(kind)] == 0) continue;
      out << tool.client << ',' << to_string(kind) << ','
          << tool.count(kind, Reaction::kRejected) << ',' << tool.count(kind, Reaction::kWarned)
          << ',' << tool.count(kind, Reaction::kSilentSuccess) << '\n';
    }
  }
  return out.str();
}

}  // namespace wsx::fuzz
