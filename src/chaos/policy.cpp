#include "chaos/policy.hpp"

#include <algorithm>
#include <sstream>

#include "chaos/fault.hpp"
#include "common/strings.hpp"

namespace wsx::chaos {

bool ResiliencePolicy::retries_on_status(int status) const {
  return std::find(retry_on_status.begin(), retry_on_status.end(), status) !=
         retry_on_status.end();
}

std::uint64_t ResiliencePolicy::backoff_before(unsigned retry_number,
                                               std::uint64_t salt) const {
  if (base_backoff_ms == 0 && jitter_ms == 0) return 0;
  std::uint64_t delay = base_backoff_ms;
  for (unsigned i = 0; i < retry_number && delay < max_backoff_ms; ++i) delay *= 2;
  if (max_backoff_ms != 0) delay = std::min(delay, max_backoff_ms);
  if (jitter_ms != 0) {
    // Deterministic jitter: same call, same retry, same delay — always.
    delay += chaos_mix(salt + retry_number) % (jitter_ms + 1);
  }
  return delay;
}

namespace {

struct NamedPolicy {
  std::string_view prefix;
  ResiliencePolicy policy;
};

/// The calibration table. Values model each stack's documented or commonly
/// observed transport behaviour, scaled onto the virtual clock:
///  * Metro/JAX-WS retransmits a couple of times with modest backoff and
///    will blindly retransmit after a lost response.
///  * Axis1 rides commons-httpclient's default retry handler: up to three
///    retransmits on connection-level failures, no backoff, nothing else.
///  * Axis2 retries once on connection trouble.
///  * CXF retries with exponential backoff and honours 502/503, but gates
///    retransmits on idempotency — a lost response makes it fail fast.
///  * JBossWS (CXF-based) retries once on resets only.
///  * The .NET stacks retry aggressively on 503 and resets with real
///    backoff, but refuse to retransmit once the server may have executed.
///  * gSOAP aborts the call on the first wire fault of any kind.
///  * Zend gives up immediately on anything (no retry machinery at all).
///  * suds has no retries and a read timeout as long as its whole budget:
///    a lost response means it simply hangs until the budget is gone.
std::vector<NamedPolicy> policy_table() {
  std::vector<NamedPolicy> table;

  ResiliencePolicy metro;
  metro.max_retries = 2;
  metro.base_backoff_ms = 100;
  metro.max_backoff_ms = 2000;
  metro.jitter_ms = 50;
  metro.attempt_timeout_ms = 3000;
  metro.call_budget_ms = 15000;
  metro.retry_on_reset = true;
  metro.retry_on_timeout = true;
  metro.retry_on_status = {503};
  metro.downgrade_on_version_mismatch = true;
  table.push_back({"Oracle Metro", metro});

  ResiliencePolicy axis1;
  axis1.max_retries = 3;
  axis1.attempt_timeout_ms = 3000;
  axis1.call_budget_ms = 15000;
  axis1.retry_on_reset = true;
  table.push_back({"Apache Axis1", axis1});

  ResiliencePolicy axis2;
  axis2.max_retries = 1;
  axis2.attempt_timeout_ms = 3000;
  axis2.call_budget_ms = 8000;
  axis2.retry_on_reset = true;
  axis2.retry_on_timeout = true;
  axis2.downgrade_on_version_mismatch = true;
  table.push_back({"Apache Axis2", axis2});

  ResiliencePolicy cxf;
  cxf.max_retries = 2;
  cxf.base_backoff_ms = 50;
  cxf.max_backoff_ms = 1000;
  cxf.attempt_timeout_ms = 3000;
  cxf.call_budget_ms = 12000;
  cxf.retry_on_reset = true;
  cxf.retry_on_timeout = true;
  cxf.retry_on_malformed_response = true;
  cxf.retry_on_status = {502, 503};
  cxf.retransmit_after_server_execution = false;  // idempotency gate
  cxf.downgrade_on_version_mismatch = true;
  table.push_back({"Apache CXF", cxf});

  ResiliencePolicy jbossws;
  jbossws.max_retries = 1;
  jbossws.attempt_timeout_ms = 2000;
  jbossws.call_budget_ms = 8000;
  jbossws.retry_on_reset = true;
  table.push_back({"JBossWS", jbossws});

  ResiliencePolicy dotnet;
  dotnet.max_retries = 3;
  dotnet.base_backoff_ms = 200;
  dotnet.max_backoff_ms = 4000;
  dotnet.jitter_ms = 100;
  dotnet.attempt_timeout_ms = 3000;
  dotnet.call_budget_ms = 20000;
  dotnet.retry_on_reset = true;
  dotnet.retry_on_status = {503};
  dotnet.retransmit_after_server_execution = false;  // idempotency gate
  dotnet.downgrade_on_version_mismatch = true;
  table.push_back({".NET Framework", dotnet});

  ResiliencePolicy gsoap;
  gsoap.attempt_timeout_ms = 3000;
  gsoap.call_budget_ms = 6000;
  gsoap.abort_on_first_wire_fault = true;
  table.push_back({"gSOAP", gsoap});

  ResiliencePolicy zend;
  zend.attempt_timeout_ms = 2000;
  zend.call_budget_ms = 4000;
  table.push_back({"Zend", zend});

  ResiliencePolicy suds;
  suds.attempt_timeout_ms = 30000;
  suds.call_budget_ms = 30000;
  table.push_back({"suds", suds});

  return table;
}

}  // namespace

ResiliencePolicy policy_for(std::string_view client_name) {
  for (const NamedPolicy& entry : policy_table()) {
    if (starts_with(client_name, entry.prefix)) return entry.policy;
  }
  return {};  // conservative default: no retries, fail on first fault class
}

std::string format_policy_table() {
  std::ostringstream out;
  out << "| client family | retries | backoff (base/max+jitter ms) | attempt timeout | "
         "budget | retries on | idempotency gate | aborts on first fault | downgrades |\n";
  out << "|---|---|---|---|---|---|---|---|---|\n";
  for (const NamedPolicy& entry : policy_table()) {
    const ResiliencePolicy& p = entry.policy;
    out << "| " << entry.prefix << " | " << p.max_retries << " | " << p.base_backoff_ms
        << "/" << p.max_backoff_ms << "+" << p.jitter_ms << " | " << p.attempt_timeout_ms
        << " | " << p.call_budget_ms << " | ";
    std::vector<std::string> retries;
    if (p.retry_on_reset) retries.push_back("reset");
    if (p.retry_on_timeout) retries.push_back("timeout");
    if (p.retry_on_malformed_response) retries.push_back("malformed");
    for (const int status : p.retry_on_status) retries.push_back(std::to_string(status));
    out << (retries.empty() ? "—" : join(retries, "+")) << " | "
        << (p.retransmit_after_server_execution ? "off" : "on") << " | "
        << (p.abort_on_first_wire_fault ? "yes" : "no") << " | "
        << (p.downgrade_on_version_mismatch ? "yes" : "no") << " |\n";
  }
  return out.str();
}

CircuitBreaker::State CircuitBreaker::state(std::uint64_t now_ms) const {
  if (!open_) return State::kClosed;
  return now_ms >= opened_at_ms_ + settings_.open_ms ? State::kHalfOpen : State::kOpen;
}

bool CircuitBreaker::allows(std::uint64_t now_ms) const {
  return state(now_ms) != State::kOpen;
}

void CircuitBreaker::record_success(std::uint64_t now_ms) {
  (void)now_ms;
  open_ = false;
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure(std::uint64_t now_ms) {
  if (open_) {
    if (state(now_ms) == State::kHalfOpen) {
      // The half-open probe failed: re-open for another cooldown.
      opened_at_ms_ = now_ms;
      ++trips_;
    }
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= settings_.failure_threshold) {
    open_ = true;
    opened_at_ms_ = now_ms;
    ++trips_;
  }
}

void CircuitBreaker::export_state(obs::Registry& registry, std::string_view prefix,
                                  std::uint64_t now_ms) const {
  const std::string base(prefix);
  registry.gauge(base + ".state").set(static_cast<std::int64_t>(state(now_ms)));
  registry.gauge(base + ".trips").set(static_cast<std::int64_t>(trips_));
  registry.gauge(base + ".consecutive_failures")
      .set(static_cast<std::int64_t>(consecutive_failures_));
}

}  // namespace wsx::chaos
