// supervised.hpp — the chaos campaign re-driven under the resilience
// supervisor (src/resilience/supervisor.hpp).
//
// Task granularity is one deployed service per server; one task runs every
// client's chain against that endpoint and charges each chain's virtual
// milliseconds against the supervisor's per-task deadline. A deadline- or
// crash-quarantined service is not silently dropped: when the quarantine
// was caused by the deadline, every client cell of that service is folded
// as the kTimedOut chaos outcome (calls_per_pair calls each), so the
// resilience matrix still accounts for the full call population.
#pragma once

#include <string>
#include <string_view>

#include "chaos/campaign.hpp"
#include "common/result.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::chaos {

/// Supervisor knobs for the chaos verb (mirrors interop::SupervisedOptions;
/// jobs lives in ChaosConfig::jobs).
struct SupervisedChaosOptions {
  resilience::JournalOptions journal;
  std::string checkpoint_path;
  const resilience::Journal* resume = nullptr;
  std::size_t trip_after_tasks = 0;
};

/// Canonical config fingerprint for the chaos campaign, and its inverse
/// (used by `wsinterop resume`). Round-trips byte-identically through
/// json::parse + to_text; jobs/sinks are deliberately excluded.
std::string chaos_config_json(const ChaosConfig& config);
Result<ChaosConfig> chaos_config_from_json(std::string_view text);

struct SupervisedChaosResult {
  ChaosResult chaos;
  resilience::SupervisorReport supervisor;
};

/// Runs the chaos campaign under supervision.
Result<SupervisedChaosResult> run_chaos_supervised(const ChaosConfig& config,
                                                   const SupervisedChaosOptions& options);

}  // namespace wsx::chaos
