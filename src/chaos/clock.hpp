// clock.hpp — the virtual clock chaos runs on.
//
// All latencies, timeouts, backoff delays and circuit-breaker cooldowns in
// wsx::chaos are expressed in *virtual* milliseconds on this clock, never
// in wall time. A call chain owns its clock and advances it explicitly, so
// a chaos run is bit-for-bit reproducible at any worker count: no attempt
// ever observes real time, and parallel slices cannot race on a shared
// timeline.
#pragma once

#include <cstdint>

namespace wsx::chaos {

class VirtualClock {
 public:
  std::uint64_t now_ms() const { return now_ms_; }
  void advance(std::uint64_t ms) { now_ms_ += ms; }

 private:
  std::uint64_t now_ms_ = 0;
};

}  // namespace wsx::chaos
