// policy.hpp — per-client resilience policies and the endpoint circuit
// breaker.
//
// Each of the eleven client runtime models gets a calibrated
// ResiliencePolicy describing how the real stack behaves when the wire
// misbehaves: how often it retransmits, what it considers retryable, how it
// backs off, how long it waits, and whether it dares to retransmit a call
// the server may already have executed. The differences are the point —
// the chaos study measures how far each stack's policy carries it through
// the same fault plan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace wsx::chaos {

struct ResiliencePolicy {
  /// Retransmits allowed after the initial attempt.
  unsigned max_retries = 0;
  /// Exponential backoff: min(base * 2^k, max) + deterministic jitter in
  /// [0, jitter_ms] before retransmit number k. All virtual milliseconds.
  std::uint64_t base_backoff_ms = 0;
  std::uint64_t max_backoff_ms = 0;
  std::uint64_t jitter_ms = 0;
  /// How long one attempt may wait for a response.
  std::uint64_t attempt_timeout_ms = 3000;
  /// Total virtual-time budget of one logical call, waits and backoffs
  /// included. A call still waiting when the budget runs out has hung.
  std::uint64_t call_budget_ms = 10000;

  // What the stack considers worth retransmitting.
  bool retry_on_reset = false;
  bool retry_on_timeout = false;
  bool retry_on_malformed_response = false;  ///< unparseable 200s
  std::vector<int> retry_on_status;          ///< e.g. {502, 503}

  /// Idempotency gate: when false, the stack refuses to retransmit a call
  /// the server may already have executed (response lost after delivery) —
  /// it fails fast instead of risking a duplicate effect.
  bool retransmit_after_server_execution = true;

  /// gSOAP's behaviour: the first wire fault aborts the call outright,
  /// whatever it was.
  bool abort_on_first_wire_fault = false;

  /// Downgrade recovery: on a version-mismatch rejection (VersionMismatch
  /// or MustUnderstand fault, or a 415 at the HTTP layer) the stack
  /// retransmits the 1.1-coherent form of the call exactly once. Stacks
  /// whose runtimes can re-serialize without the 1.2-era dressing (the
  /// JAX-WS family, Axis2's addressing module, CXF, WCF) do; the
  /// template-expanded and script-language stacks cannot.
  bool downgrade_on_version_mismatch = false;

  bool retries_on_status(int status) const;
  /// Backoff delay before retransmit number `retry_number` (0-based), with
  /// jitter drawn deterministically from `salt`.
  std::uint64_t backoff_before(unsigned retry_number, std::uint64_t salt) const;
};

/// The calibrated policy of one client runtime (matched by tool name, e.g.
/// "Apache Axis1 1.4"). Unknown names get a conservative no-retry policy.
ResiliencePolicy policy_for(std::string_view client_name);

/// Markdown table of every client's policy (docs and bench output).
std::string format_policy_table();

struct BreakerSettings {
  unsigned failure_threshold = 3;   ///< consecutive wire failures to open
  std::uint64_t open_ms = 5000;     ///< cooldown before the half-open probe
};

/// A per-endpoint circuit breaker shared by every call a client makes to
/// that endpoint. Closed passes calls through; `failure_threshold`
/// consecutive wire-level failures open it; after `open_ms` of virtual
/// time it goes half-open and admits a single probe, whose outcome closes
/// or re-opens it.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerSettings settings = {}) : settings_(settings) {}

  State state(std::uint64_t now_ms) const;
  /// True when a call may proceed now (closed, or the half-open probe).
  bool allows(std::uint64_t now_ms) const;
  void record_success(std::uint64_t now_ms);
  void record_failure(std::uint64_t now_ms);
  /// Times the breaker transitioned closed/half-open → open.
  std::size_t trips() const { return trips_; }

  /// Publishes the breaker's observable state into `registry` as gauges
  /// under `prefix`: "<prefix>.state" (0 closed / 1 open / 2 half-open),
  /// "<prefix>.trips" and "<prefix>.consecutive_failures". Gauges, not
  /// counters, because these are point-in-time values the caller re-exports
  /// on every stats snapshot (obs counters only accumulate).
  void export_state(obs::Registry& registry, std::string_view prefix,
                    std::uint64_t now_ms) const;

 private:
  BreakerSettings settings_;
  unsigned consecutive_failures_ = 0;
  bool open_ = false;
  std::uint64_t opened_at_ms_ = 0;
  std::size_t trips_ = 0;
};

}  // namespace wsx::chaos
