#include "chaos/campaign.hpp"

#include <iomanip>
#include <sstream>

#include "chaos/clock.hpp"
#include "chaos/wire.hpp"
#include "common/json.hpp"
#include "common/pool.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::chaos {

const char* to_string(ChaosOutcome outcome) {
  switch (outcome) {
    case ChaosOutcome::kBlockedEarlier:
      return "blocked earlier";
    case ChaosOutcome::kOk:
      return "ok";
    case ChaosOutcome::kRecovered:
      return "recovered";
    case ChaosOutcome::kDegradedOk:
      return "degraded ok";
    case ChaosOutcome::kAppFailure:
      return "app failure";
    case ChaosOutcome::kExhaustedRetries:
      return "exhausted retries";
    case ChaosOutcome::kFailedFast:
      return "failed fast";
    case ChaosOutcome::kHung:
      return "hung";
    case ChaosOutcome::kTimedOut:
      return "timed out";
    case ChaosOutcome::kVersionMismatch:
      return "version mismatch";
    case ChaosOutcome::kDowngraded:
      return "downgraded";
  }
  return "unknown";
}

std::size_t ChaosCell::attempted() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kChaosOutcomeCount; ++i) total += outcomes[i];
  return total - count(ChaosOutcome::kBlockedEarlier);
}

std::size_t ChaosCell::succeeded() const {
  return count(ChaosOutcome::kOk) + count(ChaosOutcome::kRecovered) +
         count(ChaosOutcome::kDegradedOk) + count(ChaosOutcome::kDowngraded);
}

double ChaosCell::recovery_rate() const {
  if (challenged == 0) return 0.0;
  return 100.0 * static_cast<double>(challenged_ok) / static_cast<double>(challenged);
}

std::size_t ChaosResult::total(ChaosOutcome outcome) const {
  std::size_t total = 0;
  for (const ChaosServerResult& server : servers) {
    for (const ChaosCell& cell : server.cells) total += cell.count(outcome);
  }
  return total;
}

std::size_t ChaosResult::total_attempted() const {
  std::size_t total = 0;
  for (const ChaosServerResult& server : servers) {
    for (const ChaosCell& cell : server.cells) total += cell.attempted();
  }
  return total;
}

std::size_t ChaosResult::total_challenged() const {
  std::size_t total = 0;
  for (const ChaosServerResult& server : servers) {
    for (const ChaosCell& cell : server.cells) total += cell.challenged;
  }
  return total;
}

std::size_t ChaosResult::total_challenged_ok() const {
  std::size_t total = 0;
  for (const ChaosServerResult& server : servers) {
    for (const ChaosCell& cell : server.cells) total += cell.challenged_ok;
  }
  return total;
}

namespace {

/// Why one delivery attempt failed — decides retry eligibility.
enum class FailureClass {
  kReset,
  kConnectTimeout,
  kReadTimeout,
  kStatus,     ///< a delivered 4xx/5xx (or header-level rejection)
  kMalformed,  ///< delivered but unparseable / content mangled
};

struct CallRecord {
  ChaosOutcome outcome = ChaosOutcome::kFailedFast;
  unsigned retransmits = 0;
  unsigned faulted_attempts = 0;
};

/// One logical call under the client's resilience policy: attempts, waits,
/// backoffs, the idempotency gate and the circuit breaker — all on the
/// chain's virtual clock.
CallRecord execute_call(const FaultyWire& wire,
                        const frameworks::DeployedService& service,
                        const frameworks::PreparedCall& call,
                        const ResiliencePolicy& policy, const CallSchedule& schedule,
                        VirtualClock& clock, CircuitBreaker& breaker) {
  CallRecord record;
  const std::uint64_t deadline = clock.now_ms() + policy.call_budget_ms;
  unsigned attempt = 0;
  unsigned executions = 0;  // times the server executed this logical call
  bool downgraded = false;  // retransmitting the 1.1-coherent form

  for (;;) {
    if (!breaker.allows(clock.now_ms())) {
      // Open circuit: the stack refuses the call without touching the wire.
      record.outcome = ChaosOutcome::kFailedFast;
      return record;
    }

    const WireAttempt wire_attempt =
        wire.attempt(service, downgraded ? call.downgrade_request : call.request,
                     schedule, attempt, downgraded);
    if (wire_attempt.injected.has_value()) ++record.faulted_attempts;
    executions += wire_attempt.server_executions;

    const std::uint64_t remaining =
        deadline > clock.now_ms() ? deadline - clock.now_ms() : 0;
    const std::uint64_t wait_cap = std::min(policy.attempt_timeout_ms, remaining);

    FailureClass failure_class = FailureClass::kReset;
    int failure_status = 0;
    if (wire_attempt.latency_ms > wait_cap) {
      // The client gave up waiting on this attempt (or the response truly
      // never comes). Waiting consumed virtual time either way.
      clock.advance(wait_cap);
      if (wait_cap == remaining) {
        // The whole call budget went into waiting: the stack hung.
        breaker.record_failure(clock.now_ms());
        record.outcome = ChaosOutcome::kHung;
        return record;
      }
      failure_class = wire_attempt.status == WireAttempt::Status::kConnectTimeout
                          ? FailureClass::kConnectTimeout
                          : FailureClass::kReadTimeout;
    } else {
      clock.advance(wire_attempt.latency_ms);
      if (wire_attempt.status == WireAttempt::Status::kDelivered) {
        const frameworks::EchoClassification classified =
            frameworks::classify_echo_response(wire_attempt.response, call.payload);
        if (classified.outcome == frameworks::EchoOutcome::kOk) {
          breaker.record_success(clock.now_ms());
          record.outcome = downgraded             ? ChaosOutcome::kDowngraded
                           : executions > 1      ? ChaosOutcome::kDegradedOk
                           : record.retransmits > 0 ? ChaosOutcome::kRecovered
                                                    : ChaosOutcome::kOk;
          return record;
        }
        const bool version_rejection =
            classified.outcome == frameworks::EchoOutcome::kVersionMismatch ||
            wire_attempt.response.status == 415;
        if (version_rejection) {
          if (!downgraded && policy.downgrade_on_version_mismatch) {
            // Downgrade recovery: retransmit the 1.1-coherent form exactly
            // once. An injected skew counts against the breaker (the wire
            // really did misbehave); a clean policy mismatch does not.
            if (wire_attempt.injected.has_value()) {
              breaker.record_failure(clock.now_ms());
            }
            downgraded = true;
            ++record.retransmits;
            continue;
          }
          if (!wire_attempt.injected.has_value()) {
            // A clean attempt was rejected on version-coherence grounds and
            // the stack has no downgrade path: a pure policy mismatch. The
            // wire is innocent — the breaker stays untouched.
            record.outcome = ChaosOutcome::kVersionMismatch;
            return record;
          }
          // An injected skew the stack cannot downgrade away from: handled
          // below as an ordinary wire-level delivery failure.
        } else if (!wire_attempt.injected.has_value()) {
          // A clean attempt failed at the SOAP level: the wire is innocent
          // and no resilience policy helps. Does not trip the breaker.
          record.outcome = ChaosOutcome::kAppFailure;
          return record;
        }
        if (wire_attempt.response.is_client_error() ||
            wire_attempt.response.is_server_error()) {
          failure_class = FailureClass::kStatus;
          failure_status = wire_attempt.response.status;
        } else {
          failure_class = FailureClass::kMalformed;
        }
      } else {
        // kConnectionReset (timeouts always exceed wait_cap).
        failure_class = FailureClass::kReset;
      }
    }

    // The attempt failed for a wire-level reason.
    breaker.record_failure(clock.now_ms());
    if (policy.abort_on_first_wire_fault) {
      record.outcome = ChaosOutcome::kFailedFast;
      return record;
    }
    bool eligible = false;
    switch (failure_class) {
      case FailureClass::kReset:
        eligible = policy.retry_on_reset;
        break;
      case FailureClass::kConnectTimeout:
      case FailureClass::kReadTimeout:
        eligible = policy.retry_on_timeout;
        break;
      case FailureClass::kStatus:
        eligible = policy.retries_on_status(failure_status);
        break;
      case FailureClass::kMalformed:
        eligible = policy.retry_on_malformed_response;
        break;
    }
    if (!eligible) {
      record.outcome = ChaosOutcome::kFailedFast;
      return record;
    }
    if (executions > 0 && !policy.retransmit_after_server_execution) {
      // Idempotency gate: the server may already have executed this call;
      // a careful stack refuses the unsafe retransmit.
      record.outcome = ChaosOutcome::kFailedFast;
      return record;
    }
    if (attempt >= policy.max_retries) {
      record.outcome = ChaosOutcome::kExhaustedRetries;
      return record;
    }
    const std::uint64_t backoff = policy.backoff_before(attempt, schedule.salt());
    const std::uint64_t left = deadline - clock.now_ms();
    if (backoff >= left) {
      // The budget dies during backoff — retries are effectively exhausted.
      clock.advance(left);
      record.outcome = ChaosOutcome::kExhaustedRetries;
      return record;
    }
    clock.advance(backoff);
    ++attempt;
    ++record.retransmits;
  }
}

}  // namespace

ChainDelta run_chaos_chain(const FaultyWire& wire,
                           const frameworks::ServerFramework& server,
                           const frameworks::DeployedService& service,
                           const frameworks::SharedDescription* description,
                           const frameworks::ClientFramework& client,
                           const compilers::Compiler* compiler,
                           const ResiliencePolicy& policy, const ChaosConfig& config,
                           soap::HybridProfile profile, std::string_view round_label) {
  ChainDelta delta;
  const frameworks::PreparedCall call =
      description != nullptr
          ? frameworks::prepare_echo_call(service, *description, client, compiler, profile)
          : frameworks::prepare_echo_call(
                service, frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false),
                client, compiler, profile);
  obs::add(config.metrics,
           config.parse_cache ? "chaos.parse.cache_hits" : "chaos.parse.wsdl_parses");
  if (call.status != frameworks::PreparedCall::Status::kReady) {
    delta.outcomes[static_cast<std::size_t>(ChaosOutcome::kBlockedEarlier)] +=
        config.calls_per_pair;
    return delta;
  }
  // One chain per (client, endpoint): clock and breaker persist across the
  // pair's calls, so bursts on an early call can fail-fast later ones.
  VirtualClock clock;
  CircuitBreaker breaker(config.breaker);
  const std::string scope =
      round_label.empty() ? server.name() : std::string(round_label);
  for (std::size_t call_no = 0; call_no < config.calls_per_pair; ++call_no) {
    const std::string call_id = scope + '|' + service.spec.service_name() + '|' +
                                client.name() + '|' + std::to_string(call_no);
    const CallSchedule schedule = wire.schedule(call_id);
    const CallRecord record =
        execute_call(wire, service, call, policy, schedule, clock, breaker);
    ++delta.outcomes[static_cast<std::size_t>(record.outcome)];
    delta.retransmits += record.retransmits;
    delta.faulted_attempts += record.faulted_attempts;
    obs::add(config.metrics, "chaos.calls_total");
    obs::add(config.metrics, "chaos.retransmits", record.retransmits);
    obs::add(config.metrics, "chaos.faults_injected", record.faulted_attempts);
    if (record.faulted_attempts > 0) {
      ++delta.challenged;
      if (record.outcome == ChaosOutcome::kOk ||
          record.outcome == ChaosOutcome::kRecovered ||
          record.outcome == ChaosOutcome::kDegradedOk ||
          record.outcome == ChaosOutcome::kDowngraded) {
        ++delta.challenged_ok;
      }
    }
  }
  delta.breaker_trips = breaker.trips();
  delta.virtual_ms = clock.now_ms();
  return delta;
}

ChaosResult run_chaos_study(const ChaosConfig& config) {
  ChaosResult result;
  result.plan = config.plan;
  result.calls_per_pair = config.calls_per_pair;

  obs::Span run_span(config.tracer, "chaos");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog =
      catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  std::vector<ResiliencePolicy> policies;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
    policies.push_back(policy_for(client->name()));
  }

  // The mixed-version axis turns each server's round into one round per
  // version policy; client hybrid profiles follow their own documented
  // policies. Outside the axis everything degenerates to the classic
  // campaign (documented server policy, pure-1.1 calls, label = name).
  struct Round {
    const frameworks::ServerFramework* server;
    std::optional<frameworks::VersionPolicy> policy;
    std::string label;
  };
  std::vector<Round> rounds;
  for (const auto& server : servers) {
    if (config.versions.empty()) {
      rounds.push_back({server.get(), std::nullopt, server->name()});
      continue;
    }
    for (const frameworks::VersionPolicy policy : config.versions) {
      rounds.push_back({server.get(), policy,
                        server->name() + " [" + frameworks::to_string(policy) + "]"});
    }
  }
  std::vector<soap::HybridProfile> profiles;
  for (const auto& client : clients) {
    profiles.push_back(config.versions.empty()
                           ? soap::HybridProfile::kPure11
                           : frameworks::profile_for(client->version_policy()));
  }

  for (const Round& round : rounds) {
    const frameworks::ServerFramework* server = round.server;
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    FaultyWire wire(*server, config.plan);
    if (round.policy.has_value()) wire.set_server_policy(*round.policy);

    ChaosServerResult server_result;
    server_result.server = round.label;
    for (const auto& client : clients) {
      ChaosCell cell;
      cell.client = client->name();
      server_result.cells.push_back(std::move(cell));
    }

    // One chaos round per server: every client chain against its services.
    obs::Span round_span(config.tracer, "round:" + server_result.server, run_span);
    obs::Span deploy_span(config.tracer, "phase:deploy", round_span);
    obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "chaos.phase.deploy_us");
    std::vector<frameworks::DeployedService> deployed;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) deployed.push_back(std::move(service.value()));
    }
    server_result.services_deployed = deployed.size();
    obs::add(config.metrics, "chaos.services_deployed", deployed.size());
    deploy_span.annotate("deployed", deployed.size());
    deploy_span.end();
    deploy_timer.stop();

    // Parse-once: a shared description per service feeds every client
    // chain's generation gate below (faults are injected on the wire, not
    // on the WSDL bytes, so the parse is invariant across calls).
    std::vector<frameworks::SharedDescription> descriptions;
    if (config.parse_cache) {
      obs::Span parse_span(config.tracer, "phase:parse", round_span);
      obs::ScopedTimer parse_timer = obs::timer(config.metrics, "chaos.phase.parse_us");
      const auto build_slice = [&](std::size_t begin, std::size_t end) {
        std::vector<frameworks::SharedDescription> built;
        built.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          built.push_back(
              frameworks::SharedDescription::from_deployed(deployed[i], /*with_wsi=*/false));
        }
        return built;
      };
      descriptions.reserve(deployed.size());
      for (std::vector<frameworks::SharedDescription>& slice :
           parallel_slices(deployed.size(), config.jobs, build_slice)) {
        for (frameworks::SharedDescription& description : slice) {
          descriptions.push_back(std::move(description));
        }
      }
      obs::add(config.metrics, "chaos.parse.wsdl_parses", descriptions.size());
      parse_span.end();
      parse_timer.stop();
    }

    // Invocations parallelize over services; every chain (one client against
    // one endpoint) runs sequentially inside its slice with its own virtual
    // clock and breaker, so the result is independent of the slicing.
    obs::Span calls_span(config.tracer, "phase:calls", round_span);
    obs::ScopedTimer calls_timer = obs::timer(config.metrics, "chaos.phase.calls_us");
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
      std::vector<ChainDelta> partial(clients.size());
      for (std::size_t index = begin; index < end; ++index) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          const ChainDelta delta = run_chaos_chain(
              wire, *server, deployed[index],
              config.parse_cache ? &descriptions[index] : nullptr, *clients[i],
              client_compilers[i].get(), policies[i], config, profiles[i], round.label);
          ChainDelta& cell = partial[i];
          for (std::size_t outcome = 0; outcome < kChaosOutcomeCount; ++outcome) {
            cell.outcomes[outcome] += delta.outcomes[outcome];
          }
          cell.retransmits += delta.retransmits;
          cell.faulted_attempts += delta.faulted_attempts;
          cell.challenged += delta.challenged;
          cell.challenged_ok += delta.challenged_ok;
          cell.breaker_trips += delta.breaker_trips;
          cell.virtual_ms += delta.virtual_ms;
        }
      }
      return partial;
    };
    PoolStats pool_stats;
    const std::vector<std::vector<ChainDelta>> partials =
        parallel_slices(deployed.size(), config.jobs, run_slice, &pool_stats);
    if (config.metrics != nullptr) {
      config.metrics->gauge("chaos.pool.workers").set_max(
          static_cast<std::int64_t>(pool_stats.workers));
      config.metrics->gauge("chaos.pool.max_queue_depth").set_max(
          static_cast<std::int64_t>(pool_stats.max_queue_depth));
    }
    for (const std::vector<ChainDelta>& partial : partials) {
      for (std::size_t i = 0; i < clients.size(); ++i) {
        ChaosCell& cell = server_result.cells[i];
        for (std::size_t outcome = 0; outcome < kChaosOutcomeCount; ++outcome) {
          cell.outcomes[outcome] += partial[i].outcomes[outcome];
        }
        cell.retransmits += partial[i].retransmits;
        cell.faulted_attempts += partial[i].faulted_attempts;
        cell.challenged += partial[i].challenged;
        cell.challenged_ok += partial[i].challenged_ok;
        cell.breaker_trips += partial[i].breaker_trips;
        cell.virtual_ms += partial[i].virtual_ms;
      }
    }
    for (const ChaosCell& cell : server_result.cells) {
      obs::add(config.metrics, "chaos.breaker_trips", cell.breaker_trips);
      obs::add(config.metrics, "chaos.challenged", cell.challenged);
      obs::add(config.metrics, "chaos.challenged_ok", cell.challenged_ok);
      obs::Span cell_span(config.tracer, "cell:" + cell.client, calls_span);
      cell_span.annotate("attempted", cell.attempted());
      cell_span.annotate("challenged", cell.challenged);
      cell_span.annotate("retransmits", cell.retransmits);
    }
    calls_span.end();
    calls_timer.stop();
    result.servers.push_back(std::move(server_result));
  }
  return result;
}

namespace {

std::string plan_summary(const ChaosResult& result) {
  std::ostringstream out;
  out << "seed " << result.plan.seed << ", fault rate " << result.plan.rate_percent
      << "%, max burst " << result.plan.max_burst << ", ";
  if (result.plan.kinds.empty()) {
    out << "all " << kFaultKindCount << " fault kinds";
  } else {
    out << result.plan.kinds.size() << " fault kind(s):";
    for (const FaultKind kind : result.plan.kinds) out << ' ' << to_string(kind);
  }
  out << ", " << result.calls_per_pair << " call(s) per pair";
  return out.str();
}

}  // namespace

std::string format_chaos(const ChaosResult& result) {
  std::ostringstream out;
  out << "Wire-fault resilience study (" << plan_summary(result) << ")\n";
  for (const ChaosServerResult& server : result.servers) {
    out << server.server << " — " << server.services_deployed << " services\n";
    out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(6)
        << "calls" << std::setw(6) << "ok" << std::setw(10) << "recovered" << std::setw(11)
        << "downgraded" << std::setw(9) << "degraded" << std::setw(9) << "app-fail"
        << std::setw(10) << "vmismatch" << std::setw(10) << "exhausted"
        << std::setw(10) << "fail-fast" << std::setw(6) << "hung" << std::setw(10)
        << "timed-out" << std::setw(6) << "retx" << "\n";
    for (const ChaosCell& cell : server.cells) {
      out << "  " << std::left << std::setw(44) << cell.client << std::right << std::setw(6)
          << cell.attempted() << std::setw(6) << cell.count(ChaosOutcome::kOk)
          << std::setw(10) << cell.count(ChaosOutcome::kRecovered) << std::setw(11)
          << cell.count(ChaosOutcome::kDowngraded) << std::setw(9)
          << cell.count(ChaosOutcome::kDegradedOk) << std::setw(9)
          << cell.count(ChaosOutcome::kAppFailure) << std::setw(10)
          << cell.count(ChaosOutcome::kVersionMismatch) << std::setw(10)
          << cell.count(ChaosOutcome::kExhaustedRetries) << std::setw(10)
          << cell.count(ChaosOutcome::kFailedFast) << std::setw(6)
          << cell.count(ChaosOutcome::kHung) << std::setw(10)
          << cell.count(ChaosOutcome::kTimedOut) << std::setw(6) << cell.retransmits << "\n";
    }
  }
  out << "totals: " << result.total_attempted() << " calls, "
      << result.total_challenged() << " challenged by a fault, "
      << result.total_challenged_ok() << " of those still succeeded\n";
  return out.str();
}

std::string chaos_markdown(const ChaosResult& result) {
  // Aggregate per client across servers.
  struct Row {
    std::string client;
    std::array<std::size_t, kChaosOutcomeCount> outcomes{};
    std::size_t retransmits = 0;
    std::size_t challenged = 0;
    std::size_t challenged_ok = 0;
  };
  std::vector<Row> rows;
  for (const ChaosServerResult& server : result.servers) {
    for (const ChaosCell& cell : server.cells) {
      Row* row = nullptr;
      for (Row& candidate : rows) {
        if (candidate.client == cell.client) row = &candidate;
      }
      if (row == nullptr) {
        rows.push_back({});
        rows.back().client = cell.client;
        row = &rows.back();
      }
      for (std::size_t i = 0; i < kChaosOutcomeCount; ++i) {
        row->outcomes[i] += cell.outcomes[i];
      }
      row->retransmits += cell.retransmits;
      row->challenged += cell.challenged;
      row->challenged_ok += cell.challenged_ok;
    }
  }
  std::ostringstream out;
  out << "## Wire-fault resilience matrix\n\n";
  out << plan_summary(result) << "\n\n";
  out << "| client | ok | recovered | downgraded | degraded | app-failure | "
         "version-mismatch | exhausted | failed-fast | hung | timed-out | "
         "retransmits | recovery% |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  const auto count = [](const Row& row, ChaosOutcome outcome) {
    return row.outcomes[static_cast<std::size_t>(outcome)];
  };
  for (const Row& row : rows) {
    const double rate = row.challenged == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(row.challenged_ok) /
                                  static_cast<double>(row.challenged);
    out << "| " << row.client << " | "
        << count(row, ChaosOutcome::kOk) << " | " << count(row, ChaosOutcome::kRecovered)
        << " | " << count(row, ChaosOutcome::kDowngraded) << " | "
        << count(row, ChaosOutcome::kDegradedOk) << " | "
        << count(row, ChaosOutcome::kAppFailure) << " | "
        << count(row, ChaosOutcome::kVersionMismatch) << " | "
        << count(row, ChaosOutcome::kExhaustedRetries) << " | "
        << count(row, ChaosOutcome::kFailedFast) << " | "
        << count(row, ChaosOutcome::kHung) << " | " << count(row, ChaosOutcome::kTimedOut)
        << " | " << row.retransmits << " | "
        << std::fixed << std::setprecision(1) << rate << " |\n";
  }
  return out.str();
}

std::string chaos_csv(const ChaosResult& result) {
  std::ostringstream out;
  out << "server,client,blocked,ok,recovered,degraded,app_failure,exhausted,"
         "failed_fast,hung,timed_out,version_mismatch,downgraded,retransmits,"
         "faulted_attempts,challenged,challenged_ok,breaker_trips,virtual_ms\n";
  for (const ChaosServerResult& server : result.servers) {
    for (const ChaosCell& cell : server.cells) {
      out << server.server << ',' << cell.client << ','
          << cell.count(ChaosOutcome::kBlockedEarlier) << ','
          << cell.count(ChaosOutcome::kOk) << ',' << cell.count(ChaosOutcome::kRecovered)
          << ',' << cell.count(ChaosOutcome::kDegradedOk) << ','
          << cell.count(ChaosOutcome::kAppFailure) << ','
          << cell.count(ChaosOutcome::kExhaustedRetries) << ','
          << cell.count(ChaosOutcome::kFailedFast) << ','
          << cell.count(ChaosOutcome::kHung) << ',' << cell.count(ChaosOutcome::kTimedOut)
          << ',' << cell.count(ChaosOutcome::kVersionMismatch) << ','
          << cell.count(ChaosOutcome::kDowngraded) << ','
          << cell.retransmits << ','
          << cell.faulted_attempts << ',' << cell.challenged << ',' << cell.challenged_ok
          << ',' << cell.breaker_trips << ',' << cell.virtual_ms << '\n';
    }
  }
  return out.str();
}

std::string chaos_recovery_json(const ChaosResult& result) {
  // Per-client aggregates, in roster order (stable for trend tooling).
  std::vector<std::string> order;
  for (const ChaosServerResult& server : result.servers) {
    for (const ChaosCell& cell : server.cells) {
      bool seen = false;
      for (const std::string& client : order) seen = seen || client == cell.client;
      if (!seen) order.push_back(cell.client);
    }
  }
  json::ArrayWriter clients_json;
  for (const std::string& client : order) {
    std::size_t challenged = 0;
    std::size_t challenged_ok = 0;
    std::size_t recovered = 0;
    std::size_t downgraded = 0;
    std::size_t version_mismatch = 0;
    std::size_t hung = 0;
    std::size_t retransmits = 0;
    for (const ChaosServerResult& server : result.servers) {
      for (const ChaosCell& cell : server.cells) {
        if (cell.client != client) continue;
        challenged += cell.challenged;
        challenged_ok += cell.challenged_ok;
        recovered += cell.count(ChaosOutcome::kRecovered);
        downgraded += cell.count(ChaosOutcome::kDowngraded);
        version_mismatch += cell.count(ChaosOutcome::kVersionMismatch);
        hung += cell.count(ChaosOutcome::kHung);
        retransmits += cell.retransmits;
      }
    }
    json::ObjectWriter entry;
    entry.field("client", client);
    entry.field("challenged", challenged);
    entry.field("challenged_ok", challenged_ok);
    entry.field("recovered", recovered);
    entry.field("downgraded", downgraded);
    entry.field("version_mismatch", version_mismatch);
    entry.field("hung", hung);
    entry.field("retransmits", retransmits);
    entry.field("recovery_rate",
                challenged == 0 ? 0.0
                                : 100.0 * static_cast<double>(challenged_ok) /
                                      static_cast<double>(challenged));
    clients_json.raw_item(entry.str());
  }
  json::ObjectWriter root;
  root.field("experiment", "chaos");
  root.field("seed", static_cast<std::size_t>(result.plan.seed));
  root.field("rate_percent", static_cast<std::size_t>(result.plan.rate_percent));
  root.field("calls_per_pair", result.calls_per_pair);
  root.raw_field("clients", clients_json.str());
  return root.str();
}

}  // namespace wsx::chaos
