#include "chaos/supervised.hpp"

#include <memory>
#include <utility>

#include "catalog/spec_json.hpp"
#include "chaos/wire.hpp"
#include "common/json.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::chaos {
namespace {

Error bad_config(const std::string& what) {
  return Error{"resilience.bad-config", "chaos config: " + what};
}

Error bad_record(const std::string& id, const std::string& what) {
  return Error{"resilience.bad-record", "task record for '" + id + "': " + what};
}

bool read_count(const json::Value& value, std::string_view key, std::size_t& out) {
  const json::Value* member = value.find(key);
  if (member == nullptr || !member->is_number()) return false;
  out = static_cast<std::size_t>(member->as_number());
  return true;
}

std::string chain_delta_json(const ChainDelta& delta) {
  json::ArrayWriter outcomes;
  for (const std::size_t count : delta.outcomes) {
    outcomes.raw_item(std::to_string(count));
  }
  return json::ObjectWriter{}
      .raw_field("o", outcomes.str())
      .field("rt", delta.retransmits)
      .field("fa", delta.faulted_attempts)
      .field("ch", delta.challenged)
      .field("cok", delta.challenged_ok)
      .field("bt", delta.breaker_trips)
      .field("vms", static_cast<std::size_t>(delta.virtual_ms))
      .str();
}

bool chain_delta_from_json(const json::Value& value, ChainDelta& out) {
  const json::Value* outcomes = value.find("o");
  if (outcomes == nullptr || !outcomes->is_array() ||
      outcomes->size() != kChaosOutcomeCount) {
    return false;
  }
  for (std::size_t i = 0; i < kChaosOutcomeCount; ++i) {
    const json::Value& count = outcomes->items()[i];
    if (!count.is_number()) return false;
    out.outcomes[i] = static_cast<std::size_t>(count.as_number());
  }
  std::size_t vms = 0;
  if (!read_count(value, "rt", out.retransmits) || !read_count(value, "fa", out.faulted_attempts) ||
      !read_count(value, "ch", out.challenged) || !read_count(value, "cok", out.challenged_ok) ||
      !read_count(value, "bt", out.breaker_trips) || !read_count(value, "vms", vms)) {
    return false;
  }
  out.virtual_ms = vms;
  return true;
}

std::pair<std::size_t, std::size_t> locate_task(const std::vector<std::size_t>& first_task,
                                                std::size_t task) {
  std::size_t server_index = first_task.size() - 1;
  while (first_task[server_index] > task) --server_index;
  return {server_index, task - first_task[server_index]};
}

}  // namespace

std::string chaos_config_json(const ChaosConfig& config) {
  json::ArrayWriter kinds;
  for (const FaultKind kind : config.plan.kinds) kinds.item(to_string(kind));
  json::ArrayWriter versions;
  for (const frameworks::VersionPolicy policy : config.versions) {
    versions.item(frameworks::to_string(policy));
  }
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(config.java_spec))
      .raw_field("dotnet", catalog::to_json(config.dotnet_spec))
      .field("seed", static_cast<std::size_t>(config.plan.seed))
      .field("rate_percent", static_cast<std::size_t>(config.plan.rate_percent))
      .field("max_burst", static_cast<std::size_t>(config.plan.max_burst))
      .raw_field("kinds", kinds.str())
      .field("breaker_failure_threshold",
             static_cast<std::size_t>(config.breaker.failure_threshold))
      .field("breaker_open_ms", static_cast<std::size_t>(config.breaker.open_ms))
      .field("calls_per_pair", config.calls_per_pair)
      .field("parse_cache", config.parse_cache)
      .raw_field("versions", versions.str())
      .str();
}

Result<ChaosConfig> chaos_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  ChaosConfig config;
  const json::Value* java = parsed->find("java");
  const json::Value* dotnet = parsed->find("dotnet");
  if (java == nullptr || !java->is_object() || dotnet == nullptr || !dotnet->is_object()) {
    return bad_config("missing catalog specs");
  }
  Result<catalog::JavaCatalogSpec> java_spec = catalog::java_spec_from_json(json::to_text(*java));
  if (!java_spec.ok()) return java_spec.error();
  config.java_spec = java_spec.value();
  Result<catalog::DotNetCatalogSpec> dotnet_spec =
      catalog::dotnet_spec_from_json(json::to_text(*dotnet));
  if (!dotnet_spec.ok()) return dotnet_spec.error();
  config.dotnet_spec = dotnet_spec.value();

  std::size_t seed = 0;
  std::size_t rate_percent = 0;
  std::size_t max_burst = 0;
  std::size_t failure_threshold = 0;
  std::size_t open_ms = 0;
  if (!read_count(*parsed, "seed", seed) || !read_count(*parsed, "rate_percent", rate_percent) ||
      !read_count(*parsed, "max_burst", max_burst) ||
      !read_count(*parsed, "breaker_failure_threshold", failure_threshold) ||
      !read_count(*parsed, "breaker_open_ms", open_ms) ||
      !read_count(*parsed, "calls_per_pair", config.calls_per_pair)) {
    return bad_config("missing plan/breaker counters");
  }
  config.plan.seed = seed;
  config.plan.rate_percent = static_cast<unsigned>(rate_percent);
  config.plan.max_burst = static_cast<unsigned>(max_burst);
  config.breaker.failure_threshold = static_cast<unsigned>(failure_threshold);
  config.breaker.open_ms = open_ms;
  const json::Value* kinds = parsed->find("kinds");
  if (kinds == nullptr || !kinds->is_array()) return bad_config("missing kinds");
  for (const json::Value& kind : kinds->items()) {
    if (!kind.is_string()) return bad_config("malformed fault kind");
    const std::optional<FaultKind> known = parse_fault_kind(kind.as_string());
    if (!known.has_value()) return bad_config("unknown fault kind '" + kind.as_string() + "'");
    config.plan.kinds.push_back(*known);
  }
  const json::Value* cache = parsed->find("parse_cache");
  if (cache == nullptr || !cache->is_bool()) return bad_config("missing parse_cache");
  config.parse_cache = cache->as_bool();
  const json::Value* versions = parsed->find("versions");
  if (versions == nullptr || !versions->is_array()) return bad_config("missing versions");
  for (const json::Value& policy : versions->items()) {
    if (!policy.is_string()) return bad_config("malformed version policy");
    const std::optional<frameworks::VersionPolicy> known =
        frameworks::parse_version_policy(policy.as_string());
    if (!known.has_value()) {
      return bad_config("unknown version policy '" + policy.as_string() + "'");
    }
    config.versions.push_back(*known);
  }
  return config;
}

Result<SupervisedChaosResult> run_chaos_supervised(const ChaosConfig& config,
                                                   const SupervisedChaosOptions& options) {
  SupervisedChaosResult out;
  ChaosResult& result = out.chaos;
  result.plan = config.plan;
  result.calls_per_pair = config.calls_per_pair;

  obs::Span run_span(config.tracer, "chaos");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog =
      catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  std::vector<ResiliencePolicy> policies;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
    policies.push_back(policy_for(client->name()));
  }

  // The mixed-version axis: one supervised round per server × policy, with
  // round labels scoping task ids and fault schedules (see run_chaos_study).
  std::vector<soap::HybridProfile> profiles;
  for (const auto& client : clients) {
    profiles.push_back(config.versions.empty()
                           ? soap::HybridProfile::kPure11
                           : frameworks::profile_for(client->version_policy()));
  }

  // Deploy + shared parse up front, as in run_chaos_study; the chains run
  // under supervision.
  struct PreparedRound {
    const frameworks::ServerFramework* server = nullptr;
    std::string label;
    std::unique_ptr<FaultyWire> wire;
    std::vector<frameworks::DeployedService> deployed;
    std::vector<frameworks::SharedDescription> descriptions;
  };
  std::vector<PreparedRound> prepared;
  std::vector<std::size_t> first_task;
  resilience::CampaignTasks tasks;
  tasks.campaign = "chaos";
  tasks.config_json = chaos_config_json(config);
  for (const auto& server : servers) {
    std::vector<PreparedRound> server_rounds;
    if (config.versions.empty()) {
      PreparedRound round;
      round.server = server.get();
      round.label = server->name();
      round.wire = std::make_unique<FaultyWire>(*server, config.plan);
      server_rounds.push_back(std::move(round));
    } else {
      for (const frameworks::VersionPolicy policy : config.versions) {
        PreparedRound round;
        round.server = server.get();
        round.label = server->name() + " [" + frameworks::to_string(policy) + "]";
        round.wire = std::make_unique<FaultyWire>(*server, config.plan);
        round.wire->set_server_policy(policy);
        server_rounds.push_back(std::move(round));
      }
    }
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    for (PreparedRound& round : server_rounds) {
      obs::Span round_span(config.tracer, "round:" + round.label, run_span);
      obs::Span deploy_span(config.tracer, "phase:deploy", round_span);
      obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "chaos.phase.deploy_us");
      for (const catalog::TypeInfo& type : catalog.types()) {
        Result<frameworks::DeployedService> service =
            server->deploy(frameworks::ServiceSpec{&type});
        if (service.ok()) round.deployed.push_back(std::move(service.value()));
      }
      obs::add(config.metrics, "chaos.services_deployed", round.deployed.size());
      deploy_span.annotate("deployed", round.deployed.size());
      deploy_span.end();
      deploy_timer.stop();
      if (config.parse_cache) {
        obs::Span parse_span(config.tracer, "phase:parse", round_span);
        obs::ScopedTimer parse_timer = obs::timer(config.metrics, "chaos.phase.parse_us");
        round.descriptions.reserve(round.deployed.size());
        for (const frameworks::DeployedService& service : round.deployed) {
          round.descriptions.push_back(
              frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false));
        }
        obs::add(config.metrics, "chaos.parse.wsdl_parses", round.descriptions.size());
        parse_span.end();
        parse_timer.stop();
      }
      first_task.push_back(tasks.ids.size());
      for (const frameworks::DeployedService& service : round.deployed) {
        tasks.ids.push_back(round.label + "|" + service.spec.service_name());
      }
      prepared.push_back(std::move(round));
    }
  }

  // One task = every client chain against one endpoint. Each chain's
  // virtual milliseconds are charged against the supervisor deadline.
  tasks.run = [&](std::size_t index, resilience::TaskContext& context) {
    const auto [round_index, service_index] = locate_task(first_task, index);
    const PreparedRound& round = prepared[round_index];
    const frameworks::DeployedService& service = round.deployed[service_index];
    const frameworks::SharedDescription* description =
        config.parse_cache ? &round.descriptions[service_index] : nullptr;
    json::ArrayWriter rows;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const ChainDelta delta =
          run_chaos_chain(*round.wire, *round.server, service, description,
                          *clients[i], client_compilers[i].get(), policies[i], config,
                          profiles[i], round.label);
      context.charge(delta.virtual_ms);
      rows.raw_item(chain_delta_json(delta));
    }
    return json::ObjectWriter{}.raw_field("clients", rows.str()).str();
  };

  obs::Span calls_span(config.tracer, "phase:calls", run_span);
  obs::ScopedTimer calls_timer = obs::timer(config.metrics, "chaos.phase.calls_us");
  resilience::SupervisorOptions sup;
  sup.journal = options.journal;
  sup.jobs = config.jobs;
  sup.checkpoint_path = options.checkpoint_path;
  sup.resume = options.resume;
  sup.trip_after_tasks = options.trip_after_tasks;
  sup.metrics = config.metrics;
  Result<resilience::SupervisorReport> supervised = resilience::supervise(tasks, sup);
  calls_span.end();
  calls_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold in task order. Completed chains add their deltas; deadline
  // quarantines synthesize kTimedOut for the whole pair population.
  for (std::size_t round_index = 0; round_index < prepared.size(); ++round_index) {
    ChaosServerResult server_result;
    server_result.server = prepared[round_index].label;
    server_result.services_deployed = prepared[round_index].deployed.size();
    for (const auto& client : clients) {
      ChaosCell cell;
      cell.client = client->name();
      server_result.cells.push_back(std::move(cell));
    }
    result.servers.push_back(std::move(server_result));
  }
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    const auto [round_index, service_index] = locate_task(first_task, task.task);
    ChaosServerResult& server_result = result.servers[round_index];
    if (task.state == resilience::TaskState::kQuarantined && task.timed_out) {
      for (ChaosCell& cell : server_result.cells) {
        cell.outcomes[static_cast<std::size_t>(ChaosOutcome::kTimedOut)] +=
            config.calls_per_pair;
      }
      continue;
    }
    if (task.state != resilience::TaskState::kCompleted) continue;
    Result<json::Value> record = json::parse(task.record);
    if (!record.ok()) return record.error();
    const json::Value* rows = record->find("clients");
    if (rows == nullptr || !rows->is_array() || rows->size() != clients.size()) {
      return bad_record(task.id, "client row count mismatch");
    }
    for (std::size_t i = 0; i < clients.size(); ++i) {
      ChainDelta delta;
      if (!chain_delta_from_json(rows->items()[i], delta)) {
        return bad_record(task.id, "malformed chain delta");
      }
      ChaosCell& cell = server_result.cells[i];
      for (std::size_t outcome = 0; outcome < kChaosOutcomeCount; ++outcome) {
        cell.outcomes[outcome] += delta.outcomes[outcome];
      }
      cell.retransmits += delta.retransmits;
      cell.faulted_attempts += delta.faulted_attempts;
      cell.challenged += delta.challenged;
      cell.challenged_ok += delta.challenged_ok;
      cell.breaker_trips += delta.breaker_trips;
      cell.virtual_ms += delta.virtual_ms;
    }
  }
  for (const ChaosServerResult& server_result : result.servers) {
    for (const ChaosCell& cell : server_result.cells) {
      obs::add(config.metrics, "chaos.breaker_trips", cell.breaker_trips);
      obs::add(config.metrics, "chaos.challenged", cell.challenged);
      obs::add(config.metrics, "chaos.challenged_ok", cell.challenged_ok);
    }
  }
  return out;
}

}  // namespace wsx::chaos
