#include "chaos/fault.hpp"

namespace wsx::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kConnectionReset:
      return "reset";
    case FaultKind::kConnectTimeout:
      return "connect-timeout";
    case FaultKind::kReadTimeout:
      return "read-timeout";
    case FaultKind::kTruncatedBody:
      return "truncated-body";
    case FaultKind::kCorruptedByte:
      return "corrupted-byte";
    case FaultKind::kHttp502:
      return "http-502";
    case FaultKind::kHttp503:
      return "http-503";
    case FaultKind::kSlowResponse:
      return "slow-response";
    case FaultKind::kDuplicateDelivery:
      return "duplicate-delivery";
    case FaultKind::kDropContentType:
      return "drop-content-type";
    case FaultKind::kDropSoapAction:
      return "drop-soap-action";
    case FaultKind::kSoap12Rewrite:
      return "soap12-rewrite";
    case FaultKind::kMustUnderstandInject:
      return "mu-inject";
    case FaultKind::kContentTypeSkew:
      return "content-type-skew";
  }
  return "unknown";
}

std::vector<FaultKind> all_fault_kinds() {
  return {
      FaultKind::kConnectionReset, FaultKind::kConnectTimeout,
      FaultKind::kReadTimeout,     FaultKind::kTruncatedBody,
      FaultKind::kCorruptedByte,   FaultKind::kHttp502,
      FaultKind::kHttp503,         FaultKind::kSlowResponse,
      FaultKind::kDuplicateDelivery, FaultKind::kDropContentType,
      FaultKind::kDropSoapAction,    FaultKind::kSoap12Rewrite,
      FaultKind::kMustUnderstandInject, FaultKind::kContentTypeSkew,
  };
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) {
  for (FaultKind kind : all_fault_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::uint64_t chaos_mix(std::uint64_t value) {
  // splitmix64 finalizer — cheap, well-distributed, and stable across
  // platforms (no std:: hashing, whose result is implementation-defined).
  value += 0x9e3779b97f4a7c15ULL;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
  return value ^ (value >> 31);
}

std::uint64_t chaos_hash(std::uint64_t seed, std::string_view text) {
  // FNV-1a over the id, then mixed with the seed through splitmix64.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return chaos_mix(hash ^ chaos_mix(seed));
}

CallSchedule plan_call(const FaultPlan& plan, std::string_view call_id) {
  const std::uint64_t hash = chaos_hash(plan.seed, call_id);
  if (plan.rate_percent == 0 || hash % 100 >= plan.rate_percent) {
    return CallSchedule::clean(hash);
  }
  const std::vector<FaultKind> kinds =
      plan.kinds.empty() ? all_fault_kinds() : plan.kinds;
  const std::uint64_t kind_draw = chaos_mix(hash);
  const std::uint64_t burst_draw = chaos_mix(kind_draw);
  const unsigned max_burst = plan.max_burst == 0 ? 1 : plan.max_burst;
  return CallSchedule(kinds[kind_draw % kinds.size()],
                      1 + static_cast<unsigned>(burst_draw % max_burst), hash);
}

}  // namespace wsx::chaos
