// wire.hpp — the faulty wire: the HTTP wire model wrapped in a
// deterministic fault injector.
//
// FaultyWire sits between a client runtime and ServerFramework::handle_http
// and perturbs individual delivery attempts according to a CallSchedule:
// requests can be reset or lost, responses delayed, truncated, corrupted or
// replaced by intermediary errors, and headers dropped or duplicated in
// transit. Everything is virtual-time and seed-deterministic; the wire
// never sleeps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chaos/fault.hpp"
#include "frameworks/server.hpp"
#include "soap/http.hpp"

namespace wsx::chaos {

/// Base latency of a clean exchange on the virtual clock.
inline constexpr std::uint64_t kBaseLatencyMs = 5;
/// Latency of a kSlowResponse delivery — longer than most stacks' read
/// timeouts, shorter than the patient ones'.
inline constexpr std::uint64_t kSlowLatencyMs = 2500;
/// "The answer never comes": larger than any policy's budget.
inline constexpr std::uint64_t kNeverMs = ~std::uint64_t{0};

/// What one delivery attempt looked like from the client's side.
struct WireAttempt {
  enum class Status {
    kDelivered,        ///< `response` holds what arrived (possibly mangled)
    kConnectionReset,  ///< connection torn down before any response
    kConnectTimeout,   ///< connection never established
    kReadTimeout,      ///< request delivered, response never arrived
  };
  Status status = Status::kDelivered;
  soap::HttpResponse response;            ///< valid iff kDelivered
  std::uint64_t latency_ms = kBaseLatencyMs;  ///< kNeverMs for timeouts
  /// Times the server actually executed the request during this attempt
  /// (0 for resets/intermediary errors, 2 for duplicate delivery). The
  /// resilience engine's idempotency gate and the duplicate-effect sniffer
  /// both key off this.
  unsigned server_executions = 0;
  std::optional<FaultKind> injected;      ///< the fault this attempt hit
};

/// Applies a response-body fault (truncation / byte corruption) to `body`.
/// Exposed so the fuzz-bridge tests can cross-check wire corruption against
/// the text-level WSDL mutation operators.
std::string apply_body_fault(FaultKind kind, std::string body, std::uint64_t salt);

class FaultyWire {
 public:
  FaultyWire(const frameworks::ServerFramework& server, FaultPlan plan)
      : server_(&server), plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// Overrides the server's documented version-validation policy for every
  /// delivery on this wire — the per-round knob of the `--versions` axis.
  void set_server_policy(frameworks::VersionPolicy policy) { server_policy_ = policy; }
  frameworks::VersionPolicy server_policy() const {
    return server_policy_.has_value() ? *server_policy_ : server_->version_policy();
  }

  /// Draws the deterministic schedule for one logical call.
  CallSchedule schedule(std::string_view call_id) const {
    return plan_call(plan_, call_id);
  }

  /// Performs delivery attempt `attempt_no` of a call, injecting whatever
  /// the schedule dictates for that attempt. With `downgraded` set (the
  /// retransmit of a 1.1-coherent downgrade form), the version-skew fault
  /// kinds pass through clean: the downgrade handshake renegotiates the
  /// path around the skewing intermediary, which is precisely why the
  /// recovery works — every other fault kind still applies.
  WireAttempt attempt(const frameworks::DeployedService& service,
                      const soap::HttpRequest& request, const CallSchedule& schedule,
                      unsigned attempt_no, bool downgraded = false) const;

 private:
  const frameworks::ServerFramework* server_;
  FaultPlan plan_;
  std::optional<frameworks::VersionPolicy> server_policy_;
};

}  // namespace wsx::chaos
