// fault.hpp — the wire fault taxonomy and the deterministic fault plan.
//
// A FaultPlan decides, per logical call, whether the wire misbehaves, with
// which fault kind, and for how many consecutive delivery attempts (the
// burst). The decision is a pure function of (seed, call id), so the same
// plan produces the same schedule for every worker count and run — the
// chaos study's determinism guarantee rests on this module.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wsx::chaos {

/// The wire-level fault kinds the chaos wire can inject.
enum class FaultKind {
  kConnectionReset,   ///< TCP RST before the server sees the request
  kConnectTimeout,    ///< connection never establishes
  kReadTimeout,       ///< server executes, the response never arrives
  kTruncatedBody,     ///< response body cut mid-document
  kCorruptedByte,     ///< one byte of the response body flipped
  kHttp502,           ///< intermediary answers 502 Bad Gateway
  kHttp503,           ///< intermediary answers 503 Service Unavailable
  kSlowResponse,      ///< response arrives, but slower than most timeouts
  kDuplicateDelivery, ///< request delivered (and executed) twice
  kDropContentType,   ///< Content-Type header lost in transit
  kDropSoapAction,    ///< SOAPAction header lost in transit
  // Version-skew faults: a mixed-version intermediary (shaded gateway, MTOM
  // proxy, WS-A-adding ESB) mangles the *request*'s version coherence in
  // transit. Downgrade-capable clients recover by retransmitting the
  // 1.1-coherent form (ResiliencePolicy::downgrade_on_version_mismatch).
  kSoap12Rewrite,        ///< envelope namespace rewritten 1.1 → 1.2
  kMustUnderstandInject, ///< 1.2-era mustUnderstand header injected
  kContentTypeSkew,      ///< Content-Type flips to application/soap+xml
                         ///< while the envelope stays 1.1
};
inline constexpr std::size_t kFaultKindCount = 14;

const char* to_string(FaultKind kind);

/// All kinds, in declaration order.
std::vector<FaultKind> all_fault_kinds();

/// Parses the CLI spelling ("reset", "read-timeout", "http-503", ...).
std::optional<FaultKind> parse_fault_kind(std::string_view name);

/// Deterministic 64-bit hash of (seed, text); the sole randomness source
/// of the chaos subsystem (schedules, corruption offsets, backoff jitter).
std::uint64_t chaos_hash(std::uint64_t seed, std::string_view text);

/// One further deterministic scramble; used to derive independent decision
/// streams from one call hash.
std::uint64_t chaos_mix(std::uint64_t value);

/// The campaign-wide injection policy.
struct FaultPlan {
  std::uint64_t seed = 7;
  /// Fraction of logical calls hit by a fault, in percent (0 = clean wire).
  unsigned rate_percent = 30;
  /// Enabled kinds; empty means all of them.
  std::vector<FaultKind> kinds;
  /// A fault persists for 1..max_burst consecutive attempts of the call it
  /// hits (the burst length is drawn deterministically per call).
  unsigned max_burst = 3;
};

/// The fault schedule of one logical call: which kind (if any) hits which
/// attempts. Attempts 0..burst-1 of a faulted call see the fault; later
/// attempts go through cleanly — a retrying client can outlast the burst.
class CallSchedule {
 public:
  CallSchedule() = default;
  CallSchedule(FaultKind kind, unsigned burst, std::uint64_t salt)
      : kind_(kind), burst_(burst), salt_(salt) {}

  std::optional<FaultKind> fault_for_attempt(unsigned attempt) const {
    if (kind_.has_value() && attempt < burst_) return kind_;
    return std::nullopt;
  }
  bool faulted() const { return kind_.has_value(); }
  unsigned burst() const { return burst_; }
  /// Per-call entropy for corruption offsets and backoff jitter.
  std::uint64_t salt() const { return salt_; }

  static CallSchedule clean(std::uint64_t salt) {
    CallSchedule schedule;
    schedule.salt_ = salt;
    return schedule;
  }

 private:
  std::optional<FaultKind> kind_;
  unsigned burst_ = 0;
  std::uint64_t salt_ = 0;
};

/// Draws the schedule for the call identified by `call_id` (a stable
/// "server|service|client|call#" string). Pure and deterministic.
CallSchedule plan_call(const FaultPlan& plan, std::string_view call_id);

}  // namespace wsx::chaos
