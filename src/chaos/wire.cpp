#include "chaos/wire.hpp"

namespace wsx::chaos {

std::string apply_body_fault(FaultKind kind, std::string body, std::uint64_t salt) {
  switch (kind) {
    case FaultKind::kTruncatedBody:
      // The same 60% cut the fuzz module's kTruncate mutation uses, so the
      // two corruption paths are comparable byte for byte.
      return body.substr(0, body.size() * 6 / 10);
    case FaultKind::kCorruptedByte: {
      if (body.empty()) return body;
      // Flip one byte at a deterministic offset. '#' never appears in our
      // serialized envelopes, so the damage is always observable.
      body[salt % body.size()] = '#';
      return body;
    }
    default:
      return body;
  }
}

WireAttempt FaultyWire::attempt(const frameworks::DeployedService& service,
                                const soap::HttpRequest& request,
                                const CallSchedule& schedule,
                                unsigned attempt_no) const {
  WireAttempt result;
  result.injected = schedule.fault_for_attempt(attempt_no);

  if (!result.injected.has_value()) {
    result.response = server_->handle_http(service, request);
    result.server_executions = 1;
    return result;
  }

  switch (*result.injected) {
    case FaultKind::kConnectionReset:
      result.status = WireAttempt::Status::kConnectionReset;
      result.latency_ms = 1;
      return result;
    case FaultKind::kConnectTimeout:
      result.status = WireAttempt::Status::kConnectTimeout;
      result.latency_ms = kNeverMs;
      return result;
    case FaultKind::kReadTimeout:
      // The request makes it through and the server executes it; only the
      // response is lost. This is the attempt that makes blind retransmits
      // dangerous for non-idempotent calls.
      server_->handle_http(service, request);
      result.status = WireAttempt::Status::kReadTimeout;
      result.server_executions = 1;
      result.latency_ms = kNeverMs;
      return result;
    case FaultKind::kTruncatedBody:
    case FaultKind::kCorruptedByte:
      result.response = server_->handle_http(service, request);
      result.server_executions = 1;
      result.response.body =
          apply_body_fault(*result.injected, std::move(result.response.body),
                           schedule.salt());
      return result;
    case FaultKind::kHttp502:
      result.response.status = 502;
      result.response.body = "<html><body>Bad Gateway</body></html>";
      result.response.set_header("Content-Type", "text/html");
      return result;
    case FaultKind::kHttp503:
      result.response.status = 503;
      result.response.body = "<html><body>Service Unavailable</body></html>";
      result.response.set_header("Content-Type", "text/html");
      result.response.set_header("Retry-After", "1");
      return result;
    case FaultKind::kSlowResponse:
      result.response = server_->handle_http(service, request);
      result.server_executions = 1;
      result.latency_ms = kSlowLatencyMs;
      return result;
    case FaultKind::kDuplicateDelivery: {
      // The network replays the request; the server executes twice. The
      // client sees one (clean) response — the damage is the second
      // server-side effect, which the duplicate-effect sniffer reports.
      server_->handle_http(service, request);
      result.response = server_->handle_http(service, request);
      result.server_executions = 2;
      return result;
    }
    case FaultKind::kDropContentType: {
      soap::HttpRequest mangled = request;
      mangled.remove_header("Content-Type");
      result.response = server_->handle_http(service, mangled);
      // Rejected at the HTTP layer before dispatch — no execution.
      return result;
    }
    case FaultKind::kDropSoapAction: {
      soap::HttpRequest mangled = request;
      mangled.remove_header("SOAPAction");
      result.response = server_->handle_http(service, mangled);
      // Java stacks dispatch on the body and still execute; .NET refuses.
      result.server_executions = result.response.ok() ? 1 : 0;
      return result;
    }
  }
  return result;
}

}  // namespace wsx::chaos
