#include "chaos/wire.hpp"

#include "soap/version.hpp"
#include "xml/qname.hpp"

namespace wsx::chaos {

namespace {

/// Rewrites every occurrence of the SOAP 1.1 envelope namespace in `body`
/// to the 1.2 one — the version-confused gateway that "upgrades" messages
/// it forwards. The Content-Type stays text/xml, so the result is
/// incoherent on two axes at once.
std::string rewrite_envelope_namespace(std::string body) {
  const std::string_view from = xml::ns::kSoapEnvelope;
  const std::string_view to = xml::ns::kSoap12Envelope;
  std::size_t pos = 0;
  while ((pos = body.find(from, pos)) != std::string::npos) {
    body.replace(pos, from.size(), to);
    pos += to.size();
  }
  return body;
}

/// Parses the request envelope, dresses it in the kSecured hybrid profile
/// (wsse:Security marked mustUnderstand, plus WS-Addressing), and
/// re-serializes — the WS-A-adding ESB with a Rampart-style gateway module
/// in front of it. Unparseable bodies pass through untouched.
std::string inject_must_understand_header(const std::string& body) {
  Result<soap::Envelope> envelope = soap::parse(body);
  if (!envelope.ok()) return body;
  soap::apply_hybrid_profile(*envelope, soap::HybridProfile::kSecured, "chaos");
  return soap::write(*envelope);
}

}  // namespace

std::string apply_body_fault(FaultKind kind, std::string body, std::uint64_t salt) {
  switch (kind) {
    case FaultKind::kTruncatedBody:
      // The same 60% cut the fuzz module's kTruncate mutation uses, so the
      // two corruption paths are comparable byte for byte.
      return body.substr(0, body.size() * 6 / 10);
    case FaultKind::kCorruptedByte: {
      if (body.empty()) return body;
      // Flip one byte at a deterministic offset. '#' never appears in our
      // serialized envelopes, so the damage is always observable.
      body[salt % body.size()] = '#';
      return body;
    }
    default:
      return body;
  }
}

WireAttempt FaultyWire::attempt(const frameworks::DeployedService& service,
                                const soap::HttpRequest& request,
                                const CallSchedule& schedule,
                                unsigned attempt_no, bool downgraded) const {
  WireAttempt result;
  result.injected = schedule.fault_for_attempt(attempt_no);
  const frameworks::VersionPolicy policy = server_policy();

  if (result.injected.has_value() && downgraded) {
    // The downgrade retransmit renegotiated the path around the skewing
    // intermediary; only the version-skew kinds are bypassed — a reset is
    // still a reset no matter what the envelope looks like.
    switch (*result.injected) {
      case FaultKind::kSoap12Rewrite:
      case FaultKind::kMustUnderstandInject:
      case FaultKind::kContentTypeSkew:
        result.injected = std::nullopt;
        break;
      default:
        break;
    }
  }

  if (!result.injected.has_value()) {
    result.response = server_->handle_http(service, request, policy);
    result.server_executions = 1;
    return result;
  }

  switch (*result.injected) {
    case FaultKind::kConnectionReset:
      result.status = WireAttempt::Status::kConnectionReset;
      result.latency_ms = 1;
      return result;
    case FaultKind::kConnectTimeout:
      result.status = WireAttempt::Status::kConnectTimeout;
      result.latency_ms = kNeverMs;
      return result;
    case FaultKind::kReadTimeout:
      // The request makes it through and the server executes it; only the
      // response is lost. This is the attempt that makes blind retransmits
      // dangerous for non-idempotent calls.
      server_->handle_http(service, request, policy);
      result.status = WireAttempt::Status::kReadTimeout;
      result.server_executions = 1;
      result.latency_ms = kNeverMs;
      return result;
    case FaultKind::kTruncatedBody:
    case FaultKind::kCorruptedByte:
      result.response = server_->handle_http(service, request, policy);
      result.server_executions = 1;
      result.response.body =
          apply_body_fault(*result.injected, std::move(result.response.body),
                           schedule.salt());
      return result;
    case FaultKind::kHttp502:
      result.response.status = 502;
      result.response.body = "<html><body>Bad Gateway</body></html>";
      result.response.set_header("Content-Type", "text/html");
      return result;
    case FaultKind::kHttp503:
      result.response.status = 503;
      result.response.body = "<html><body>Service Unavailable</body></html>";
      result.response.set_header("Content-Type", "text/html");
      result.response.set_header("Retry-After", "1");
      return result;
    case FaultKind::kSlowResponse:
      result.response = server_->handle_http(service, request, policy);
      result.server_executions = 1;
      result.latency_ms = kSlowLatencyMs;
      return result;
    case FaultKind::kDuplicateDelivery: {
      // The network replays the request; the server executes twice. The
      // client sees one (clean) response — the damage is the second
      // server-side effect, which the duplicate-effect sniffer reports.
      server_->handle_http(service, request, policy);
      result.response = server_->handle_http(service, request, policy);
      result.server_executions = 2;
      return result;
    }
    case FaultKind::kDropContentType: {
      soap::HttpRequest mangled = request;
      mangled.remove_header("Content-Type");
      result.response = server_->handle_http(service, mangled, policy);
      // Rejected at the HTTP layer before dispatch — no execution.
      return result;
    }
    case FaultKind::kDropSoapAction: {
      soap::HttpRequest mangled = request;
      mangled.remove_header("SOAPAction");
      result.response = server_->handle_http(service, mangled, policy);
      // Java stacks dispatch on the body and still execute; .NET refuses.
      result.server_executions = result.response.ok() ? 1 : 0;
      return result;
    }
    case FaultKind::kSoap12Rewrite: {
      // A version-confused gateway "upgrades" the envelope namespace to
      // SOAP 1.2 in transit but leaves the Content-Type at text/xml.
      // Strict and relaxed endpoints answer a VersionMismatch fault;
      // shaded ones process the 1.2 envelope and answer in kind.
      soap::HttpRequest mangled = request;
      mangled.body = rewrite_envelope_namespace(mangled.body);
      result.response = server_->handle_http(service, mangled, policy);
      result.server_executions = result.response.ok() ? 1 : 0;
      return result;
    }
    case FaultKind::kMustUnderstandInject: {
      // An ESB injects a wsse:Security header marked mustUnderstand (plus
      // WS-Addressing) into the forwarded request. Only shaded endpoints
      // understand it; everyone else faults MustUnderstand.
      soap::HttpRequest mangled = request;
      mangled.body = inject_must_understand_header(mangled.body);
      result.response = server_->handle_http(service, mangled, policy);
      result.server_executions = result.response.ok() ? 1 : 0;
      return result;
    }
    case FaultKind::kContentTypeSkew: {
      // The intermediary rewrites the media type to application/soap+xml
      // while the envelope stays SOAP 1.1 — 415 at the HTTP layer for
      // strict and relaxed endpoints, accepted by shaded ones.
      soap::HttpRequest mangled = request;
      mangled.set_header("Content-Type", "application/soap+xml; charset=utf-8");
      result.response = server_->handle_http(service, mangled, policy);
      result.server_executions = result.response.ok() ? 1 : 0;
      return result;
    }
  }
  return result;
}

}  // namespace wsx::chaos
