// campaign.hpp — the chaos campaign: every surviving (service, client)
// pair driven over the faulty wire under each client's resilience policy.
//
// The wire-fault extension of the communication study: instead of asking
// "does the call succeed on a perfect wire", the campaign asks "does the
// client stack recover when the wire misbehaves". Each logical call runs
// through the shared invocation pipeline (frameworks/invocation.*), the
// FaultyWire perturbs delivery attempts per the FaultPlan, and the
// client's ResiliencePolicy plus a per-endpoint circuit breaker decide
// what happens next — all on the virtual clock, so a run is byte-for-byte
// reproducible at any worker count. With a zero fault rate the campaign
// degenerates to the communication study and must match its success
// counts exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "chaos/fault.hpp"
#include "chaos/policy.hpp"
#include "frameworks/version_policy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "soap/version.hpp"

namespace wsx::compilers {
class Compiler;
}  // namespace wsx::compilers

namespace wsx::frameworks {
class ClientFramework;
class ServerFramework;
class SharedDescription;
struct DeployedService;
}  // namespace wsx::frameworks

namespace wsx::chaos {

class FaultyWire;

/// How one logical call ended, resilience included.
enum class ChaosOutcome {
  kBlockedEarlier,    ///< steps 1–3 failed or the proxy is method-less —
                      ///< the call never reaches the wire
  kOk,                ///< succeeded on the first attempt
  kRecovered,         ///< succeeded after at least one retransmit
  kDegradedOk,        ///< succeeded, but the sniffer flagged duplicate
                      ///< server-side effects (replay or blind retransmit)
  kAppFailure,        ///< SOAP-level failure on a clean attempt — not the
                      ///< wire's doing (faults, mismatches, SOAPAction)
  kExhaustedRetries,  ///< the policy retried and ran out of allowance
  kFailedFast,        ///< the policy (or the circuit breaker, or the
                      ///< idempotency gate) aborted without retransmitting
  kHung,              ///< still waiting when the call budget ran out
  kTimedOut,          ///< the supervisor's per-task deadline aborted the
                      ///< chain before this call ran (resilience layer;
                      ///< never produced by an unsupervised run)
  kVersionMismatch,   ///< the endpoint rejected the call's version shape
                      ///< (VersionMismatch/MustUnderstand fault or HTTP
                      ///< 415) on a clean attempt and the client's policy
                      ///< has no downgrade path — a pure policy mismatch,
                      ///< not the wire's doing
  kDowngraded,        ///< succeeded after retransmitting the 1.1-coherent
                      ///< downgrade form of the call (counts as a success)
};
inline constexpr std::size_t kChaosOutcomeCount = 11;

const char* to_string(ChaosOutcome outcome);

/// Per client, per server: outcomes across all deployed services.
struct ChaosCell {
  std::string client;
  std::array<std::size_t, kChaosOutcomeCount> outcomes{};
  std::size_t retransmits = 0;       ///< total retransmits performed
  std::size_t faulted_attempts = 0;  ///< delivery attempts that hit a fault
  std::size_t challenged = 0;        ///< calls that saw >= 1 injected fault
  std::size_t challenged_ok = 0;     ///< challenged calls that still succeeded
  std::size_t breaker_trips = 0;     ///< circuit-breaker open transitions
  std::uint64_t virtual_ms = 0;      ///< virtual time consumed by this cell

  std::size_t count(ChaosOutcome outcome) const {
    return outcomes[static_cast<std::size_t>(outcome)];
  }
  std::size_t attempted() const;  ///< everything except kBlockedEarlier
  std::size_t succeeded() const;  ///< kOk + kRecovered + kDegradedOk + kDowngraded
  /// Share of fault-challenged calls that still succeeded, in percent.
  double recovery_rate() const;
};

struct ChaosServerResult {
  /// The round label: the server name, or "Server [policy]" under the
  /// --versions axis (one round per server × policy).
  std::string server;
  std::size_t services_deployed = 0;
  std::vector<ChaosCell> cells;
};

struct ChaosResult {
  FaultPlan plan;
  std::size_t calls_per_pair = 1;
  std::vector<ChaosServerResult> servers;

  std::size_t total(ChaosOutcome outcome) const;
  std::size_t total_attempted() const;
  std::size_t total_challenged() const;
  std::size_t total_challenged_ok() const;
};

struct ChaosConfig {
  catalog::JavaCatalogSpec java_spec;      ///< defaults: the paper's population
  catalog::DotNetCatalogSpec dotnet_spec;  ///< defaults: the paper's population
  FaultPlan plan;
  BreakerSettings breaker;
  /// Logical calls per surviving (service, client) pair. The virtual clock
  /// and circuit breaker persist across a pair's calls, so bursts on an
  /// early call can fail-fast later ones.
  std::size_t calls_per_pair = 1;
  std::size_t jobs = 0;  ///< worker threads; 0 = hardware concurrency

  /// The mixed-version axis: when non-empty, every server runs one round
  /// per listed policy (overriding its documented version policy), and each
  /// client dresses its calls in the hybrid profile its own documented
  /// policy implies (frameworks::profile_for). Empty = the classic campaign
  /// (every call pure 1.1, every server on its documented policy).
  std::vector<frameworks::VersionPolicy> versions;

  /// Parse-once pipeline: build one SharedDescription per deployed service
  /// and share it across every client chain's generation gate (identical
  /// outcomes; see interop::StudyConfig::parse_cache).
  bool parse_cache = true;

  /// Observability sinks, both optional (null = off). Spans: run → round
  /// (per server) → phase → cell; metrics use the "chaos." prefix.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Runs the chaos campaign. Output is a pure function of the config —
/// identical for every `jobs` value.
ChaosResult run_chaos_study(const ChaosConfig& config = {});

/// Everything one client chain contributes to its (server, client) cell:
/// calls_per_pair logical calls against one endpoint over a persistent
/// virtual clock and circuit breaker. The unit the campaign parallelizes
/// over, and the unit the resilience supervisor checkpoints.
struct ChainDelta {
  std::array<std::size_t, kChaosOutcomeCount> outcomes{};
  std::size_t retransmits = 0;
  std::size_t faulted_attempts = 0;
  std::size_t challenged = 0;
  std::size_t challenged_ok = 0;
  std::size_t breaker_trips = 0;
  std::uint64_t virtual_ms = 0;
};

/// Runs one chain. `description` is the campaign's shared parse (null =
/// re-parse, the --no-parse-cache path); `compiler` is null for dynamic
/// clients. Pure in its inputs — the determinism guarantee of the chaos
/// study rests on it.
/// `profile` is the hybrid dressing the client puts on its calls (kPure11
/// outside the --versions axis); `round_label` scopes the chain's call ids
/// (empty = the server name) so each versions round draws an independent
/// fault schedule.
ChainDelta run_chaos_chain(const FaultyWire& wire,
                           const frameworks::ServerFramework& server,
                           const frameworks::DeployedService& service,
                           const frameworks::SharedDescription* description,
                           const frameworks::ClientFramework& client,
                           const compilers::Compiler* compiler,
                           const ResiliencePolicy& policy, const ChaosConfig& config,
                           soap::HybridProfile profile = soap::HybridProfile::kPure11,
                           std::string_view round_label = {});

/// Human-readable per-server matrix.
std::string format_chaos(const ChaosResult& result);

/// Per-client resilience matrix as a Markdown table (aggregated over
/// servers).
std::string chaos_markdown(const ChaosResult& result);

/// Machine-readable form, one row per (server, client) cell.
std::string chaos_csv(const ChaosResult& result);

/// Per-client recovery rates as JSON (the BENCH_chaos.json payload).
std::string chaos_recovery_json(const ChaosResult& result);

}  // namespace wsx::chaos
