#include "soap/version.hpp"

#include "common/strings.hpp"

namespace wsx::soap {

bool is_12_era_namespace(std::string_view namespace_uri) {
  return namespace_uri == kWsAddressingNs || namespace_uri == kWsSecurityNs ||
         namespace_uri == kXopNs;
}

std::string_view content_type_for(SoapVersion version) {
  return version == SoapVersion::k11 ? "text/xml" : "application/soap+xml";
}

bool content_type_matches(std::string_view content_type, SoapVersion version) {
  return content_type.find(content_type_for(version)) != std::string_view::npos;
}

const char* to_string(HybridProfile profile) {
  switch (profile) {
    case HybridProfile::kPure11:
      return "pure-1.1";
    case HybridProfile::kAddressing:
      return "addressing";
    case HybridProfile::kSecured:
      return "secured";
  }
  return "unknown";
}

namespace {

xml::Element make_wsa_header(std::string_view local, std::string value) {
  xml::Element entry{"wsa:" + std::string(local)};
  entry.declare_namespace("wsa", kWsAddressingNs);
  entry.add_text(std::move(value));
  return entry;
}

}  // namespace

void apply_hybrid_profile(Envelope& envelope, HybridProfile profile,
                          std::string_view operation) {
  if (profile == HybridProfile::kPure11) return;
  // WS-Addressing: Action + MessageID, never mustUnderstand — a receiver
  // that ignores them loses nothing an echo call needs.
  envelope.add_header(
      make_wsa_header("Action", "urn:wsx:" + std::string(operation)));
  // Deterministic MessageID: campaigns must be byte-identical across runs,
  // so the id derives from the operation, not from randomness.
  envelope.add_header(
      make_wsa_header("MessageID", "urn:uuid:wsx-" + std::string(operation)));
  if (profile != HybridProfile::kSecured) return;
  // WS-Security: the Digikoppeling WUS shape — a wsse:Security header the
  // sender marks mustUnderstand, so receivers without the extension MUST
  // fault rather than silently skip the security processing.
  xml::Element security{"wsse:Security"};
  security.declare_namespace("wsse", kWsSecurityNs);
  security.add_element("wsse:BinarySecurityToken").add_text("d295LXRva2Vu");
  envelope.add_must_understand_header(std::move(security));
}

bool is_12_era_header(const xml::Element& entry) {
  // Wire shape: the entry (or the profile builder) declared its namespace
  // on itself. Resolve the entry's prefix against its own declarations.
  const std::string& name = entry.name();
  const std::size_t colon = name.find(':');
  const std::string_view prefix =
      colon == std::string::npos ? std::string_view{} : std::string_view(name).substr(0, colon);
  for (const xml::Attribute& attribute : entry.attributes()) {
    const bool default_decl = attribute.name == "xmlns" && prefix.empty();
    const bool prefix_decl = !prefix.empty() &&
                             starts_with(attribute.name, "xmlns:") &&
                             std::string_view(attribute.name).substr(6) == prefix;
    if ((default_decl || prefix_decl) && is_12_era_namespace(attribute.value)) {
      return true;
    }
  }
  // In-process envelopes built without a self-declaration: fall back to the
  // conventional prefixes, as real lenient binders do when sniffing.
  return prefix == "wsa" || prefix == "wsse" || prefix == "xop";
}

namespace {

bool marked_must_understand(const xml::Element& entry) {
  for (const xml::Attribute& attribute : entry.attributes()) {
    const std::size_t colon = attribute.name.find(':');
    const std::string_view local = colon == std::string::npos
                                       ? std::string_view(attribute.name)
                                       : std::string_view(attribute.name).substr(colon + 1);
    if (local == "mustUnderstand" && (attribute.value == "1" || attribute.value == "true")) {
      return true;
    }
  }
  return false;
}

}  // namespace

VersionCoherence inspect_coherence(const Envelope& envelope) {
  VersionCoherence coherence;
  for (const xml::Element& entry : envelope.header_entries()) {
    const bool era12 = is_12_era_header(entry);
    const bool mu = marked_must_understand(entry);
    coherence.has_12_era_headers |= era12;
    coherence.has_12_era_mu_headers |= era12 && mu;
    coherence.has_unknown_mu_headers |= !era12 && mu;
  }
  return coherence;
}

Envelope make_version_mismatch_fault(SoapVersion responding_version, std::string reason) {
  return Envelope::make_fault({"soap:VersionMismatch", std::move(reason), ""},
                              responding_version);
}

}  // namespace wsx::soap
