// stream_frame.hpp — streaming walk of the SOAP envelope frame.
//
// Internal to wsx::soap: envelope.cpp (model build) and validate.cpp (the
// zero-DOM request sniffer) both consume envelopes straight off the pull
// token stream. This header holds the one walker that understands the
// frame — root / Header / Body / first payload — so the two consumers
// cannot disagree about which elements matter or how xml.* errors rank
// against soap.* semantic errors. Consumers only differ in what they do
// with header entries and the payload subtree (materialise a tree vs.
// record local names), which is what the two callbacks are for.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "common/result.hpp"
#include "soap/envelope.hpp"
#include "xml/node.hpp"
#include "xml/pull.hpp"
#include "xml/qname.hpp"
#include "xml/query.hpp"

namespace wsx::soap::detail {

/// Local part of a lexical name, mirroring Element::local_name().
inline std::string_view local_of(std::string_view lexical) {
  const std::size_t colon = lexical.find(':');
  return colon == std::string_view::npos ? lexical : lexical.substr(colon + 1);
}

/// What one streaming pass over an envelope learns about its frame.
struct EnvelopeFrame {
  /// Root name + attributes only — enough for NamespaceScope resolution of
  /// the root QName; no children are ever attached.
  xml::Element root_probe;
  bool have_body = false;
  bool have_payload = false;
  std::string payload_local;  ///< local name of the first Body payload
};

/// Walks a complete envelope document on `tok`. `on_header_entry(tok,
/// start)` and `on_payload(tok, start)` are invoked with the kStartElement
/// token of, respectively, each direct child element of the first Header
/// and the first child element of the first Body; each MUST consume exactly
/// that subtree (xml::collect_element or pull::skip_element) and return a
/// Result — its error aborts the walk. Everything else (duplicate
/// Header/Body elements, extra payloads, other root children, misc,
/// epilog) is skipped here.
///
/// Error parity with the DOM path: the whole document is drained before
/// the caller applies semantic checks, so any xml.* error anywhere in the
/// input surfaces first, exactly as parse-then-inspect behaved.
template <typename OnHeaderEntry, typename OnPayload>
Result<EnvelopeFrame> walk_envelope_frame(xml::pull::Tokenizer& tok,
                                          OnHeaderEntry&& on_header_entry,
                                          OnPayload&& on_payload) {
  EnvelopeFrame frame;

  // Prolog + misc, then the root start tag.
  for (;;) {
    const xml::pull::Token& token = tok.next();
    if (token.kind == xml::pull::TokenKind::kStartElement) {
      frame.root_probe = xml::Element{std::string(token.name)};
      if (token.attr_count > 0) {
        frame.root_probe.attributes().reserve(token.attr_count);
        for (std::size_t i = 0; i < token.attr_count; ++i) {
          frame.root_probe.attributes().push_back(
              xml::Attribute{std::string(token.attrs[i].name),
                             std::string(token.attrs[i].value)});
        }
      }
      break;
    }
    if (token.kind == xml::pull::TokenKind::kError ||
        token.kind == xml::pull::TokenKind::kNeedMore ||
        token.kind == xml::pull::TokenKind::kEndDocument) {
      return tok.error();
    }
    // kStartDocument / kComment / kPi: not part of the frame.
  }

  bool have_header = false;
  // Direct children of the root.
  for (bool root_open = true; root_open;) {
    const xml::pull::Token& token = tok.next();
    switch (token.kind) {
      case xml::pull::TokenKind::kStartElement: {
        const std::string_view local = local_of(token.name);
        if (local == "Header" && !have_header) {
          have_header = true;
          if (Result<bool> walked = [&]() -> Result<bool> {
                for (;;) {
                  const xml::pull::Token& entry = tok.next();
                  if (entry.kind == xml::pull::TokenKind::kEndElement) return true;
                  if (entry.kind == xml::pull::TokenKind::kStartElement) {
                    Result<bool> consumed = on_header_entry(tok, entry);
                    if (!consumed.ok()) return consumed.error();
                  } else if (entry.kind == xml::pull::TokenKind::kError ||
                             entry.kind == xml::pull::TokenKind::kNeedMore) {
                    return tok.error();
                  }
                }
              }();
              !walked.ok()) {
            return walked.error();
          }
        } else if (local == "Body" && !frame.have_body) {
          frame.have_body = true;
          for (bool body_open = true; body_open;) {
            const xml::pull::Token& child = tok.next();
            switch (child.kind) {
              case xml::pull::TokenKind::kStartElement: {
                Result<bool> consumed = [&]() -> Result<bool> {
                  if (frame.have_payload) return xml::pull::skip_element(tok, child);
                  frame.have_payload = true;
                  frame.payload_local = std::string(local_of(child.name));
                  return on_payload(tok, child);
                }();
                if (!consumed.ok()) return consumed.error();
                break;
              }
              case xml::pull::TokenKind::kEndElement:
                body_open = false;
                break;
              case xml::pull::TokenKind::kError:
              case xml::pull::TokenKind::kNeedMore:
                return tok.error();
              default:
                break;  // text/CDATA/comments/PIs inside Body
            }
          }
        } else {
          Result<bool> skipped = xml::pull::skip_element(tok, token);
          if (!skipped.ok()) return skipped.error();
        }
        break;
      }
      case xml::pull::TokenKind::kEndElement:
        root_open = false;
        break;
      case xml::pull::TokenKind::kError:
      case xml::pull::TokenKind::kNeedMore:
        return tok.error();
      default:
        break;  // text/CDATA/comments/PIs directly under the root
    }
  }

  // Epilog: drain so trailing xml.* errors keep priority over soap.* ones.
  for (;;) {
    const xml::pull::Token& token = tok.next();
    if (token.kind == xml::pull::TokenKind::kEndDocument) return frame;
    if (token.kind == xml::pull::TokenKind::kError ||
        token.kind == xml::pull::TokenKind::kNeedMore) {
      return tok.error();
    }
  }
}

/// The semantic checks the DOM path applied after parsing, in the same
/// order: root QName resolution → version → Body presence → payload
/// presence. Returns the envelope version or the first soap.* error.
inline Result<SoapVersion> check_envelope_frame(const EnvelopeFrame& frame) {
  xml::NamespaceScope scope;
  scope.push(frame.root_probe);
  const std::optional<xml::QName> root_name = scope.resolve(frame.root_probe.name());
  if (!root_name || root_name->local_name() != "Envelope") {
    return Error{"soap.not-an-envelope", "root element is not a SOAP Envelope"};
  }
  SoapVersion version;
  // Interned-id comparisons: the QName constructor already classified the
  // URI, so the per-envelope version check is two integer compares.
  if (root_name->namespace_id() == xml::ns::Id::kSoapEnvelope) {
    version = SoapVersion::k11;
  } else if (root_name->namespace_id() == xml::ns::Id::kSoap12Envelope) {
    version = SoapVersion::k12;
  } else {
    return Error{"soap.version-mismatch",
                 "unknown envelope namespace '" + root_name->namespace_uri() + "'"};
  }
  if (!frame.have_body) return Error{"soap.missing-body", "envelope has no soap:Body"};
  if (!frame.have_payload) return Error{"soap.empty-body", "soap:Body has no payload element"};
  return version;
}

}  // namespace wsx::soap::detail
