#include "soap/message.hpp"

#include "common/strings.hpp"

namespace wsx::soap {
namespace {

/// Finds the portType operation by name across all portTypes.
const wsdl::Operation* find_operation(const wsdl::Definitions& defs, const std::string& name) {
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& operation : port_type.operations) {
      if (operation.name == name) return &operation;
    }
  }
  return nullptr;
}

}  // namespace

Result<Envelope> build_request(const wsdl::Definitions& defs, const std::string& operation,
                               const std::vector<Argument>& arguments) {
  const wsdl::Operation* op = find_operation(defs, operation);
  if (op == nullptr) {
    return Error{"soap.unknown-operation",
                 "operation '" + operation + "' is not described by the WSDL"};
  }
  xml::Element payload{"m:" + op->name};
  payload.declare_namespace("m", defs.target_namespace);
  for (const Argument& argument : arguments) {
    payload.add_element("m:" + argument.name).add_text(argument.value);
  }
  return Envelope{std::move(payload)};
}

Result<Envelope> build_structured_request(const wsdl::Definitions& defs,
                                          const std::string& operation,
                                          const std::vector<Argument>& fields) {
  const wsdl::Operation* op = find_operation(defs, operation);
  if (op == nullptr) {
    return Error{"soap.unknown-operation",
                 "operation '" + operation + "' is not described by the WSDL"};
  }
  xml::Element payload{"m:" + op->name};
  payload.declare_namespace("m", defs.target_namespace);
  xml::Element& argument = payload.add_element("m:arg0");
  for (const Argument& field : fields) {
    argument.add_element("m:" + field.name).add_text(field.value);
  }
  return Envelope{std::move(payload)};
}

std::vector<Argument> structured_fields(const Envelope& envelope) {
  std::vector<Argument> fields;
  const xml::Element* argument = envelope.body().child("arg0");
  if (argument == nullptr) return fields;
  for (const xml::Element* field : argument->child_elements()) {
    fields.push_back({field->local_name(), field->text()});
  }
  return fields;
}

Result<Envelope> build_response(const wsdl::Definitions& defs, const std::string& operation,
                                const std::string& return_value) {
  const wsdl::Operation* op = find_operation(defs, operation);
  if (op == nullptr) {
    return Error{"soap.unknown-operation",
                 "operation '" + operation + "' is not described by the WSDL"};
  }
  if (op->output_message.empty()) {
    return Error{"soap.one-way", "operation '" + operation + "' declares no output"};
  }
  xml::Element payload{"m:" + op->name + "Response"};
  payload.declare_namespace("m", defs.target_namespace);
  payload.add_element("m:return").add_text(return_value);
  return Envelope{std::move(payload)};
}

Result<std::string> request_operation(const Envelope& envelope) {
  if (envelope.is_fault()) {
    return Error{"soap.fault-body", "request envelope carries a fault"};
  }
  return envelope.body().local_name();
}

std::vector<Argument> request_arguments(const Envelope& envelope) {
  std::vector<Argument> arguments;
  for (const xml::Element* child : envelope.body().child_elements()) {
    arguments.push_back({child->local_name(), child->text()});
  }
  return arguments;
}

Result<std::string> response_value(const Envelope& envelope) {
  if (envelope.is_fault()) {
    return Error{"soap.fault",
                 envelope.fault().fault_code + ": " + envelope.fault().fault_string};
  }
  if (!ends_with(envelope.body().local_name(), "Response")) {
    return Error{"soap.not-a-response", "body payload is not an operation response"};
  }
  const xml::Element* return_element = envelope.body().child("return");
  if (return_element == nullptr) {
    return Error{"soap.missing-return", "response has no return element"};
  }
  return return_element->text();
}

}  // namespace wsx::soap
