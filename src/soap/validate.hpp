// validate.hpp — runtime message-conformance checking.
//
// The paper's related work (§II) discusses sniffer-based conformance
// checking of messages against the service contract [Ramsokul & Sowmya];
// this module implements that idea for our stacks: given a description and
// an envelope, verify that the payload is one the contract allows. The
// communication study uses it to attribute wire-level failures ("the
// client sent something the WSDL never described") independently of the
// server's behaviour.
#pragma once

#include <string>
#include <vector>

#include "soap/envelope.hpp"
#include "wsdl/model.hpp"

namespace wsx::soap {

struct ValidationIssue {
  std::string code;     ///< e.g. "msg.unknown-operation", "msg.unexpected-argument"
  std::string message;
  friend bool operator==(const ValidationIssue&, const ValidationIssue&) = default;
};

/// Checks a request envelope against `defs`: the body payload must be the
/// wrapper element of a described operation, and its children must match
/// the wrapper's declared particles (no unexpected elements, no missing
/// required ones).
std::vector<ValidationIssue> validate_request(const wsdl::Definitions& defs,
                                              const Envelope& envelope);

/// Checks a response envelope for `operation`: the payload must be the
/// "<operation>Response" wrapper with the declared return element (faults
/// validate trivially — they are always permitted).
std::vector<ValidationIssue> validate_response(const wsdl::Definitions& defs,
                                               const std::string& operation,
                                               const Envelope& envelope);

}  // namespace wsx::soap
