// validate.hpp — runtime message-conformance checking.
//
// The paper's related work (§II) discusses sniffer-based conformance
// checking of messages against the service contract [Ramsokul & Sowmya];
// this module implements that idea for our stacks: given a description and
// an envelope, verify that the payload is one the contract allows. The
// communication study uses it to attribute wire-level failures ("the
// client sent something the WSDL never described") independently of the
// server's behaviour.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "soap/envelope.hpp"
#include "wsdl/model.hpp"

namespace wsx::soap {

struct ValidationIssue {
  std::string code;     ///< e.g. "msg.unknown-operation", "msg.unexpected-argument"
  std::string message;
  friend bool operator==(const ValidationIssue&, const ValidationIssue&) = default;
};

/// Checks a request envelope against `defs`: the body payload must be the
/// wrapper element of a described operation, and its children must match
/// the wrapper's declared particles (no unexpected elements, no missing
/// required ones).
std::vector<ValidationIssue> validate_request(const wsdl::Definitions& defs,
                                              const Envelope& envelope);

/// Zero-DOM sniffer: equivalent to soap::parse(text) followed by
/// validate_request(defs, envelope) — a parse failure (xml.* / soap.*)
/// returns that error, success returns the validation issues — but runs as
/// one streaming pass that records only local names, materialising no tree
/// at all. Honors the --no-stream escape hatch by falling back to the
/// parse-then-validate pair.
Result<std::vector<ValidationIssue>> validate_request_text(const wsdl::Definitions& defs,
                                                           std::string_view text);

/// Checks a response envelope for `operation`: the payload must be the
/// "<operation>Response" wrapper with the declared return element (faults
/// validate trivially — they are always permitted).
std::vector<ValidationIssue> validate_response(const wsdl::Definitions& defs,
                                               const std::string& operation,
                                               const Envelope& envelope);

}  // namespace wsx::soap
