// http.hpp — a minimal in-process model of the HTTP exchange SOAP rides on.
//
// The communication-step extension moves envelopes between client and
// server models through this wire: requests carry Content-Type and
// SOAPAction headers exactly like SOAP-over-HTTP POST, and servers apply
// the same header checks real stacks do.
//
// Header semantics (pinned — the chaos wire's header-drop/duplicate faults
// depend on them):
//   * lookup is case-insensitive and FIRST-WINS: `header(name)` returns the
//     value of the first matching entry, later duplicates are ignored;
//   * `set_header` upserts the first matching entry and leaves any later
//     duplicates in place;
//   * `add_header` always appends, so it can create duplicates;
//   * the `headers` vector preserves insertion order on serialization.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace wsx::soap {

struct HttpHeader {
  std::string name;   ///< case-insensitive on lookup
  std::string value;
  friend bool operator==(const HttpHeader&, const HttpHeader&) = default;
};

struct HttpRequest {
  std::string method{"POST"};
  std::string url;
  std::vector<HttpHeader> headers;
  std::string body;

  std::optional<std::string> header(std::string_view name) const;  ///< first-wins
  void set_header(std::string name, std::string value);  ///< upserts first match
  void add_header(std::string name, std::string value);  ///< appends (may duplicate)
  std::size_t remove_header(std::string_view name);      ///< removes all matches
};

struct HttpResponse {
  int status = 200;
  std::vector<HttpHeader> headers;
  std::string body;

  std::optional<std::string> header(std::string_view name) const;  ///< first-wins
  void set_header(std::string name, std::string value);  ///< upserts first match
  void add_header(std::string name, std::string value);  ///< appends (may duplicate)
  std::size_t remove_header(std::string_view name);      ///< removes all matches

  bool ok() const { return status >= 200 && status < 300; }
  /// Transport-level status classes: a 4xx means the request itself was
  /// refused (retrying is pointless), a 5xx means the server side failed
  /// (the class real stacks consider retryable for idempotent calls).
  bool is_client_error() const { return status >= 400 && status < 500; }
  bool is_server_error() const { return status >= 500 && status < 600; }
  /// 2 for 2xx, 4 for 4xx, 5 for 5xx, ...
  int status_class() const { return status / 100; }
};

/// Builds the canonical SOAP 1.1 POST for `envelope_text`.
HttpRequest make_soap_request(std::string url, std::string soap_action,
                              std::string envelope_text);

/// Wraps an envelope into the matching HTTP response (500 for faults, as
/// SOAP 1.1 over HTTP requires).
HttpResponse make_soap_response(std::string envelope_text, bool is_fault);

}  // namespace wsx::soap
