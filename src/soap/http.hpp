// http.hpp — a minimal in-process model of the HTTP exchange SOAP rides on.
//
// The communication-step extension moves envelopes between client and
// server models through this wire: requests carry Content-Type and
// SOAPAction headers exactly like SOAP-over-HTTP POST, and servers apply
// the same header checks real stacks do.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace wsx::soap {

struct HttpHeader {
  std::string name;   ///< case-insensitive on lookup
  std::string value;
  friend bool operator==(const HttpHeader&, const HttpHeader&) = default;
};

struct HttpRequest {
  std::string method{"POST"};
  std::string url;
  std::vector<HttpHeader> headers;
  std::string body;

  std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string name, std::string value);
};

struct HttpResponse {
  int status = 200;
  std::vector<HttpHeader> headers;
  std::string body;

  std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string name, std::string value);

  bool ok() const { return status >= 200 && status < 300; }
};

/// Builds the canonical SOAP 1.1 POST for `envelope_text`.
HttpRequest make_soap_request(std::string url, std::string soap_action,
                              std::string envelope_text);

/// Wraps an envelope into the matching HTTP response (500 for faults, as
/// SOAP 1.1 over HTTP requires).
HttpResponse make_soap_response(std::string envelope_text, bool is_fault);

}  // namespace wsx::soap
