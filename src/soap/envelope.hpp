// envelope.hpp — the SOAP 1.1 and 1.2 envelope model.
//
// The paper scopes its study to the description/generation/compilation
// steps; Communication (4) and Execution (5) are listed as future work.
// This module implements that future work for our simulated stacks: it
// carries application payloads between generated client artifacts and the
// server framework models. Both envelope versions are first-class: faults
// take the per-version shape (1.1 faultcode/faultstring vs 1.2
// Code/Value + Reason/Text), and mustUnderstand header semantics are
// modelled for the mixed-version robustness axis (soap/version.hpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "xml/node.hpp"

namespace wsx::soap {

/// Envelope namespace versions. The 2014 study runs entirely on SOAP 1.1;
/// 1.2 is a full envelope model (fault Code/Reason shape, version-mismatch
/// faults) driving the mixed-version robustness axis.
enum class SoapVersion { k11, k12 };

const char* to_string(SoapVersion version);

/// Namespace URI of a version's envelope.
std::string_view envelope_namespace(SoapVersion version);

/// soap:Fault — the standard failure payload.
struct Fault {
  std::string fault_code;    ///< e.g. "soap:Client", "soap:Server"
  std::string fault_string;  ///< human-readable reason
  std::string detail;        ///< optional application detail
  friend bool operator==(const Fault&, const Fault&) = default;
};

/// The SOAP 1.2 spelling of a fault code: the 1.1 code values map onto the
/// renamed 1.2 ones (Client→Sender, Server→Receiver) under the "soapenv"
/// prefix; codes already in 1.2 form pass through unchanged.
std::string fault_code_for_12(std::string_view fault_code);

/// A SOAP 1.1 envelope: optional header entries plus exactly one body
/// payload (an application element or a fault).
class Envelope {
 public:
  Envelope() = default;
  explicit Envelope(xml::Element body_payload, SoapVersion version = SoapVersion::k11)
      : body_(std::move(body_payload)), version_(version) {}

  /// Builds a fault envelope in the version's own shape: 1.1 emits the
  /// unqualified faultcode/faultstring/detail children; 1.2 emits the
  /// qualified Code/Value + Reason/Text (+Detail) structure with the fault
  /// code normalized to its 1.2 spelling (fault_code_for_12).
  static Envelope make_fault(Fault fault, SoapVersion version = SoapVersion::k11);

  SoapVersion version() const { return version_; }
  void set_version(SoapVersion version) { version_ = version; }

  const std::vector<xml::Element>& header_entries() const { return headers_; }
  void add_header(xml::Element entry) { headers_.push_back(std::move(entry)); }
  /// Adds a header carrying soapenv:mustUnderstand="1" — receivers that do
  /// not understand it MUST fault.
  void add_must_understand_header(xml::Element entry);

  /// True if any header entry demands mustUnderstand processing.
  bool has_must_understand_headers() const;

  const xml::Element& body() const { return body_; }
  xml::Element& body() { return body_; }

  bool is_fault() const { return fault_.has_value(); }
  /// Precondition: is_fault().
  const Fault& fault() const { return *fault_; }

 private:
  std::vector<xml::Element> headers_;
  xml::Element body_;
  std::optional<Fault> fault_;
  SoapVersion version_ = SoapVersion::k11;
};

/// Serializes the envelope with the conventional "soapenv" prefix.
std::string write(const Envelope& envelope);

/// Parses an envelope; recognizes soap:Fault bodies. Error codes use the
/// "soap." prefix. By default this runs on the streaming pull tokenizer,
/// materialising only header entries and the body payload; see
/// set_streaming() for the DOM fallback.
Result<Envelope> parse(std::string_view text);

/// Process-wide toggle for the streaming envelope path (the `--no-stream`
/// escape hatch, mirroring `--no-parse-cache`). When disabled, parse()
/// materialises a full DOM first — the historical path. Both paths produce
/// identical envelopes and identical errors on every input; the flag
/// exists for triage, so it is deliberately excluded from supervised
/// campaign config fingerprints.
void set_streaming(bool enabled);
bool streaming_enabled();

}  // namespace wsx::soap
