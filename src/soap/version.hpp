// version.hpp — the mixed-version message model: hybrid profiles, version
// coherence inspection, and the per-version HTTP media types.
//
// The 2014 study ran entirely on SOAP 1.1, but the Digikoppeling WUS
// deployments documented in SNIPPETS.md hit a failure class it never
// reached: SOAP 1.1 envelopes carrying SOAP 1.2-era features (WS-Addressing
// and WS-Security headers, MTOM/XOP hints). Strict stacks reject such
// messages on version-coherence grounds; shaded-CXF-style deployments relax
// validation and accept them. This module gives the rest of the system one
// shared vocabulary for that space: which namespaces count as "1.2-era",
// how a client dresses a 1.1 envelope up in them (HybridProfile), what a
// receiver can observe about a message's coherence (VersionCoherence), and
// the per-version Content-Type values the HTTP layer must agree on.
#pragma once

#include <string>
#include <string_view>

#include "soap/envelope.hpp"
#include "xml/node.hpp"

namespace wsx::soap {

/// The WS-Addressing 1.0 namespace (wsa) — also interned in xml::ns.
inline constexpr std::string_view kWsAddressingNs = "http://www.w3.org/2005/08/addressing";
/// The WS-Security 1.0 secext namespace (wsse).
inline constexpr std::string_view kWsSecurityNs =
    "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd";
/// The XOP include namespace (MTOM attachment hints).
inline constexpr std::string_view kXopNs = "http://www.w3.org/2004/08/xop/include";

/// True when `namespace_uri` belongs to the SOAP 1.2-era extension stack
/// (WS-Addressing, WS-Security, XOP/MTOM) — the headers the Digikoppeling
/// profile layers onto SOAP 1.1 envelopes.
bool is_12_era_namespace(std::string_view namespace_uri);

/// The media type a coherent message of `version` travels under: "text/xml"
/// for SOAP 1.1, "application/soap+xml" for SOAP 1.2 (RFC 3902).
std::string_view content_type_for(SoapVersion version);

/// True when a Content-Type header value names the media type of `version`
/// (parameters such as charset are ignored).
bool content_type_matches(std::string_view content_type, SoapVersion version);

/// How much 1.2-era dressing a client's runtime puts on its 1.1 envelopes.
/// Each client model emits the profile its documented VersionPolicy
/// implies; see frameworks/version_policy.hpp for the assignment.
enum class HybridProfile {
  kPure11,      ///< plain SOAP 1.1, no extension headers (the 2014 study)
  kAddressing,  ///< + WS-Addressing Action/MessageID headers, not marked
                ///< mustUnderstand — relaxed receivers may ignore them
  kSecured,     ///< + wsse:Security marked mustUnderstand (and wsa) — the
                ///< Digikoppeling WUS shape only shaded receivers accept
};
inline constexpr std::size_t kHybridProfileCount = 3;

const char* to_string(HybridProfile profile);

/// Decorates a SOAP 1.1 envelope with the profile's extension headers.
/// kPure11 is a no-op; the added headers declare their namespaces on
/// themselves so coherence inspection survives a serialize/parse
/// round-trip. `operation` seeds the wsa:Action value.
void apply_hybrid_profile(Envelope& envelope, HybridProfile profile,
                          std::string_view operation);

/// True when a header entry lives in a 1.2-era extension namespace. The
/// check resolves the entry's own xmlns declarations (the wire shape) and
/// falls back to the conventional prefixes (wsa/wsse/xop) for in-process
/// envelopes whose declarations live on an ancestor.
bool is_12_era_header(const xml::Element& entry);

/// What a receiver can observe about a message's version coherence.
struct VersionCoherence {
  bool has_12_era_headers = false;     ///< any wsa/wsse/xop header entry
  bool has_12_era_mu_headers = false;  ///< such an entry marked mustUnderstand
  bool has_unknown_mu_headers = false; ///< mustUnderstand outside that set
};

VersionCoherence inspect_coherence(const Envelope& envelope);

/// The standard version-mismatch fault a `version` endpoint answers with
/// (1.1 "soap:VersionMismatch" / 1.2 "soapenv:VersionMismatch" shape).
Envelope make_version_mismatch_fault(SoapVersion responding_version,
                                     std::string reason);

}  // namespace wsx::soap
