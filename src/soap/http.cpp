#include "soap/http.hpp"

#include "common/strings.hpp"

namespace wsx::soap {
namespace {

std::optional<std::string> find_header(const std::vector<HttpHeader>& headers,
                                       std::string_view name) {
  for (const HttpHeader& header : headers) {
    if (iequals(header.name, name)) return header.value;
  }
  return std::nullopt;
}

// Upserts the FIRST matching entry; later duplicates stay untouched so a
// duplicated header keeps its wire shape (lookup is first-wins anyway).
void upsert_header(std::vector<HttpHeader>& headers, std::string name, std::string value) {
  for (HttpHeader& header : headers) {
    if (iequals(header.name, name)) {
      header.value = std::move(value);
      return;
    }
  }
  headers.push_back({std::move(name), std::move(value)});
}

std::size_t erase_headers(std::vector<HttpHeader>& headers, std::string_view name) {
  return std::erase_if(headers, [name](const HttpHeader& header) {
    return iequals(header.name, name);
  });
}

}  // namespace

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

void HttpRequest::set_header(std::string name, std::string value) {
  upsert_header(headers, std::move(name), std::move(value));
}

void HttpRequest::add_header(std::string name, std::string value) {
  headers.push_back({std::move(name), std::move(value)});
}

std::size_t HttpRequest::remove_header(std::string_view name) {
  return erase_headers(headers, name);
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

void HttpResponse::set_header(std::string name, std::string value) {
  upsert_header(headers, std::move(name), std::move(value));
}

void HttpResponse::add_header(std::string name, std::string value) {
  headers.push_back({std::move(name), std::move(value)});
}

std::size_t HttpResponse::remove_header(std::string_view name) {
  return erase_headers(headers, name);
}

HttpRequest make_soap_request(std::string url, std::string soap_action,
                              std::string envelope_text) {
  HttpRequest request;
  request.url = std::move(url);
  request.body = std::move(envelope_text);
  request.set_header("Content-Type", "text/xml; charset=utf-8");
  // SOAP 1.1 requires the SOAPAction header; its value is quoted.
  request.set_header("SOAPAction", "\"" + soap_action + "\"");
  return request;
}

HttpResponse make_soap_response(std::string envelope_text, bool is_fault) {
  HttpResponse response;
  response.status = is_fault ? 500 : 200;
  response.body = std::move(envelope_text);
  response.set_header("Content-Type", "text/xml; charset=utf-8");
  return response;
}

}  // namespace wsx::soap
