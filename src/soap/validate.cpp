#include "soap/validate.hpp"

#include <algorithm>

#include "soap/stream_frame.hpp"
#include "xml/pull.hpp"

namespace wsx::soap {
namespace {

/// Finds a top-level schema element declaration by local name across the
/// description's schemas.
const xsd::ElementDecl* find_wrapper(const wsdl::Definitions& defs, std::string_view name) {
  for (const xsd::Schema& schema : defs.schemas) {
    if (const xsd::ElementDecl* element = schema.find_element(std::string(name))) {
      return element;
    }
  }
  return nullptr;
}

/// Validates payload child local names against the wrapper's content
/// model. Works on names only so the DOM path and the streaming sniffer
/// share it verbatim.
void validate_child_names(const xsd::ElementDecl& wrapper,
                          const std::vector<std::string>& child_names,
                          std::vector<ValidationIssue>& issues) {
  if (!wrapper.inline_type.has_value()) return;
  const std::vector<const xsd::ElementDecl*> declared = wrapper.inline_type->elements();

  // Unexpected arguments.
  for (const std::string& child : child_names) {
    const bool known =
        std::any_of(declared.begin(), declared.end(),
                    [&](const xsd::ElementDecl* decl) { return decl->name == child; });
    if (!known) {
      issues.push_back({"msg.unexpected-argument",
                        "element '" + child + "' is not declared by wrapper '" +
                            wrapper.name + "'"});
    }
  }
  // Missing required arguments.
  for (const xsd::ElementDecl* decl : declared) {
    if (decl->min_occurs == 0) continue;
    const bool present = std::any_of(
        child_names.begin(), child_names.end(),
        [&](const std::string& child) { return child == decl->name; });
    if (!present) {
      issues.push_back({"msg.missing-argument",
                        "required element '" + decl->name + "' of wrapper '" + wrapper.name +
                            "' is absent"});
    }
  }
}

void validate_children(const xsd::ElementDecl& wrapper, const xml::Element& payload,
                       std::vector<ValidationIssue>& issues) {
  std::vector<std::string> child_names;
  for (const xml::Element* child : payload.child_elements()) {
    child_names.push_back(child->local_name());
  }
  validate_child_names(wrapper, child_names, issues);
}

/// The request checks downstream of fault detection, shared by
/// validate_request and the streaming validate_request_text.
std::vector<ValidationIssue> validate_request_parts(const wsdl::Definitions& defs,
                                                    const std::string& operation,
                                                    const std::vector<std::string>& child_names) {
  std::vector<ValidationIssue> issues;
  bool described = false;
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& candidate : port_type.operations) {
      if (candidate.name == operation) described = true;
    }
  }
  if (!described) {
    issues.push_back({"msg.unknown-operation",
                      "payload '" + operation + "' matches no described operation"});
    return issues;
  }
  if (const xsd::ElementDecl* wrapper = find_wrapper(defs, operation)) {
    validate_child_names(*wrapper, child_names, issues);
  } else {
    issues.push_back({"msg.undeclared-wrapper",
                      "no schema element declared for wrapper '" + operation + "'"});
  }
  return issues;
}

}  // namespace

std::vector<ValidationIssue> validate_request(const wsdl::Definitions& defs,
                                              const Envelope& envelope) {
  std::vector<ValidationIssue> issues;
  if (envelope.is_fault()) {
    issues.push_back({"msg.fault-request", "a request must not carry a fault body"});
    return issues;
  }
  std::vector<std::string> child_names;
  for (const xml::Element* child : envelope.body().child_elements()) {
    child_names.push_back(child->local_name());
  }
  return validate_request_parts(defs, envelope.body().local_name(), child_names);
}

Result<std::vector<ValidationIssue>> validate_request_text(const wsdl::Definitions& defs,
                                                           std::string_view text) {
  if (!streaming_enabled()) {
    Result<Envelope> envelope = parse(text);
    if (!envelope.ok()) return envelope.error();
    return validate_request(defs, envelope.value());
  }

  xml::pull::Tokenizer tok{text};
  std::vector<std::string> child_names;
  Result<detail::EnvelopeFrame> frame = detail::walk_envelope_frame(
      tok,
      [](xml::pull::Tokenizer& t, const xml::pull::Token& start) {
        return xml::pull::skip_element(t, start);
      },
      [&](xml::pull::Tokenizer& t, const xml::pull::Token& start) -> Result<bool> {
        (void)start;  // already consumed; its synthesized end keeps depth uniform
        std::size_t depth = 1;
        for (;;) {
          const xml::pull::Token& token = t.next();
          switch (token.kind) {
            case xml::pull::TokenKind::kStartElement:
              if (depth == 1) child_names.push_back(std::string(detail::local_of(token.name)));
              ++depth;
              break;
            case xml::pull::TokenKind::kEndElement:
              if (--depth == 0) return true;
              break;
            case xml::pull::TokenKind::kError:
            case xml::pull::TokenKind::kNeedMore:
              return t.error();
            default:
              break;
          }
        }
      });
  if (!frame.ok()) return frame.error();
  Result<SoapVersion> version = detail::check_envelope_frame(frame.value());
  if (!version.ok()) return version.error();

  std::vector<ValidationIssue> issues;
  if (frame.value().payload_local == "Fault") {
    issues.push_back({"msg.fault-request", "a request must not carry a fault body"});
    return issues;
  }
  return validate_request_parts(defs, frame.value().payload_local, child_names);
}

std::vector<ValidationIssue> validate_response(const wsdl::Definitions& defs,
                                               const std::string& operation,
                                               const Envelope& envelope) {
  std::vector<ValidationIssue> issues;
  if (envelope.is_fault()) return issues;  // faults are always permitted
  const std::string expected = operation + "Response";
  if (envelope.body().local_name() != expected) {
    issues.push_back({"msg.wrong-response-wrapper",
                      "expected '" + expected + "', got '" + envelope.body().local_name() +
                          "'"});
    return issues;
  }
  if (const xsd::ElementDecl* wrapper = find_wrapper(defs, expected)) {
    validate_children(*wrapper, envelope.body(), issues);
  }
  return issues;
}

}  // namespace wsx::soap
