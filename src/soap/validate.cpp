#include "soap/validate.hpp"

#include <algorithm>

namespace wsx::soap {
namespace {

/// Finds a top-level schema element declaration by local name across the
/// description's schemas.
const xsd::ElementDecl* find_wrapper(const wsdl::Definitions& defs, std::string_view name) {
  for (const xsd::Schema& schema : defs.schemas) {
    if (const xsd::ElementDecl* element = schema.find_element(std::string(name))) {
      return element;
    }
  }
  return nullptr;
}

/// Validates the children of `payload` against the wrapper's content model.
void validate_children(const xsd::ElementDecl& wrapper, const xml::Element& payload,
                       std::vector<ValidationIssue>& issues) {
  if (!wrapper.inline_type.has_value()) return;
  const std::vector<const xsd::ElementDecl*> declared = wrapper.inline_type->elements();

  // Unexpected arguments.
  for (const xml::Element* child : payload.child_elements()) {
    const bool known = std::any_of(
        declared.begin(), declared.end(),
        [&](const xsd::ElementDecl* decl) { return decl->name == child->local_name(); });
    if (!known) {
      issues.push_back({"msg.unexpected-argument",
                        "element '" + child->local_name() +
                            "' is not declared by wrapper '" + wrapper.name + "'"});
    }
  }
  // Missing required arguments.
  for (const xsd::ElementDecl* decl : declared) {
    if (decl->min_occurs == 0) continue;
    const auto children = payload.child_elements();
    const bool present = std::any_of(
        children.begin(), children.end(),
        [&](const xml::Element* child) { return child->local_name() == decl->name; });
    if (!present) {
      issues.push_back({"msg.missing-argument",
                        "required element '" + decl->name + "' of wrapper '" + wrapper.name +
                            "' is absent"});
    }
  }
}

}  // namespace

std::vector<ValidationIssue> validate_request(const wsdl::Definitions& defs,
                                              const Envelope& envelope) {
  std::vector<ValidationIssue> issues;
  if (envelope.is_fault()) {
    issues.push_back({"msg.fault-request", "a request must not carry a fault body"});
    return issues;
  }
  const std::string operation = envelope.body().local_name();
  bool described = false;
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& candidate : port_type.operations) {
      if (candidate.name == operation) described = true;
    }
  }
  if (!described) {
    issues.push_back({"msg.unknown-operation",
                      "payload '" + operation + "' matches no described operation"});
    return issues;
  }
  if (const xsd::ElementDecl* wrapper = find_wrapper(defs, operation)) {
    validate_children(*wrapper, envelope.body(), issues);
  } else {
    issues.push_back({"msg.undeclared-wrapper",
                      "no schema element declared for wrapper '" + operation + "'"});
  }
  return issues;
}

std::vector<ValidationIssue> validate_response(const wsdl::Definitions& defs,
                                               const std::string& operation,
                                               const Envelope& envelope) {
  std::vector<ValidationIssue> issues;
  if (envelope.is_fault()) return issues;  // faults are always permitted
  const std::string expected = operation + "Response";
  if (envelope.body().local_name() != expected) {
    issues.push_back({"msg.wrong-response-wrapper",
                      "expected '" + expected + "', got '" + envelope.body().local_name() +
                          "'"});
    return issues;
  }
  if (const xsd::ElementDecl* wrapper = find_wrapper(defs, expected)) {
    validate_children(*wrapper, envelope.body(), issues);
  }
  return issues;
}

}  // namespace wsx::soap
