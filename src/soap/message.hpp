// message.hpp — building SOAP request/response payloads from a WSDL
// operation description (document/literal wrapped convention).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "soap/envelope.hpp"
#include "wsdl/model.hpp"

namespace wsx::soap {

/// One named argument of an invocation; values travel as text (the study's
/// echo services move opaque serialized payloads).
struct Argument {
  std::string name;
  std::string value;
  friend bool operator==(const Argument&, const Argument&) = default;
};

/// Builds a document/literal request envelope for `operation` of `defs`:
/// the body payload is the operation's wrapper element in the WSDL target
/// namespace with one child element per argument.
Result<Envelope> build_request(const wsdl::Definitions& defs, const std::string& operation,
                               const std::vector<Argument>& arguments);

/// Builds a *structured* request: the wrapper's arg0 element carries one
/// child element per field of the parameter type (how typed proxies
/// marshal bean arguments). The receiving binder validates each field
/// against the schema (see ServerFramework::handle_request).
Result<Envelope> build_structured_request(const wsdl::Definitions& defs,
                                          const std::string& operation,
                                          const std::vector<Argument>& fields);

/// Extracts the field elements of a structured request's arg0 payload.
std::vector<Argument> structured_fields(const Envelope& envelope);

/// Builds the matching response envelope carrying `return_value` in the
/// conventional "<op>Response/return" shape.
Result<Envelope> build_response(const wsdl::Definitions& defs, const std::string& operation,
                                const std::string& return_value);

/// Extracts the operation name implied by a request envelope (the local
/// name of the body payload). Returns an error for fault bodies.
Result<std::string> request_operation(const Envelope& envelope);

/// Extracts the arguments of a request envelope payload.
std::vector<Argument> request_arguments(const Envelope& envelope);

/// Extracts the return value from a response envelope; errors on faults.
Result<std::string> response_value(const Envelope& envelope);

}  // namespace wsx::soap
