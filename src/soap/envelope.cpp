#include "soap/envelope.hpp"

#include "xml/parser.hpp"
#include "xml/query.hpp"
#include "xml/writer.hpp"

namespace wsx::soap {

const char* to_string(SoapVersion version) {
  return version == SoapVersion::k11 ? "SOAP 1.1" : "SOAP 1.2";
}

std::string_view envelope_namespace(SoapVersion version) {
  return version == SoapVersion::k11 ? xml::ns::kSoapEnvelope : xml::ns::kSoap12Envelope;
}

Envelope Envelope::make_fault(Fault fault, SoapVersion version) {
  Envelope envelope;
  envelope.version_ = version;
  xml::Element body{"soapenv:Fault"};
  if (version == SoapVersion::k11) {
    body.add_element("faultcode").add_text(fault.fault_code);
    body.add_element("faultstring").add_text(fault.fault_string);
    if (!fault.detail.empty()) body.add_element("detail").add_text(fault.detail);
  } else {
    // SOAP 1.2 fault structure: Code/Value, Reason/Text, Detail.
    body.add_element("soapenv:Code").add_element("soapenv:Value").add_text(fault.fault_code);
    body.add_element("soapenv:Reason")
        .add_element("soapenv:Text")
        .add_text(fault.fault_string);
    if (!fault.detail.empty()) {
      body.add_element("soapenv:Detail").add_text(fault.detail);
    }
  }
  envelope.body_ = std::move(body);
  envelope.fault_ = std::move(fault);
  return envelope;
}

void Envelope::add_must_understand_header(xml::Element entry) {
  entry.set_attribute("soapenv:mustUnderstand", "1");
  headers_.push_back(std::move(entry));
}

bool Envelope::has_must_understand_headers() const {
  for (const xml::Element& entry : headers_) {
    for (const xml::Attribute& attribute : entry.attributes()) {
      // The attribute is namespace-qualified; match on the local name as
      // real stacks do after resolution.
      const std::size_t colon = attribute.name.find(':');
      const std::string_view local = colon == std::string::npos
                                         ? std::string_view(attribute.name)
                                         : std::string_view(attribute.name).substr(colon + 1);
      if (local == "mustUnderstand" && (attribute.value == "1" || attribute.value == "true")) {
        return true;
      }
    }
  }
  return false;
}

std::string write(const Envelope& envelope) {
  xml::Element root{"soapenv:Envelope"};
  root.declare_namespace("soapenv", envelope_namespace(envelope.version()));
  if (!envelope.header_entries().empty()) {
    xml::Element& header = root.add_element("soapenv:Header");
    for (const xml::Element& entry : envelope.header_entries()) header.add_child(entry);
  }
  xml::Element& body = root.add_element("soapenv:Body");
  body.add_child(envelope.body());
  return xml::write(root);
}

Result<Envelope> parse(std::string_view text) {
  Result<xml::Element> root = xml::parse_element(text);
  if (!root.ok()) return root.error();

  xml::NamespaceScope scope;
  scope.push(root.value());
  std::optional<xml::QName> root_name = scope.resolve(root.value().name());
  if (!root_name || root_name->local_name() != "Envelope") {
    return Error{"soap.not-an-envelope", "root element is not a SOAP Envelope"};
  }
  SoapVersion version;
  if (root_name->namespace_uri() == xml::ns::kSoapEnvelope) {
    version = SoapVersion::k11;
  } else if (root_name->namespace_uri() == xml::ns::kSoap12Envelope) {
    version = SoapVersion::k12;
  } else {
    return Error{"soap.version-mismatch",
                 "unknown envelope namespace '" + root_name->namespace_uri() + "'"};
  }

  Envelope envelope;
  envelope.set_version(version);
  if (const xml::Element* header = root.value().child("Header")) {
    for (const xml::Element* entry : header->child_elements()) {
      envelope.add_header(*entry);
    }
  }
  const xml::Element* body = root.value().child("Body");
  if (body == nullptr) return Error{"soap.missing-body", "envelope has no soap:Body"};
  std::vector<const xml::Element*> payloads = body->child_elements();
  if (payloads.empty()) return Error{"soap.empty-body", "soap:Body has no payload element"};

  const xml::Element& payload = *payloads.front();
  if (payload.local_name() == "Fault") {
    Fault fault;
    if (version == SoapVersion::k11) {
      if (const xml::Element* code = payload.child("faultcode")) fault.fault_code = code->text();
      if (const xml::Element* reason = payload.child("faultstring")) {
        fault.fault_string = reason->text();
      }
      if (const xml::Element* detail = payload.child("detail")) fault.detail = detail->text();
    } else {
      if (const xml::Element* code = payload.child("Code")) {
        if (const xml::Element* value = code->child("Value")) fault.fault_code = value->text();
      }
      if (const xml::Element* reason = payload.child("Reason")) {
        if (const xml::Element* text_node = reason->child("Text")) {
          fault.fault_string = text_node->text();
        }
      }
      if (const xml::Element* detail = payload.child("Detail")) fault.detail = detail->text();
    }
    Envelope result = Envelope::make_fault(std::move(fault), version);
    for (const xml::Element& entry : envelope.header_entries()) result.add_header(entry);
    return result;
  }
  envelope.body() = payload;
  return envelope;
}

}  // namespace wsx::soap
