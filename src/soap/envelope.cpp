#include "soap/envelope.hpp"

#include <atomic>

#include "soap/stream_frame.hpp"
#include "xml/parser.hpp"
#include "xml/pull.hpp"
#include "xml/query.hpp"
#include "xml/writer.hpp"

namespace wsx::soap {

namespace {
std::atomic<bool> g_streaming{true};
}  // namespace

void set_streaming(bool enabled) { g_streaming.store(enabled, std::memory_order_relaxed); }
bool streaming_enabled() { return g_streaming.load(std::memory_order_relaxed); }

const char* to_string(SoapVersion version) {
  return version == SoapVersion::k11 ? "SOAP 1.1" : "SOAP 1.2";
}

std::string_view envelope_namespace(SoapVersion version) {
  return version == SoapVersion::k11 ? xml::ns::kSoapEnvelope : xml::ns::kSoap12Envelope;
}

std::string fault_code_for_12(std::string_view fault_code) {
  const std::size_t colon = fault_code.find(':');
  const std::string_view local =
      colon == std::string_view::npos ? fault_code : fault_code.substr(colon + 1);
  // SOAP 1.2 renamed the two application code values; the rest kept their
  // local names. Everything lives in the envelope namespace ("soapenv").
  if (local == "Client") return "soapenv:Sender";
  if (local == "Server") return "soapenv:Receiver";
  return "soapenv:" + std::string(local);
}

Envelope Envelope::make_fault(Fault fault, SoapVersion version) {
  Envelope envelope;
  envelope.version_ = version;
  xml::Element body{"soapenv:Fault"};
  if (version == SoapVersion::k11) {
    // 1.1 fault children are unqualified: faultcode/faultstring/detail.
    body.add_element("faultcode").add_text(fault.fault_code);
    body.add_element("faultstring").add_text(fault.fault_string);
    if (!fault.detail.empty()) body.add_element("detail").add_text(fault.detail);
  } else {
    // SOAP 1.2 fault structure: qualified Code/Value, Reason/Text, Detail,
    // with the code value normalized to its 1.2 spelling. The stored Fault
    // carries the normalized code too, so a write/parse round-trip of a 1.2
    // fault is the identity.
    fault.fault_code = fault_code_for_12(fault.fault_code);
    body.add_element("soapenv:Code").add_element("soapenv:Value").add_text(fault.fault_code);
    xml::Element& text =
        body.add_element("soapenv:Reason").add_element("soapenv:Text");
    text.set_attribute("xml:lang", "en");  // 1.2 requires xml:lang on Text
    text.add_text(fault.fault_string);
    if (!fault.detail.empty()) {
      body.add_element("soapenv:Detail").add_text(fault.detail);
    }
  }
  envelope.body_ = std::move(body);
  envelope.fault_ = std::move(fault);
  return envelope;
}

void Envelope::add_must_understand_header(xml::Element entry) {
  entry.set_attribute("soapenv:mustUnderstand", "1");
  headers_.push_back(std::move(entry));
}

bool Envelope::has_must_understand_headers() const {
  for (const xml::Element& entry : headers_) {
    for (const xml::Attribute& attribute : entry.attributes()) {
      // The attribute is namespace-qualified; match on the local name as
      // real stacks do after resolution.
      const std::size_t colon = attribute.name.find(':');
      const std::string_view local = colon == std::string::npos
                                         ? std::string_view(attribute.name)
                                         : std::string_view(attribute.name).substr(colon + 1);
      if (local == "mustUnderstand" && (attribute.value == "1" || attribute.value == "true")) {
        return true;
      }
    }
  }
  return false;
}

std::string write(const Envelope& envelope) {
  xml::Element root{"soapenv:Envelope"};
  root.declare_namespace("soapenv", envelope_namespace(envelope.version()));
  if (!envelope.header_entries().empty()) {
    xml::Element& header = root.add_element("soapenv:Header");
    for (const xml::Element& entry : envelope.header_entries()) header.add_child(entry);
  }
  xml::Element& body = root.add_element("soapenv:Body");
  body.add_child(envelope.body());
  return xml::write(root);
}

namespace {

/// Builds the Envelope model from its parts; shared by the DOM and
/// streaming paths so fault recognition cannot diverge between them.
Envelope assemble_envelope(SoapVersion version, std::vector<xml::Element> headers,
                           xml::Element payload) {
  if (payload.local_name() == "Fault") {
    Fault fault;
    if (version == SoapVersion::k11) {
      if (const xml::Element* code = payload.child("faultcode")) fault.fault_code = code->text();
      if (const xml::Element* reason = payload.child("faultstring")) {
        fault.fault_string = reason->text();
      }
      if (const xml::Element* detail = payload.child("detail")) fault.detail = detail->text();
    } else {
      if (const xml::Element* code = payload.child("Code")) {
        if (const xml::Element* value = code->child("Value")) fault.fault_code = value->text();
      }
      if (const xml::Element* reason = payload.child("Reason")) {
        if (const xml::Element* text_node = reason->child("Text")) {
          fault.fault_string = text_node->text();
        }
      }
      if (const xml::Element* detail = payload.child("Detail")) fault.detail = detail->text();
    }
    Envelope result = Envelope::make_fault(std::move(fault), version);
    for (xml::Element& entry : headers) result.add_header(std::move(entry));
    return result;
  }
  Envelope envelope;
  envelope.set_version(version);
  for (xml::Element& entry : headers) envelope.add_header(std::move(entry));
  envelope.body() = std::move(payload);
  return envelope;
}

/// The historical path: materialise the whole document, then inspect it.
Result<Envelope> parse_dom(std::string_view text) {
  Result<xml::Element> root = xml::parse_element(text);
  if (!root.ok()) return root.error();

  detail::EnvelopeFrame frame;
  frame.root_probe = xml::Element{root.value().name()};
  frame.root_probe.attributes() = root.value().attributes();

  std::vector<xml::Element> headers;
  if (const xml::Element* header = root.value().child("Header")) {
    for (const xml::Element* entry : header->child_elements()) headers.push_back(*entry);
  }
  std::optional<xml::Element> payload;
  if (const xml::Element* body = root.value().child("Body")) {
    frame.have_body = true;
    std::vector<const xml::Element*> payloads = body->child_elements();
    if (!payloads.empty()) {
      frame.have_payload = true;
      frame.payload_local = payloads.front()->local_name();
      payload = *payloads.front();
    }
  }
  Result<SoapVersion> version = detail::check_envelope_frame(frame);
  if (!version.ok()) return version.error();
  return assemble_envelope(version.value(), std::move(headers), std::move(*payload));
}

/// The hot path: one pass over the token stream; only header entries and
/// the first body payload are ever materialised.
Result<Envelope> parse_stream(std::string_view text) {
  xml::pull::Tokenizer tok{text};
  std::vector<xml::Element> headers;
  std::optional<xml::Element> payload;

  Result<detail::EnvelopeFrame> frame = detail::walk_envelope_frame(
      tok,
      [&](xml::pull::Tokenizer& t, const xml::pull::Token& start) -> Result<bool> {
        Result<xml::Element> entry = xml::collect_element(t, start);
        if (!entry.ok()) return entry.error();
        headers.push_back(std::move(entry.value()));
        return true;
      },
      [&](xml::pull::Tokenizer& t, const xml::pull::Token& start) -> Result<bool> {
        Result<xml::Element> element = xml::collect_element(t, start);
        if (!element.ok()) return element.error();
        payload = std::move(element.value());
        return true;
      });
  if (!frame.ok()) return frame.error();
  Result<SoapVersion> version = detail::check_envelope_frame(frame.value());
  if (!version.ok()) return version.error();
  return assemble_envelope(version.value(), std::move(headers), std::move(*payload));
}

}  // namespace

Result<Envelope> parse(std::string_view text) {
  return streaming_enabled() ? parse_stream(text) : parse_dom(text);
}

}  // namespace wsx::soap
