#include "obs/trace.hpp"

#include <algorithm>
#include <map>

#include "common/json.hpp"

namespace wsx::obs {
namespace {

/// Serialized attribute list, used both for export and as a sort
/// tie-breaker between same-named siblings.
std::string attributes_json(const SpanData& span) {
  json::ObjectWriter attributes;
  for (const auto& [key, value] : span.attributes) attributes.field(key, value);
  return attributes.str();
}

/// Canonical traversal order: indices into `spans`, parents before
/// children, siblings sorted by (name, attributes), with depth tracked
/// for rendering.
struct CanonicalNode {
  std::size_t index;
  std::size_t depth;
};

std::vector<CanonicalNode> canonical_order(const std::vector<SpanData>& spans) {
  std::map<SpanId, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;

  std::map<SpanId, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanId parent = spans[i].parent;
    if (parent == kNoSpan || by_id.find(parent) == by_id.end()) {
      roots.push_back(i);
    } else {
      children[parent].push_back(i);
    }
  }
  const auto canonical_less = [&spans](std::size_t a, std::size_t b) {
    if (spans[a].name != spans[b].name) return spans[a].name < spans[b].name;
    return attributes_json(spans[a]) < attributes_json(spans[b]);
  };
  std::sort(roots.begin(), roots.end(), canonical_less);
  for (auto& [parent, list] : children) std::sort(list.begin(), list.end(), canonical_less);

  std::vector<CanonicalNode> order;
  order.reserve(spans.size());
  // Iterative DFS; a stack entry is (span index, depth).
  std::vector<CanonicalNode> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) stack.push_back({*it, 0});
  while (!stack.empty()) {
    const CanonicalNode node = stack.back();
    stack.pop_back();
    order.push_back(node);
    const auto kids = children.find(spans[node.index].id);
    if (kids == children.end()) continue;
    for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
      stack.push_back({*it, node.depth + 1});
    }
  }
  return order;
}

}  // namespace

Tracer::Tracer(const Clock* clock)
    : clock_(clock != nullptr ? clock : &steady_clock()) {}

SpanId Tracer::begin_span(std::string_view name, SpanId parent) {
  const std::uint64_t now = clock_->now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanData span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::string(name);
  span.start_us = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::end_span(SpanId id) {
  if (id == kNoSpan) return;
  const std::uint64_t now = clock_->now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (SpanData& span : spans_) {
    if (span.id != id || span.ended) continue;
    span.end_us = now;
    span.ended = true;
    return;
  }
}

void Tracer::annotate(SpanId id, std::string_view key, std::string_view value) {
  if (id == kNoSpan) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (SpanData& span : spans_) {
    if (span.id != id) continue;
    span.attributes.emplace_back(std::string(key), std::string(value));
    return;
  }
}

std::vector<SpanData> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string Tracer::to_jsonl() const {
  const std::vector<SpanData> snapshot = spans();
  const std::vector<CanonicalNode> order = canonical_order(snapshot);
  // Renumber ids in canonical order so the export is independent of the
  // racy recording order.
  std::map<SpanId, std::size_t> canonical_id;
  for (std::size_t i = 0; i < order.size(); ++i) {
    canonical_id[snapshot[order[i].index].id] = i + 1;
  }
  std::string out;
  for (const CanonicalNode& node : order) {
    const SpanData& span = snapshot[node.index];
    const auto parent = canonical_id.find(span.parent);
    json::ObjectWriter line;
    line.field("id", canonical_id[span.id]);
    line.field("parent", parent == canonical_id.end() ? std::size_t{0} : parent->second);
    line.field("name", span.name);
    line.field("start_us", static_cast<std::size_t>(span.start_us));
    line.field("duration_us",
               static_cast<std::size_t>(span.ended ? span.end_us - span.start_us : 0));
    line.raw_field("attributes", attributes_json(span));
    out += line.str();
    out += '\n';
  }
  return out;
}

std::string Tracer::summary() const {
  const std::vector<SpanData> snapshot = spans();
  const std::vector<CanonicalNode> order = canonical_order(snapshot);
  std::string out;
  for (const CanonicalNode& node : order) {
    const SpanData& span = snapshot[node.index];
    out.append(node.depth * 2, ' ');
    out += span.name;
    if (span.ended) {
      const std::uint64_t duration = span.end_us - span.start_us;
      if (duration >= 1000) {
        out += "  " + std::to_string(duration / 1000) + "." +
               std::to_string(duration % 1000 / 100) + "ms";
      } else {
        out += "  " + std::to_string(duration) + "us";
      }
    }
    for (const auto& [key, value] : span.attributes) {
      out += "  " + key + "=" + value;
    }
    out += '\n';
  }
  return out;
}

std::string Tracer::shape() const {
  const std::vector<SpanData> snapshot = spans();
  std::string out;
  for (const CanonicalNode& node : canonical_order(snapshot)) {
    out.append(node.depth, '.');
    out += snapshot[node.index].name;
    out += '\n';
  }
  return out;
}

}  // namespace wsx::obs
