// metrics.hpp — the wsx::obs metric registry.
//
// A Registry owns named counters, gauges and histograms and exports them
// as one JSON document with stable field order (names are kept sorted), so
// exports diff cleanly across commits and runs. The determinism contract:
//
//   * counters and histogram observation *counts* are pure functions of
//     the campaign inputs — the same work produces the same numbers at
//     any worker count;
//   * histogram sums/extremes are durations read off the registry clock,
//     excluded from determinism comparisons (zero under a FixedClock);
//   * gauges hold runtime-dependent values (worker count, queue depth)
//     and are dropped from Export::kDeterministic.
//
// All mutation paths are thread-safe; campaigns hand out `Counter&`
// references to worker threads and add to them without locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/clock.hpp"

namespace wsx::obs {

/// Monotonically increasing count (tests run, faults injected, rule hits).
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (worker count, queue depth high-water).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is higher (high-water marks).
  void set_max(std::int64_t value) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram for microsecond durations. Bucket upper bounds
/// are hard-coded (0.1ms … 10s, then +inf) so two runs always export the
/// same shape.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 8;
  /// Upper bounds in microseconds; the last bucket is unbounded.
  static const std::uint64_t kBounds[kBucketCount - 1];

  void observe(std::uint64_t value_us);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  ///< 0 when empty
  std::uint64_t max() const;
  std::uint64_t bucket(std::size_t index) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t buckets_[kBucketCount] = {};
};

/// What an export includes. kDeterministic drops gauges and duration
/// fields that legitimately vary between runs (see header comment).
enum class Export { kFull, kDeterministic };

class ScopedTimer;

/// Named metric registry. Lookup creates on first use; references remain
/// valid for the registry's lifetime.
class Registry {
 public:
  /// `clock` drives ScopedTimer and duration observations; the default is
  /// the process steady clock. Tests pass a FixedClock.
  explicit Registry(const Clock* clock = nullptr);

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  const Clock& clock() const { return *clock_; }

  /// Starts a timer that records into `histogram(name)` when destroyed.
  ScopedTimer timer(std::string_view name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Names sorted; kDeterministic omits gauges and duration-valued fields.
  std::string to_json(Export mode = Export::kFull) const;

  /// Compact human-readable dump (one metric per line, sorted).
  std::string summary() const;

 private:
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII duration recorder. Null-registry-safe: every campaign creates
/// timers unconditionally and they no-op when metrics are off.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ScopedTimer(Histogram* histogram, const Clock* clock)
      : histogram_(histogram), clock_(clock),
        start_us_(clock != nullptr ? clock->now_us() : 0) {}
  ScopedTimer(ScopedTimer&& other) noexcept { *this = std::move(other); }
  ScopedTimer& operator=(ScopedTimer&& other) noexcept {
    stop();
    histogram_ = other.histogram_;
    clock_ = other.clock_;
    start_us_ = other.start_us_;
    other.histogram_ = nullptr;
    return *this;
  }
  ~ScopedTimer() { stop(); }

  /// Records the elapsed time now instead of at destruction.
  void stop();

 private:
  Histogram* histogram_ = nullptr;
  const Clock* clock_ = nullptr;
  std::uint64_t start_us_ = 0;
};

/// Null-safe timer: no-op when `registry` is null.
ScopedTimer timer(Registry* registry, std::string_view name);

/// Null-safe counter add: no-op when `registry` is null.
void add(Registry* registry, std::string_view name, std::uint64_t delta = 1);

}  // namespace wsx::obs
