// trace.hpp — span-tree tracing for the study pipelines.
//
// A Tracer collects spans (named, nested, attributed, timestamped on an
// obs::Clock) from any number of worker threads and exports the finished
// tree in *canonical* form: siblings sorted by name, span ids renumbered
// in canonical depth-first order. Canonicalization is what makes the
// export deterministic — workers race to record spans, but two runs of
// the same campaign at different worker counts produce the same tree
// shape, and (under a FixedClock) byte-identical JSONL.
//
// Span granularity across the campaigns: one root per run, one span per
// testing-phase step (a–d), one per server×client cell, one per chaos
// round, one per lint pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace wsx::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One recorded span, as stored (pre-canonicalization).
struct SpanData {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool ended = false;
};

class Span;

/// Thread-safe span collector. Campaigns receive a `Tracer*` that may be
/// null (tracing off); the Span RAII wrapper makes null-tracer call sites
/// zero-cost no-ops.
class Tracer {
 public:
  explicit Tracer(const Clock* clock = nullptr);

  const Clock& clock() const { return *clock_; }

  SpanId begin_span(std::string_view name, SpanId parent = kNoSpan);
  void end_span(SpanId id);
  void annotate(SpanId id, std::string_view key, std::string_view value);

  /// Snapshot of every recorded span, in recording order.
  std::vector<SpanData> spans() const;

  /// One JSON object per line, canonical order. Schema per line:
  ///   {"id":N,"parent":N,"name":S,"start_us":N,"duration_us":N,
  ///    "attributes":{...}}
  std::string to_jsonl() const;

  /// Indented tree with durations and attributes — the compact text
  /// summary `wsinterop profile` prints.
  std::string summary() const;

  /// Tree shape only (canonical DFS of names, no timing): the value the
  /// determinism test pack compares across worker counts.
  std::string shape() const;

 private:
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::vector<SpanData> spans_;
  SpanId next_id_ = 1;
};

/// RAII span handle. Default-constructed or null-tracer spans are inert,
/// so instrumented code never branches on whether tracing is enabled.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string_view name)
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->begin_span(name) : kNoSpan) {}
  Span(Tracer* tracer, std::string_view name, const Span& parent)
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->begin_span(name, parent.id()) : kNoSpan) {}
  Span(Tracer* tracer, std::string_view name, SpanId parent)
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->begin_span(name, parent) : kNoSpan) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    end();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.id_ = kNoSpan;
    return *this;
  }
  ~Span() { end(); }

  SpanId id() const { return id_; }
  void annotate(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->annotate(id_, key, value);
  }
  void annotate(std::string_view key, std::size_t value) {
    annotate(key, std::string_view(std::to_string(value)));
  }
  /// Ends the span now instead of at destruction.
  void end() {
    if (tracer_ != nullptr) tracer_->end_span(id_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = kNoSpan;
};

}  // namespace wsx::obs
