#include "obs/metrics.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace wsx::obs {

const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

const std::uint64_t Histogram::kBounds[Histogram::kBucketCount - 1] = {
    100, 1000, 10000, 100000, 1000000, 5000000, 10000000};

void Histogram::observe(std::uint64_t value_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value_us < min_) min_ = value_us;
  if (value_us > max_) max_ = value_us;
  ++count_;
  sum_ += value_us;
  std::size_t index = 0;
  while (index < kBucketCount - 1 && value_us > kBounds[index]) ++index;
  ++buckets_[index];
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::uint64_t Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::uint64_t Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

std::uint64_t Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index < kBucketCount ? buckets_[index] : 0;
}

Registry::Registry(const Clock* clock)
    : clock_(clock != nullptr ? clock : &steady_clock()) {}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

ScopedTimer Registry::timer(std::string_view name) {
  return ScopedTimer(&histogram(name), clock_);
}

std::string Registry::to_json(Export mode) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json::ObjectWriter counters;
  for (const auto& [name, counter] : counters_) {
    counters.field(name, static_cast<std::size_t>(counter->value()));
  }
  json::ObjectWriter histograms;
  for (const auto& [name, histogram] : histograms_) {
    json::ObjectWriter entry;
    entry.field("count", static_cast<std::size_t>(histogram->count()));
    entry.field("sum_us", static_cast<std::size_t>(histogram->sum()));
    if (mode == Export::kFull) {
      entry.field("min_us", static_cast<std::size_t>(histogram->min()));
      entry.field("max_us", static_cast<std::size_t>(histogram->max()));
      json::ArrayWriter buckets;
      for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
        buckets.raw_item(std::to_string(histogram->bucket(i)));
      }
      entry.raw_field("buckets", buckets.str());
    }
    histograms.raw_field(name, entry.str());
  }
  json::ObjectWriter root;
  root.raw_field("counters", counters.str());
  if (mode == Export::kFull) {
    json::ObjectWriter gauges;
    for (const auto& [name, gauge] : gauges_) {
      gauges.field(name, static_cast<long long>(gauge->value()));
    }
    root.raw_field("gauges", gauges.str());
  }
  root.raw_field("histograms", histograms.str());
  return root.str();
}

std::string Registry::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " = " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " = " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::uint64_t count = histogram->count();
    out += name + ": n=" + std::to_string(count) +
           " sum=" + std::to_string(histogram->sum()) + "us";
    if (count != 0) {
      out += " avg=" + std::to_string(histogram->sum() / count) + "us" +
             " max=" + std::to_string(histogram->max()) + "us";
    }
    out += "\n";
  }
  return out;
}

void ScopedTimer::stop() {
  if (histogram_ == nullptr) return;
  histogram_->observe(clock_->now_us() - start_us_);
  histogram_ = nullptr;
}

ScopedTimer timer(Registry* registry, std::string_view name) {
  if (registry == nullptr) return {};
  return registry->timer(name);
}

void add(Registry* registry, std::string_view name, std::uint64_t delta) {
  if (registry != nullptr) registry->counter(name).add(delta);
}

}  // namespace wsx::obs
