// clock.hpp — the time source behind wsx::obs.
//
// Tracing and metrics must be *verifiably deterministic*: the span tree
// shape and every exported counter are pure functions of the campaign
// inputs, and only timestamps/durations may vary between runs. All
// observability timestamps therefore flow through this interface — the
// production SteadyClock reads the monotonic clock, while FixedClock is
// the virtual-clock hook the determinism test pack installs so that two
// runs at different worker counts export byte-identical JSON.
#pragma once

#include <chrono>
#include <cstdint>

namespace wsx::obs {

/// Monotonic microsecond time source. Implementations must be safe to
/// call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_us() const = 0;
};

/// Wall-clock implementation on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_us() const override {
    const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(since_epoch).count());
  }
};

/// Virtual clock for determinism tests: always reports `frozen_at`. With a
/// frozen clock every span duration and every duration histogram sum is
/// exactly zero, so exports cannot differ by scheduling.
class FixedClock final : public Clock {
 public:
  explicit FixedClock(std::uint64_t frozen_at = 0) : frozen_at_(frozen_at) {}
  std::uint64_t now_us() const override { return frozen_at_; }

 private:
  std::uint64_t frozen_at_;
};

/// The process-wide default time source (a SteadyClock).
const Clock& steady_clock();

}  // namespace wsx::obs
