// semantic_checks.hpp — shared semantic analyses used by the simulators.
#pragma once

#include "codemodel/model.hpp"
#include "common/diagnostics.hpp"

namespace wsx::compilers {

struct CheckPolicy {
  /// VB.NET compares identifiers without case; everything else with case.
  bool case_insensitive_members = false;
  /// javac: emit one "unchecked or unsafe operations" note per unit that
  /// declares a raw collection.
  bool warn_on_raw_collections = false;
  /// Report methods whose body the generator failed to emit.
  bool error_on_missing_body = true;
  /// Diagnostic code prefix, e.g. "javac", "csc", "vbc", "jsc".
  std::string tool;
};

/// Runs duplicate-member, duplicate-parameter, identifier-resolution,
/// missing-body and raw-collection checks on every class of `unit`.
void check_unit(const code::CompilationUnit& unit, const CheckPolicy& policy,
                DiagnosticSink& sink);

}  // namespace wsx::compilers
