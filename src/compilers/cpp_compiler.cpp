#include "compilers/cpp_compiler.hpp"

#include "compilers/semantic_checks.hpp"

namespace wsx::compilers {

DiagnosticSink CppCompiler::compile(const code::Artifacts& artifacts) const {
  DiagnosticSink sink;
  CheckPolicy policy;
  policy.tool = "g++";
  for (const code::CompilationUnit& unit : artifacts.units) check_unit(unit, policy, sink);
  return sink;
}

}  // namespace wsx::compilers
