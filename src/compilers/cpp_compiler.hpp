// cpp_compiler.hpp — C++ semantic checking for gSOAP-generated artifacts.
#pragma once

#include "compilers/compiler.hpp"

namespace wsx::compilers {

class CppCompiler final : public Compiler {
 public:
  code::Language language() const override { return code::Language::kCpp; }
  DiagnosticSink compile(const code::Artifacts& artifacts) const override;
};

}  // namespace wsx::compilers
