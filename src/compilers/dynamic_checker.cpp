// dynamic_checker.cpp — the instantiation check for PHP/Python clients.
//
// "Compilation is not possible. Client object instantiation was checked
// instead." (paper, Table II footnote 3). The Zend and suds client models
// hand us the would-be client object shape; we verify it instantiates and
// flag clients with no invocable operations, which is what the study
// observed for the zero-operation JBossWS descriptions.
#include "compilers/compiler.hpp"

namespace wsx::compilers {

DiagnosticSink check_instantiation(const code::Artifacts& artifacts) {
  DiagnosticSink sink;
  if (artifacts.units.empty() && artifacts.client_operations.empty()) {
    sink.error("dynamic.no-client", "no client object could be instantiated");
    return sink;
  }
  if (artifacts.client_operations.empty()) {
    sink.warn("dynamic.no-operations",
              "client object instantiated but exposes no invocable methods");
  }
  return sink;
}

}  // namespace wsx::compilers
