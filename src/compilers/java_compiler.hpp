// java_compiler.hpp — javac-style semantic checking.
#pragma once

#include "compilers/compiler.hpp"

namespace wsx::compilers {

class JavaCompiler final : public Compiler {
 public:
  code::Language language() const override { return code::Language::kJava; }
  DiagnosticSink compile(const code::Artifacts& artifacts) const override;
};

}  // namespace wsx::compilers
