#include "compilers/vb_compiler.hpp"

#include "compilers/semantic_checks.hpp"

namespace wsx::compilers {

DiagnosticSink VbCompiler::compile(const code::Artifacts& artifacts) const {
  DiagnosticSink sink;
  CheckPolicy policy;
  policy.tool = "vbc";
  policy.case_insensitive_members = true;
  for (const code::CompilationUnit& unit : artifacts.units) check_unit(unit, policy, sink);
  return sink;
}

}  // namespace wsx::compilers
