#include "compilers/semantic_checks.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace wsx::compilers {
namespace {

bool names_equal(const CheckPolicy& policy, std::string_view a, std::string_view b) {
  return policy.case_insensitive_members ? iequals(a, b) : a == b;
}

bool contains(const CheckPolicy& policy, const std::vector<std::string>& haystack,
              std::string_view needle) {
  return std::any_of(haystack.begin(), haystack.end(), [&](const std::string& candidate) {
    return names_equal(policy, candidate, needle);
  });
}

void check_class(const code::CompilationUnit& unit, const code::Class& cls,
                 const CheckPolicy& policy, DiagnosticSink& sink) {
  // Member collision: two fields, or a field and a method, with the same
  // (possibly case-folded) name.
  std::vector<std::string> member_names;
  for (const code::Field& field : cls.fields) {
    if (contains(policy, member_names, field.name)) {
      sink.error(policy.tool + ".duplicate-member",
                 "member '" + field.name + "' is already declared in '" + cls.name + "'",
                 unit.name);
    }
    member_names.push_back(field.name);
  }
  for (const code::Method& method : cls.methods) {
    if (contains(policy, member_names, method.name)) {
      sink.error(policy.tool + ".duplicate-member",
                 "'" + method.name + "' collides with a member of the same name in '" +
                     cls.name + "'",
                 unit.name);
    }
  }

  for (const code::Method& method : cls.methods) {
    // Duplicate parameters.
    std::vector<std::string> param_names;
    for (const code::Param& param : method.params) {
      if (contains(policy, param_names, param.name)) {
        sink.error(policy.tool + ".duplicate-parameter",
                   "parameter '" + param.name + "' is declared twice in '" + cls.name + "." +
                       method.name + "'",
                   unit.name);
      }
      // A parameter colliding with the method itself (the VB.NET failure:
      // "a parameter and a method share the same name").
      if (names_equal(policy, param.name, method.name)) {
        sink.error(policy.tool + ".duplicate-member",
                   "parameter '" + param.name + "' collides with method '" + method.name + "'",
                   unit.name);
      }
      param_names.push_back(param.name);
    }

    if (!method.has_body && policy.error_on_missing_body) {
      sink.error(policy.tool + ".missing-body",
                 "method '" + cls.name + "." + method.name + "' has no implementation",
                 unit.name);
    }

    // Identifier resolution: every referenced symbol must be a parameter, a
    // declared local, or a field of the class.
    for (const std::string& symbol : method.referenced_symbols) {
      const bool resolved =
          contains(policy, param_names, symbol) || contains(policy, method.local_decls, symbol) ||
          std::any_of(cls.fields.begin(), cls.fields.end(), [&](const code::Field& field) {
            return names_equal(policy, field.name, symbol);
          });
      if (!resolved) {
        sink.error(policy.tool + ".unresolved-identifier",
                   "cannot find symbol '" + symbol + "' in '" + cls.name + "." + method.name +
                       "'",
                   unit.name);
      }
    }
  }
}

}  // namespace

void check_unit(const code::CompilationUnit& unit, const CheckPolicy& policy,
                DiagnosticSink& sink) {
  for (const code::Class& cls : unit.classes) check_class(unit, cls, policy, sink);

  // Base classes must resolve within the unit (generated artifacts are
  // self-contained).
  for (const code::Class& cls : unit.classes) {
    if (cls.base.empty()) continue;
    const bool resolved =
        std::any_of(unit.classes.begin(), unit.classes.end(), [&](const code::Class& other) {
          return names_equal(policy, other.name, cls.base);
        });
    if (!resolved) {
      sink.error(policy.tool + ".unknown-base",
                 "base class '" + cls.base + "' of '" + cls.name + "' is not defined",
                 unit.name);
    }
  }

  if (policy.warn_on_raw_collections) {
    const bool has_raw = std::any_of(
        unit.classes.begin(), unit.classes.end(), [](const code::Class& cls) {
          return std::any_of(cls.fields.begin(), cls.fields.end(),
                             [](const code::Field& field) { return field.raw_collection; });
        });
    if (has_raw) {
      sink.warn(policy.tool + ".unchecked",
                "Note: " + unit.name + " uses unchecked or unsafe operations.", unit.name);
    }
  }
}

}  // namespace wsx::compilers
