// compiler.hpp — compiler simulators for the artifact languages.
//
// Each simulator runs the semantic checks its real counterpart performs on
// generated proxy code: member collision detection (case-sensitive or not),
// identifier resolution, body presence, and the javac raw-types warning.
// They differ exactly where the real compilers differ — e.g. Visual Basic
// compares identifiers case-insensitively, which is why artifacts that C#
// accepts fail under VB (paper §IV.B.3).
#pragma once

#include <memory>

#include "codemodel/model.hpp"
#include "common/diagnostics.hpp"

namespace wsx::compilers {

class Compiler {
 public:
  virtual ~Compiler() = default;

  /// The language this compiler accepts.
  virtual code::Language language() const = 0;

  /// Compiles `artifacts`, returning all diagnostics. An empty sink means a
  /// clean compile.
  virtual DiagnosticSink compile(const code::Artifacts& artifacts) const = 0;
};

/// Returns the compiler simulator for `language`; nullptr for dynamic
/// languages (use DynamicChecker instead).
std::unique_ptr<Compiler> make_compiler(code::Language language);

/// Instantiation check for dynamic-language clients (PHP Zend, Python
/// suds): verifies the client object can be created and reports a warning
/// when it exposes no invocable operations.
DiagnosticSink check_instantiation(const code::Artifacts& artifacts);

}  // namespace wsx::compilers
