// vb_compiler.hpp — vbc-style semantic checking.
//
// Visual Basic identifiers are case-insensitive: artifacts that declare
// members differing only in case compile under C# but collide under VB —
// the mechanism behind the paper's VB-only compilation failures.
#pragma once

#include "compilers/compiler.hpp"

namespace wsx::compilers {

class VbCompiler final : public Compiler {
 public:
  code::Language language() const override { return code::Language::kVisualBasic; }
  DiagnosticSink compile(const code::Artifacts& artifacts) const override;
};

}  // namespace wsx::compilers
