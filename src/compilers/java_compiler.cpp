#include "compilers/java_compiler.hpp"

#include "compilers/semantic_checks.hpp"

namespace wsx::compilers {

DiagnosticSink JavaCompiler::compile(const code::Artifacts& artifacts) const {
  DiagnosticSink sink;
  CheckPolicy policy;
  policy.tool = "javac";
  policy.warn_on_raw_collections = true;  // "unchecked or unsafe operations"
  for (const code::CompilationUnit& unit : artifacts.units) check_unit(unit, policy, sink);
  return sink;
}

}  // namespace wsx::compilers
