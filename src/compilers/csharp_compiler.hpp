// csharp_compiler.hpp — csc-style semantic checking (case-sensitive).
#pragma once

#include "compilers/compiler.hpp"

namespace wsx::compilers {

class CSharpCompiler final : public Compiler {
 public:
  code::Language language() const override { return code::Language::kCSharp; }
  DiagnosticSink compile(const code::Artifacts& artifacts) const override;
};

}  // namespace wsx::compilers
