#include "compilers/compiler.hpp"

#include "compilers/cpp_compiler.hpp"
#include "compilers/csharp_compiler.hpp"
#include "compilers/java_compiler.hpp"
#include "compilers/jscript_compiler.hpp"
#include "compilers/vb_compiler.hpp"

namespace wsx::compilers {

std::unique_ptr<Compiler> make_compiler(code::Language language) {
  switch (language) {
    case code::Language::kJava:
      return std::make_unique<JavaCompiler>();
    case code::Language::kCSharp:
      return std::make_unique<CSharpCompiler>();
    case code::Language::kVisualBasic:
      return std::make_unique<VbCompiler>();
    case code::Language::kJScript:
      return std::make_unique<JScriptCompiler>();
    case code::Language::kCpp:
      return std::make_unique<CppCompiler>();
    case code::Language::kPhp:
    case code::Language::kPython:
      return nullptr;  // dynamic languages: use check_instantiation
  }
  return nullptr;
}

}  // namespace wsx::compilers
