// jscript_compiler.hpp — jsc-style semantic checking.
//
// Reproduces the two JScript .NET behaviours the study observed at this
// step: compile errors for proxy methods whose bodies the generator failed
// to emit, and outright tool crashes ("131 INTERNAL COMPILER CRASH") on
// pathological generated units.
#pragma once

#include "compilers/compiler.hpp"

namespace wsx::compilers {

class JScriptCompiler final : public Compiler {
 public:
  code::Language language() const override { return code::Language::kJScript; }
  DiagnosticSink compile(const code::Artifacts& artifacts) const override;
};

}  // namespace wsx::compilers
