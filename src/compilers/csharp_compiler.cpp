#include "compilers/csharp_compiler.hpp"

#include "compilers/semantic_checks.hpp"

namespace wsx::compilers {

DiagnosticSink CSharpCompiler::compile(const code::Artifacts& artifacts) const {
  DiagnosticSink sink;
  CheckPolicy policy;
  policy.tool = "csc";
  for (const code::CompilationUnit& unit : artifacts.units) check_unit(unit, policy, sink);
  return sink;
}

}  // namespace wsx::compilers
