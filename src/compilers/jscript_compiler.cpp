#include "compilers/jscript_compiler.hpp"

#include "compilers/semantic_checks.hpp"

namespace wsx::compilers {

DiagnosticSink JScriptCompiler::compile(const code::Artifacts& artifacts) const {
  DiagnosticSink sink;
  CheckPolicy policy;
  policy.tool = "jsc";
  for (const code::CompilationUnit& unit : artifacts.units) {
    if (unit.pathological) {
      // The real tool aborts the whole compilation with an internal error.
      sink.crash("jsc.internal-crash", "131 INTERNAL COMPILER CRASH", unit.name);
      return sink;
    }
    check_unit(unit, policy, sink);
  }
  return sink;
}

}  // namespace wsx::compilers
