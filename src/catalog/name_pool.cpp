#include "catalog/name_pool.hpp"

#include <array>

namespace wsx::catalog {

std::uint64_t Rng::next() {
  // splitmix64 — stable across platforms.
  state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::size_t Rng::below(std::size_t bound) {
  return bound == 0 ? 0 : static_cast<std::size_t>(next() % bound);
}

namespace {

constexpr std::array kRoots = {
    "Buffer",   "Channel", "Stream",  "Format",   "Event",    "Context",  "Session",
    "Registry", "Monitor", "Cursor",  "Document", "Element",  "Resource", "Socket",
    "Gradient", "Layout",  "Palette", "Renderer", "Index",    "Token",    "Lexer",
    "Schema",   "Binding", "Adapter", "Bridge",   "Cache",    "Cluster",  "Config",
    "Snapshot", "Journal", "Ledger",  "Metric",   "Quota",    "Routing",  "Sampler",
    "Timeline", "Vector",  "Matrix",  "Polygon",  "Spline",   "Texture",  "Widget",
    "Toolbar",  "Dialog",  "Wizard",  "Tracker",  "Profiler", "Decoder",  "Encoder",
    "Splitter",
};

constexpr std::array kQualifiers = {
    "Buffered",  "Cached",   "Chunked",   "Composite", "Concurrent", "Deferred",
    "Delegating", "Filtered", "Immutable", "Indexed",   "Inline",     "Lazy",
    "Managed",   "Mapped",   "Nested",    "Paged",     "Pooled",     "Remote",
    "Rolling",   "Scoped",   "Shared",    "Sorted",    "Streaming",  "Synced",
    "Threaded",  "Tracked",  "Typed",     "Versioned", "Virtual",    "Weighted",
};

constexpr std::array kSuffixes = {
    "",       "Reader",  "Writer",   "Handler", "Manager",  "Factory", "Builder",
    "Helper", "Support", "Provider", "Info",    "Entry",    "Spec",    "Descriptor",
    "Model",  "State",   "Result",   "Request", "Response", "Options",
};

constexpr std::array kFieldNames = {
    "value",  "name",    "id",     "count",  "flags",   "data",   "items",  "label",
    "offset", "length",  "status", "weight", "ratio",   "source", "target", "key",
    "index",  "version", "scale",  "bound",  "capacity", "mode",  "level",  "order",
};

constexpr std::array kFieldTypes = {
    xsd::Builtin::kString,  xsd::Builtin::kInt,      xsd::Builtin::kLong,
    xsd::Builtin::kBoolean, xsd::Builtin::kDouble,   xsd::Builtin::kFloat,
    xsd::Builtin::kShort,   xsd::Builtin::kDateTime, xsd::Builtin::kDecimal,
    xsd::Builtin::kByte,
};

}  // namespace

std::string NamePool::next_class_name(const std::string& suffix) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string name = std::string(kQualifiers[rng_.below(kQualifiers.size())]) +
                       std::string(kRoots[rng_.below(kRoots.size())]);
    if (suffix.empty()) {
      name += kSuffixes[rng_.below(kSuffixes.size())];
    } else {
      name += suffix;
    }
    if (used_.insert(name)) return name;
  }
  // Pool exhausted for this shape: fall back to an indexed name, still
  // unique and deterministic.
  std::string name;
  do {
    name = std::string(kRoots[rng_.below(kRoots.size())]) + std::to_string(used_.size()) +
           suffix;
  } while (!used_.insert(name));
  return name;
}

std::string NamePool::next_field_name() {
  return std::string(kFieldNames[rng_.below(kFieldNames.size())]);
}

xsd::Builtin NamePool::next_field_type() {
  return kFieldTypes[rng_.below(kFieldTypes.size())];
}

}  // namespace wsx::catalog
