// dotnet_catalog.hpp — the synthetic .NET Framework 4 type population.
#pragma once

#include <cstdint>

#include "catalog/type_info.hpp"

namespace wsx::catalog {

/// Population quotas for the .NET catalog. Defaults reproduce the paper's
/// numbers (14082 crawled types, 2502 deployable).
struct DotNetCatalogSpec {
  std::uint64_t seed = 0x444F544Eu;  // "DOTN"

  // Deployable population: 2502 on WCF.
  std::size_t plain_types = 2111;
  std::size_t dataset_plain = 59;       ///< s:schema/s:lang idiom (base form)
  std::size_t dataset_duplicated = 13;  ///< + duplicate schema ref (breaks gSOAP)
  std::size_t dataset_nested = 3;       ///< + nested ref (breaks Axis1)
  std::size_t dataset_array = 1;        ///< + ref under unbounded (breaks suds)
  std::size_t encoded_binding = 1;      ///< WCF emits use="encoded"
  std::size_t missing_soap_action = 3;  ///< WCF omits soapAction
  std::size_t deep_nesting_clean = 284; ///< deep inline nesting (breaks jsc codegen)
  std::size_t deep_nesting_pathological = 17;  ///< + crashes the jsc compiler
  std::size_t generator_crash = 2;      ///< crashes the jsc *generator*
  // + 3 named wildcard types (DataTable, DataTableCollection, DataView),
  // + 1 named enum (SocketError), + 4 named WebControls = 2502 total.

  // Not deployable on WCF: 11580.
  std::size_t non_serializable = 4000;
  std::size_t no_default_ctor = 3500;
  std::size_t generic_types = 2080;
  std::size_t abstract_classes = 1200;
  std::size_t interfaces = 800;
};

/// Builds the .NET catalog; with the default spec it contains exactly
/// 14082 types.
TypeCatalog make_dotnet_catalog(const DotNetCatalogSpec& spec = {});

namespace dotnet_names {
inline constexpr std::string_view kDataTable = "System.Data.DataTable";
inline constexpr std::string_view kDataTableCollection = "System.Data.DataTableCollection";
inline constexpr std::string_view kDataView = "System.Data.DataView";
inline constexpr std::string_view kSocketError = "System.Net.Sockets.SocketError";
}  // namespace dotnet_names

}  // namespace wsx::catalog
