#include "catalog/dotnet_catalog.hpp"

#include <array>

#include "catalog/name_pool.hpp"

namespace wsx::catalog {
namespace {

constexpr std::array kPackages = {
    "System",            "System.Collections", "System.ComponentModel", "System.Data",
    "System.Diagnostics", "System.Drawing",    "System.Globalization",  "System.IO",
    "System.Linq",       "System.Net",         "System.Net.Sockets",    "System.Reflection",
    "System.Runtime",    "System.Security",    "System.Text",           "System.Threading",
    "System.Web",        "System.Web.UI",      "System.Windows.Forms",  "System.Xml",
    "System.Xml.Schema", "System.ServiceModel", "System.Transactions",  "System.Configuration",
};

std::string pick_package(Rng& rng) { return kPackages[rng.below(kPackages.size())]; }

void add_plain_fields(NamePool& pool, TypeInfo& type) {
  const std::size_t count = 1 + pool.rng().below(4);
  for (std::size_t i = 0; i < count; ++i) {
    FieldSpec field;
    field.name = pool.next_field_name() + (i == 0 ? "" : std::to_string(i));
    field.type = pool.next_field_type();
    type.fields.push_back(std::move(field));
  }
}

TypeInfo make_type(NamePool& pool, const std::string& suffix = "") {
  TypeInfo type;
  type.language = SourceLanguage::kCSharp;
  type.package = pick_package(pool.rng());
  type.name = pool.next_class_name(suffix);
  type.set(Trait::kDefaultCtor);
  type.set(Trait::kSerializable);
  add_plain_fields(pool, type);
  return type;
}

TypeInfo make_named(std::string package, std::string name) {
  TypeInfo type;
  type.language = SourceLanguage::kCSharp;
  type.package = std::move(package);
  type.name = std::move(name);
  type.set(Trait::kDefaultCtor);
  type.set(Trait::kSerializable);
  return type;
}

}  // namespace

TypeCatalog make_dotnet_catalog(const DotNetCatalogSpec& spec) {
  NamePool pool{spec.seed};
  std::vector<TypeInfo> types;
  types.reserve(14200);

  // --- Named special types. ---
  {
    TypeInfo type = make_named("System.Data", "DataTable");
    type.set(Trait::kWildcardContent);
    type.set(Trait::kDoubleWildcard);
    types.push_back(std::move(type));
  }
  {
    TypeInfo type = make_named("System.Data", "DataTableCollection");
    type.set(Trait::kWildcardContent);
    type.set(Trait::kDoubleWildcard);
    types.push_back(std::move(type));
  }
  {
    TypeInfo type = make_named("System.Data", "DataView");
    type.set(Trait::kWildcardContent);
    types.push_back(std::move(type));
  }
  {
    TypeInfo type = make_named("System.Net.Sockets", "SocketError");
    type.set(Trait::kEnumType);
    type.enum_values = {"Success", "SocketError", "ConnectionReset", "TimedOut", "HostNotFound"};
    types.push_back(std::move(type));
  }
  // The four WebControls whose VB artifacts collide (paper §IV.B.3).
  for (const char* name : {"Label", "ListItem", "Button", "HyperLink"}) {
    TypeInfo type = make_named("System.Web.UI.WebControls", name);
    type.set(Trait::kCaseCollidingFields);
    type.fields.push_back({"Text", xsd::Builtin::kString, false, false});
    type.fields.push_back({"text", xsd::Builtin::kAnyType, false, false});
    types.push_back(std::move(type));
  }

  // --- Deployable population. ---
  for (std::size_t i = 0; i < spec.plain_types; ++i) {
    types.push_back(make_type(pool));
  }
  const auto add_dataset = [&](std::size_t count, Trait extra, bool has_extra) {
    for (std::size_t i = 0; i < count; ++i) {
      TypeInfo type = make_type(pool, "DataSet");
      type.set(Trait::kDataSetSchema);
      if (has_extra) type.set(extra);
      types.push_back(std::move(type));
    }
  };
  add_dataset(spec.dataset_plain, Trait::kDataSetSchema, false);
  add_dataset(spec.dataset_duplicated, Trait::kDataSetDuplicated, true);
  add_dataset(spec.dataset_nested, Trait::kDataSetNested, true);
  add_dataset(spec.dataset_array, Trait::kDataSetArray, true);
  for (std::size_t i = 0; i < spec.encoded_binding; ++i) {
    TypeInfo type = make_type(pool, "Message");
    type.set(Trait::kSoapEncodedBinding);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.missing_soap_action; ++i) {
    TypeInfo type = make_type(pool, "Header");
    type.set(Trait::kMissingSoapAction);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.deep_nesting_clean; ++i) {
    TypeInfo type = make_type(pool, "View");
    type.set(Trait::kDeepNesting);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.deep_nesting_pathological; ++i) {
    TypeInfo type = make_type(pool, "Grid");
    type.set(Trait::kDeepNesting);
    type.set(Trait::kCompilerPathological);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.generator_crash; ++i) {
    TypeInfo type = make_type(pool, "Surrogate");
    type.set(Trait::kGeneratorCrash);
    types.push_back(std::move(type));
  }

  // --- Population WCF cannot map. ---
  for (std::size_t i = 0; i < spec.non_serializable; ++i) {
    TypeInfo type = make_type(pool);
    type.traits = static_cast<std::uint64_t>(Trait::kDefaultCtor);  // not serializable
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.no_default_ctor; ++i) {
    TypeInfo type = make_type(pool);
    type.traits = static_cast<std::uint64_t>(Trait::kSerializable);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.generic_types; ++i) {
    TypeInfo type = make_type(pool);
    type.set(Trait::kGenericType);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.abstract_classes; ++i) {
    TypeInfo type = make_type(pool);
    type.set(Trait::kAbstract);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.interfaces; ++i) {
    TypeInfo type = make_type(pool, "Provider");
    type.traits = 0;
    type.set(Trait::kInterface);
    types.push_back(std::move(type));
  }

  return TypeCatalog{".NET Framework 4", std::move(types)};
}

}  // namespace wsx::catalog
