// java_catalog.hpp — the synthetic Java SE 7 type population.
#pragma once

#include <cstdint>

#include "catalog/type_info.hpp"

namespace wsx::catalog {

/// Population quotas for the Java catalog. Defaults reproduce the paper's
/// numbers; tests and ablation benches scale them down.
struct JavaCatalogSpec {
  std::uint64_t seed = 0x4A415641u;  // "JAVA"

  // Deployable (bean-compatible) population: 2489 deploy on Metro.
  std::size_t plain_beans = 1780;
  std::size_t throwable_clean = 412;  ///< Throwable-derived, clean generics
  std::size_t throwable_raw = 65;     ///< Throwable-derived with raw generic API
  std::size_t raw_generic_beans = 178;
  std::size_t anytype_array_beans = 50;
  // + 4 named special classes (W3CEndpointReference, SimpleDateFormat,
  //   XMLGregorianCalendar, NameValuePair) = 2489 total.

  // JAX-WS async interfaces: rejected by Metro, accepted by JBossWS.
  std::size_t async_interfaces = 2;  // Future, Response (named)

  // Not deployable anywhere: 1480.
  std::size_t no_default_ctor = 600;
  std::size_t abstract_classes = 300;
  std::size_t interfaces = 400;
  std::size_t generic_types = 180;
};

/// Builds the Java catalog; with the default spec it contains exactly 3971
/// types, matching the paper's crawl of the Java SE 7 API docs.
TypeCatalog make_java_catalog(const JavaCatalogSpec& spec = {});

/// Qualified names of the special classes the paper calls out.
namespace java_names {
inline constexpr std::string_view kW3CEndpointReference =
    "javax.xml.ws.wsaddressing.W3CEndpointReference";
inline constexpr std::string_view kSimpleDateFormat = "java.text.SimpleDateFormat";
inline constexpr std::string_view kXmlGregorianCalendar =
    "javax.xml.datatype.XMLGregorianCalendar";
inline constexpr std::string_view kFuture = "java.util.concurrent.Future";
inline constexpr std::string_view kResponse = "javax.xml.ws.Response";
/// The paper reports one VB-only collision on each Java platform without
/// naming the class; we model it with CORBA's NameValuePair, whose
/// generated artifacts carry case-colliding members.
inline constexpr std::string_view kNameValuePair = "org.omg.CORBA.NameValuePair";
}  // namespace java_names

}  // namespace wsx::catalog
