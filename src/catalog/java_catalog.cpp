#include "catalog/java_catalog.hpp"

#include <array>

#include "catalog/name_pool.hpp"

namespace wsx::catalog {
namespace {

constexpr std::array kPackages = {
    "java.lang",        "java.util",          "java.io",         "java.net",
    "java.text",        "java.awt",           "java.awt.event",  "java.awt.geom",
    "javax.swing",      "javax.swing.text",   "javax.xml.parsers", "javax.xml.ws",
    "java.util.concurrent", "java.security",  "java.sql",        "javax.naming",
    "java.nio",         "java.nio.channels",  "java.rmi",        "javax.sound.midi",
    "javax.imageio",    "java.beans",         "javax.crypto",    "java.util.zip",
};

std::string pick_package(Rng& rng) { return kPackages[rng.below(kPackages.size())]; }

/// 1–4 plain serializable fields.
void add_plain_fields(NamePool& pool, TypeInfo& type) {
  const std::size_t count = 1 + pool.rng().below(4);
  for (std::size_t i = 0; i < count; ++i) {
    FieldSpec field;
    field.name = pool.next_field_name() + (i == 0 ? "" : std::to_string(i));
    field.type = pool.next_field_type();
    type.fields.push_back(std::move(field));
  }
}

TypeInfo make_bean(NamePool& pool, const std::string& suffix = "") {
  TypeInfo type;
  type.language = SourceLanguage::kJava;
  type.package = pick_package(pool.rng());
  type.name = pool.next_class_name(suffix);
  type.set(Trait::kDefaultCtor);
  type.set(Trait::kSerializable);
  add_plain_fields(pool, type);
  return type;
}

void add_raw_collection_field(TypeInfo& type) {
  // A raw java.util.List field. It serializes as a plain repeated string
  // element (rawness is invisible in the WSDL — it only surfaces in the
  // binder's deployability rules and in generated artifact code).
  FieldSpec raw;
  raw.name = "entries";
  raw.type = xsd::Builtin::kString;
  raw.is_array = true;
  raw.raw_collection = true;
  type.fields.push_back(std::move(raw));
  type.set(Trait::kRawGenericApi);
}

}  // namespace

TypeCatalog make_java_catalog(const JavaCatalogSpec& spec) {
  NamePool pool{spec.seed};
  std::vector<TypeInfo> types;
  types.reserve(4000);

  // --- Named special classes (traits match the paper's findings). ---
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "javax.xml.ws.wsaddressing";
    type.name = "W3CEndpointReference";
    type.set(Trait::kDefaultCtor);
    type.set(Trait::kSerializable);
    type.set(Trait::kWsaEndpointReference);
    type.fields.push_back({"address", xsd::Builtin::kAnyUri, false, false});
    types.push_back(std::move(type));
  }
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "java.text";
    type.name = "SimpleDateFormat";
    type.set(Trait::kDefaultCtor);
    type.set(Trait::kSerializable);
    type.set(Trait::kLegacyDateFormat);
    type.fields.push_back({"pattern", xsd::Builtin::kString, false, false});
    types.push_back(std::move(type));
  }
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "javax.xml.datatype";
    type.name = "XMLGregorianCalendar";
    type.set(Trait::kDefaultCtor);
    type.set(Trait::kSerializable);
    type.set(Trait::kXmlGregorianCalendar);
    type.fields.push_back({"gregorian", xsd::Builtin::kDateTime, false, false});
    types.push_back(std::move(type));
  }
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "org.omg.CORBA";
    type.name = "NameValuePair";
    type.set(Trait::kDefaultCtor);
    type.set(Trait::kSerializable);
    type.set(Trait::kCaseCollidingFields);
    // Fields differing only in case: C# artifacts compile, VB artifacts
    // collide.
    type.fields.push_back({"Value", xsd::Builtin::kString, false, false});
    type.fields.push_back({"value", xsd::Builtin::kAnyType, false, false});
    types.push_back(std::move(type));
  }

  // --- JAX-WS async interfaces (Metro refuses, JBossWS publishes without
  //     operations). ---
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "java.util.concurrent";
    type.name = "Future";
    type.set(Trait::kInterface);
    type.set(Trait::kAsyncApi);
    types.push_back(std::move(type));
  }
  {
    TypeInfo type;
    type.language = SourceLanguage::kJava;
    type.package = "javax.xml.ws";
    type.name = "Response";
    type.set(Trait::kInterface);
    type.set(Trait::kAsyncApi);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 2; i < spec.async_interfaces; ++i) {
    TypeInfo type = make_bean(pool, "Task");
    type.traits = 0;
    type.set(Trait::kInterface);
    type.set(Trait::kAsyncApi);
    types.push_back(std::move(type));
  }

  // --- Deployable population. ---
  for (std::size_t i = 0; i < spec.plain_beans; ++i) {
    types.push_back(make_bean(pool));
  }
  for (std::size_t i = 0; i < spec.throwable_clean; ++i) {
    TypeInfo type = make_bean(pool, i % 7 == 0 ? "Error" : "Exception");
    type.set(Trait::kThrowableDerived);
    type.fields.insert(type.fields.begin(), {"message", xsd::Builtin::kString, false, false});
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.throwable_raw; ++i) {
    TypeInfo type = make_bean(pool, "Exception");
    type.set(Trait::kThrowableDerived);
    type.fields.insert(type.fields.begin(), {"message", xsd::Builtin::kString, false, false});
    add_raw_collection_field(type);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.raw_generic_beans; ++i) {
    TypeInfo type = make_bean(pool);
    add_raw_collection_field(type);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.anytype_array_beans; ++i) {
    TypeInfo type = make_bean(pool);
    FieldSpec field;
    field.name = "elements";
    field.type = xsd::Builtin::kAnyType;
    field.is_array = true;
    type.fields.push_back(std::move(field));
    type.set(Trait::kAnyTypeArrayField);
    types.push_back(std::move(type));
  }

  // --- Population that no binder can map. ---
  for (std::size_t i = 0; i < spec.no_default_ctor; ++i) {
    TypeInfo type = make_bean(pool);
    type.traits = static_cast<std::uint64_t>(Trait::kSerializable);  // ctor bit cleared
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.abstract_classes; ++i) {
    TypeInfo type = make_bean(pool);
    type.set(Trait::kAbstract);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.interfaces; ++i) {
    TypeInfo type = make_bean(pool, "Listener");
    type.traits = 0;
    type.set(Trait::kInterface);
    types.push_back(std::move(type));
  }
  for (std::size_t i = 0; i < spec.generic_types; ++i) {
    TypeInfo type = make_bean(pool);
    type.set(Trait::kGenericType);
    types.push_back(std::move(type));
  }

  return TypeCatalog{"Java SE 7", std::move(types)};
}

}  // namespace wsx::catalog
