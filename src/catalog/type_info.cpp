#include "catalog/type_info.hpp"

#include <algorithm>

namespace wsx::catalog {

const char* to_string(SourceLanguage language) {
  return language == SourceLanguage::kJava ? "Java" : "C#";
}

const TypeInfo* TypeCatalog::find(std::string_view qualified_name) const {
  for (const TypeInfo& type : types_) {
    if (type.qualified_name() == qualified_name) return &type;
  }
  return nullptr;
}

std::vector<const TypeInfo*> TypeCatalog::with_trait(Trait trait) const {
  std::vector<const TypeInfo*> out;
  for (const TypeInfo& type : types_) {
    if (type.has(trait)) out.push_back(&type);
  }
  return out;
}

std::size_t TypeCatalog::count_with_trait(Trait trait) const {
  return static_cast<std::size_t>(
      std::count_if(types_.begin(), types_.end(),
                    [trait](const TypeInfo& type) { return type.has(trait); }));
}

}  // namespace wsx::catalog
