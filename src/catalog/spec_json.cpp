#include "catalog/spec_json.hpp"

#include "common/json.hpp"

namespace wsx::catalog {

namespace {

Error fail(std::string_view what) {
  return Error{"spec.bad-field", "catalog spec JSON: " + std::string(what)};
}

/// Reads one required non-negative integer field.
Result<std::uint64_t> read_count(const json::Value& object, std::string_view key) {
  const json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number() || member->as_number() < 0) {
    return fail("missing or invalid field '" + std::string(key) + "'");
  }
  return static_cast<std::uint64_t>(member->as_number());
}

}  // namespace

std::string to_json(const JavaCatalogSpec& spec) {
  return json::ObjectWriter{}
      .field("seed", static_cast<std::size_t>(spec.seed))
      .field("plain_beans", spec.plain_beans)
      .field("throwable_clean", spec.throwable_clean)
      .field("throwable_raw", spec.throwable_raw)
      .field("raw_generic_beans", spec.raw_generic_beans)
      .field("anytype_array_beans", spec.anytype_array_beans)
      .field("async_interfaces", spec.async_interfaces)
      .field("no_default_ctor", spec.no_default_ctor)
      .field("abstract_classes", spec.abstract_classes)
      .field("interfaces", spec.interfaces)
      .field("generic_types", spec.generic_types)
      .str();
}

std::string to_json(const DotNetCatalogSpec& spec) {
  return json::ObjectWriter{}
      .field("seed", static_cast<std::size_t>(spec.seed))
      .field("plain_types", spec.plain_types)
      .field("dataset_plain", spec.dataset_plain)
      .field("dataset_duplicated", spec.dataset_duplicated)
      .field("dataset_nested", spec.dataset_nested)
      .field("dataset_array", spec.dataset_array)
      .field("encoded_binding", spec.encoded_binding)
      .field("missing_soap_action", spec.missing_soap_action)
      .field("deep_nesting_clean", spec.deep_nesting_clean)
      .field("deep_nesting_pathological", spec.deep_nesting_pathological)
      .field("generator_crash", spec.generator_crash)
      .field("non_serializable", spec.non_serializable)
      .field("no_default_ctor", spec.no_default_ctor)
      .field("generic_types", spec.generic_types)
      .field("abstract_classes", spec.abstract_classes)
      .field("interfaces", spec.interfaces)
      .str();
}

Result<JavaCatalogSpec> java_spec_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const json::Value& object = parsed.value();
  if (!object.is_object()) return fail("expected an object");
  JavaCatalogSpec spec;
  struct FieldRef {
    const char* key;
    std::size_t* value;
  };
  Result<std::uint64_t> seed = read_count(object, "seed");
  if (!seed.ok()) return seed.error();
  spec.seed = seed.value();
  const FieldRef fields[] = {
      {"plain_beans", &spec.plain_beans},
      {"throwable_clean", &spec.throwable_clean},
      {"throwable_raw", &spec.throwable_raw},
      {"raw_generic_beans", &spec.raw_generic_beans},
      {"anytype_array_beans", &spec.anytype_array_beans},
      {"async_interfaces", &spec.async_interfaces},
      {"no_default_ctor", &spec.no_default_ctor},
      {"abstract_classes", &spec.abstract_classes},
      {"interfaces", &spec.interfaces},
      {"generic_types", &spec.generic_types},
  };
  for (const FieldRef& field : fields) {
    Result<std::uint64_t> value = read_count(object, field.key);
    if (!value.ok()) return value.error();
    *field.value = static_cast<std::size_t>(value.value());
  }
  return spec;
}

Result<DotNetCatalogSpec> dotnet_spec_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const json::Value& object = parsed.value();
  if (!object.is_object()) return fail("expected an object");
  DotNetCatalogSpec spec;
  struct FieldRef {
    const char* key;
    std::size_t* value;
  };
  Result<std::uint64_t> seed = read_count(object, "seed");
  if (!seed.ok()) return seed.error();
  spec.seed = seed.value();
  const FieldRef fields[] = {
      {"plain_types", &spec.plain_types},
      {"dataset_plain", &spec.dataset_plain},
      {"dataset_duplicated", &spec.dataset_duplicated},
      {"dataset_nested", &spec.dataset_nested},
      {"dataset_array", &spec.dataset_array},
      {"encoded_binding", &spec.encoded_binding},
      {"missing_soap_action", &spec.missing_soap_action},
      {"deep_nesting_clean", &spec.deep_nesting_clean},
      {"deep_nesting_pathological", &spec.deep_nesting_pathological},
      {"generator_crash", &spec.generator_crash},
      {"non_serializable", &spec.non_serializable},
      {"no_default_ctor", &spec.no_default_ctor},
      {"generic_types", &spec.generic_types},
      {"abstract_classes", &spec.abstract_classes},
      {"interfaces", &spec.interfaces},
  };
  for (const FieldRef& field : fields) {
    Result<std::uint64_t> value = read_count(object, field.key);
    if (!value.ok()) return value.error();
    *field.value = static_cast<std::size_t>(value.value());
  }
  return spec;
}

}  // namespace wsx::catalog
