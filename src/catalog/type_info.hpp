// type_info.hpp — the native-type population the study deploys services for.
//
// The paper crawled the Java SE 7 and .NET 4 API documentation and created
// one echo service per public class (3971 Java / 14082 C# candidates). We
// cannot ship those class libraries, so this module generates synthetic
// populations with the same *trait distribution*: how many types are
// bean-compatible, Throwable-derived, DataSet-shaped, etc. Everything the
// pipeline does downstream keys on these traits and on the fields below —
// never on a type's position in the catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsd/builtin.hpp"

namespace wsx::catalog {

enum class SourceLanguage { kJava, kCSharp };

const char* to_string(SourceLanguage language);

/// Trait bit positions. Traits describe properties of the native type that
/// server binders and client generators genuinely react to.
enum class Trait : std::uint64_t {
  // Deployability-relevant shape.
  kDefaultCtor = 1ull << 0,
  kAbstract = 1ull << 1,
  kInterface = 1ull << 2,
  kGenericType = 1ull << 3,     ///< open generic — no binder supports these
  kSerializable = 1ull << 4,    ///< .NET binders require [Serializable]
  kAsyncApi = 1ull << 5,        ///< Future / Response — JAX-WS async artifacts

  // Java-population shape.
  kThrowableDerived = 1ull << 6,   ///< extends Exception or Error
  kRawGenericApi = 1ull << 7,      ///< raw collections in the public API
  kAnyTypeArrayField = 1ull << 8,  ///< field mapping to xsd:anyType maxOccurs=unbounded
  kWsaEndpointReference = 1ull << 9,  ///< javax.xml.ws.wsaddressing.W3CEndpointReference
  kLegacyDateFormat = 1ull << 10,     ///< java.text.SimpleDateFormat
  kXmlGregorianCalendar = 1ull << 11,

  // Shared shape.
  kCaseCollidingFields = 1ull << 12,  ///< fields differing only in case (VB collision)

  // .NET-population shape.
  kDataSetSchema = 1ull << 13,     ///< serializes as s:schema/s:any DataSet idiom
  kDataSetNested = 1ull << 14,     ///< DataSet ref inside a nested inline type
  kDataSetDuplicated = 1ull << 15, ///< two s:schema refs in one content model
  kDataSetArray = 1ull << 16,      ///< s:schema ref under maxOccurs="unbounded"
  kSoapEncodedBinding = 1ull << 17,///< WCF emits use="encoded" for this type
  kMissingSoapAction = 1ull << 18, ///< WCF omits soapAction for this type
  kWildcardContent = 1ull << 19,   ///< content model is xs:any only (DataTable family)
  kDoubleWildcard = 1ull << 20,    ///< two xs:any particles
  kEnumType = 1ull << 21,          ///< maps to an xsd enumeration simpleType
  kDeepNesting = 1ull << 22,       ///< >= 3 levels of inline anonymous types
  kCompilerPathological = 1ull << 23,  ///< generated unit crashes jsc
  kGeneratorCrash = 1ull << 24,        ///< jsc *generator* crashes on the WSDL
};

/// One field of a native type, as the server binder will expose it in the
/// service's schema.
struct FieldSpec {
  std::string name;
  xsd::Builtin type = xsd::Builtin::kString;
  bool is_array = false;
  bool raw_collection = false;  ///< surfaces as a raw collection in artifacts
  friend bool operator==(const FieldSpec&, const FieldSpec&) = default;
};

/// A native class/struct/enum of the host platform.
struct TypeInfo {
  std::string package;  ///< "java.util" / "System.Data"
  std::string name;     ///< simple name
  SourceLanguage language = SourceLanguage::kJava;
  std::uint64_t traits = 0;
  std::vector<FieldSpec> fields;
  std::vector<std::string> enum_values;  ///< for kEnumType

  bool has(Trait trait) const {
    return (traits & static_cast<std::uint64_t>(trait)) != 0;
  }
  void set(Trait trait) { traits |= static_cast<std::uint64_t>(trait); }

  std::string qualified_name() const { return package + "." + name; }
};

/// An immutable catalog of types, plus query helpers used by the
/// preparation phase and by tests.
class TypeCatalog {
 public:
  TypeCatalog(std::string platform, std::vector<TypeInfo> types)
      : platform_(std::move(platform)), types_(std::move(types)) {}

  const std::string& platform() const { return platform_; }
  const std::vector<TypeInfo>& types() const { return types_; }
  std::size_t size() const { return types_.size(); }

  const TypeInfo* find(std::string_view qualified_name) const;
  std::vector<const TypeInfo*> with_trait(Trait trait) const;
  std::size_t count_with_trait(Trait trait) const;

 private:
  std::string platform_;
  std::vector<TypeInfo> types_;
};

}  // namespace wsx::catalog
