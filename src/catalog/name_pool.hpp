// name_pool.hpp — deterministic realistic-looking type-name synthesis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/intern.hpp"
#include "xsd/builtin.hpp"

namespace wsx::catalog {

/// Deterministic pseudo-random stream (splitmix64). The catalogs must be
/// bit-identical across runs and platforms, so we avoid std::mt19937's
/// distribution portability caveats.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();
  /// Uniform in [0, bound).
  std::size_t below(std::size_t bound);

 private:
  std::uint64_t state_;
};

/// Synthesizes unique class names that look like platform API types
/// ("BufferedChannelWriter", "DataGridViewCell", ...). Names are unique per
/// pool instance; deterministic for a given seed and call sequence.
class NamePool {
 public:
  explicit NamePool(std::uint64_t seed) : rng_(seed) {}

  /// A fresh class name, optionally forced to end with `suffix`
  /// (e.g. "Exception").
  std::string next_class_name(const std::string& suffix = "");

  /// A field name (camelCase), unique within nothing — callers dedupe.
  std::string next_field_name();

  /// A random built-in schema type for a field.
  xsd::Builtin next_field_type();

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  StringInterner used_;
};

}  // namespace wsx::catalog
