// spec_json.hpp — canonical JSON round-trip for the catalog population
// specs. The resilience journal fingerprints a campaign by its full config;
// the specs are the largest part of that config, and `wsinterop resume`
// rebuilds them from the journal header, so serialization must be lossless
// and canonical (fixed field order, integer formatting — see
// json::to_text's round-trip guarantee).
#pragma once

#include <string>
#include <string_view>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "common/result.hpp"

namespace wsx::catalog {

/// Renders the spec as one JSON object with every population quota.
std::string to_json(const JavaCatalogSpec& spec);
std::string to_json(const DotNetCatalogSpec& spec);

/// Parses a spec serialized by to_json. Errors use the "spec." prefix;
/// every field is required (a journal written by a newer layout must not
/// silently resume with defaults).
Result<JavaCatalogSpec> java_spec_from_json(std::string_view text);
Result<DotNetCatalogSpec> dotnet_spec_from_json(std::string_view text);

}  // namespace wsx::catalog
