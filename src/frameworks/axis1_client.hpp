// axis1_client.hpp — Apache Axis1 1.4 wsdl2java (Table II row 2).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// The oldest tool in the study ("probably due to the lack of recent
/// updates", §IV.A). It errors on unresolved references, silently accepts
/// operation-less descriptions, and its artifacts compile with raw-type
/// warnings on every service — and fail outright for Exception/Error
/// wrapper types (889 compilation errors across the Java servers).
class Axis1Client final : public ClientFramework {
 public:
  Axis1Client() = default;
  /// "Renaming the attribute fixes the compilation issue" (§IV.B.3): the
  /// patched variant generates the Exception/Error wrapper with consistent
  /// naming, eliminating the 889 compilation errors.
  explicit Axis1Client(bool patched_wrapper_naming)
      : patched_(patched_wrapper_naming) {}

  std::string name() const override { return "Apache Axis1 1.4"; }
  std::string tool() const override { return "wsdl2java"; }
  code::Language language() const override { return code::Language::kJava; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

 private:
  bool patched_ = false;
  /// Axis1 predates the 1.2-era extension stack entirely — it has no
  /// WS-Addressing/WS-Security runtime and sends pure SOAP 1.1.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
