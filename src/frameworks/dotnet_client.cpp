#include "frameworks/dotnet_client.hpp"

#include <cassert>

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

DotNetClient::DotNetClient(code::Language target) : target_(target) {
  assert(target == code::Language::kCSharp || target == code::Language::kVisualBasic ||
         target == code::Language::kJScript);
}

std::string DotNetClient::name() const {
  switch (target_) {
    case code::Language::kCSharp:
      return ".NET Framework 4.0.30319.17929 (C#)";
    case code::Language::kVisualBasic:
      return ".NET Framework 4.0.30319.17929 (Visual Basic .NET)";
    default:
      return ".NET Framework 4.0.30319.17929 (JScript .NET)";
  }
}

GenerationResult DotNetClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("wsdl.exe.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  if (features.unresolved_foreign_type_ref) {
    result.diagnostics.error("wsdl.exe.unresolved-type",
                             "Unable to import binding: referenced type is not defined");
  }
  if (features.unresolved_foreign_attr_ref) {
    result.diagnostics.error("wsdl.exe.unresolved-attribute",
                             "Unable to import binding: referenced attribute is not defined");
  }
  if (features.unresolved_attr_group) {
    result.diagnostics.error("wsdl.exe.unresolved-attribute-group",
                             "Unable to import binding: attributeGroup reference "
                             "cannot be resolved");
  }
  if (features.dual_type_declaration) {
    result.diagnostics.error("wsdl.exe.dual-type",
                             "Schema item 'element' is invalid: both a type attribute and an "
                             "anonymous type are present");
  }
  if (features.zero_operations) {
    result.diagnostics.error("wsdl.exe.no-operations",
                             "No operations were found to generate a proxy for");
  }
  if (features.missing_target_namespace) {
    result.diagnostics.error("wsdl.exe.no-target-namespace",
                             "The document has no targetNamespace");
  }
  if (features.dangling_message_reference) {
    result.diagnostics.error("wsdl.exe.missing-message",
                             "Unable to import operation: message not found");
  }
  if (features.dangling_part_reference) {
    result.diagnostics.error("wsdl.exe.missing-wrapper",
                             "Unable to import part: element not found");
  }
  if (features.duplicate_operations) {
    result.diagnostics.error("wsdl.exe.duplicate-operation",
                             "Duplicate operation found in portType");
  }
  if (features.unresolvable_wsdl_import) {
    result.diagnostics.error("wsdl.exe.unresolvable-import",
                             "Unable to download imported document");
  }
  if (features.encoded_use) {
    result.diagnostics.warn("wsdl.exe.encoded",
                            "binding uses SOAP encoding; rpc/encoded is not "
                            "WS-I Basic Profile conformant");
  }
  if (target_ == code::Language::kJScript) {
    if (features.unknown_extension_elements) {
      result.diagnostics.warn("wsdl.exe.unknown-extension",
                              "ignoring unknown extensibility element in wsdl:definitions");
    }
    if (features.self_recursive_type) {
      // The JScript backend aborts on recursive content models.
      result.diagnostics.crash("wsdl.exe.codegen-crash",
                               "internal failure in the JScript proxy generator");
    }
  }
  if (result.diagnostics.has_errors()) return result;

  ArtifactBuildOptions options;
  options.language = target_;
  if (target_ == code::Language::kJScript) {
    options.missing_body_on_complex_shapes = true;
    options.pathological_marker_on_very_deep = true;
  }
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
