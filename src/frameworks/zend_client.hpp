// zend_client.hpp — Zend Framework 1.9 Zend_Soap_Client (PHP, Table II).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// PHP's client is fully dynamic: proxies materialize at call time, so the
/// only generation-step outcomes are parse failures and the warning for
/// descriptions whose client object would have no methods. It is the one
/// tool in the study with zero errors everywhere — though for unresolved
/// references it builds an "uncommon data structure" the paper flags as a
/// risk for the later communication steps (surfaced here as a note).
class ZendClient final : public ClientFramework {
 public:
  std::string name() const override { return "Zend Framework 1.9"; }
  std::string tool() const override { return "Zend_Soap_Client"; }
  code::Language language() const override { return code::Language::kPhp; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

  InvocationPolicy invocation_policy() const override {
    InvocationPolicy policy;
    policy.marshals_uncommon_structure = true;
    return policy;
  }
  /// Zend_Soap rides PHP's ext/soap — SOAP 1.1 only, no extension headers.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
