#include "frameworks/axis1_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult Axis1Client::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("axis1.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  if (features.unresolved_foreign_type_ref) {
    result.diagnostics.error("axis1.unresolved-type",
                             "Type {..} is referenced but not defined");
  }
  if (features.unresolved_foreign_attr_ref) {
    result.diagnostics.error("axis1.unresolved-attribute",
                             "Attribute {..} is referenced but not defined");
  }
  if (features.schema_element_ref_nested) {
    // The plain DataSet idiom is tolerated (mapped to an opaque member),
    // but a schema ref inside a nested anonymous type derails the symbol
    // table.
    result.diagnostics.error("axis1.nested-schema-ref",
                             "cannot map nested reference to 's:schema'");
  }
  // Note: a description without operations is accepted silently — the
  // behaviour §IV.B.1 calls out as "obviously not the right behavior".
  // Axis1 is one of the paper's "erratic generation tools [that] might
  // silently reach this phase" (§III.B.c): even when it reports an error it
  // leaves partial artifacts behind, which proceed to compilation.
  ArtifactBuildOptions options;
  options.language = code::Language::kJava;
  options.raw_collection_stubs = true;
  options.throwable_wrapper_defect = !patched_;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
