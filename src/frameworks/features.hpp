// features.hpp — feature extraction over a parsed service description.
//
// Client artifact generators differ in which description features they
// tolerate; this analysis gives every client model the same factual view
// of the WSDL so that their policies — not ad-hoc string matching — decide
// the outcome.
#pragma once

#include <cstddef>

#include "wsdl/model.hpp"
#include "xsd/resolver.hpp"

namespace wsx::frameworks {

struct WsdlFeatures {
  // Reference resolution, categorized by what the tools key on.
  bool unresolved_foreign_type_ref = false;   ///< type= into an unimported namespace
  bool unresolved_foreign_attr_ref = false;   ///< attribute ref= into an unimported namespace
  bool unresolved_attr_group = false;         ///< dangling attributeGroup ref
  bool schema_element_ref = false;            ///< element ref= into the XSD namespace (s:schema)
  bool schema_element_ref_nested = false;     ///< ...inside a nested anonymous type
  bool schema_element_ref_duplicated = false; ///< ...appearing twice in one content model
  bool schema_element_ref_array = false;      ///< ...with maxOccurs="unbounded"
  bool xsd_attr_ref = false;                  ///< attribute ref= into the XSD namespace (s:lang)

  // Structural schema features.
  bool dual_type_declaration = false;   ///< element with type= and inline type
  bool wildcard_only_content = false;   ///< a complexType whose particles are all xs:any
  std::size_t max_wildcards_per_type = 0;
  std::size_t max_inline_depth = 0;     ///< deepest anonymous-type nesting
  bool self_recursive_type = false;     ///< complexType referencing itself
  bool anytype_unbounded_element = false;  ///< element of xsd:anyType, maxOccurs unbounded
  bool has_enumeration = false;         ///< schema declares an enum simpleType
  bool case_colliding_elements = false; ///< two sibling elements differing only in case

  // Description-level features.
  bool zero_operations = false;
  bool encoded_use = false;
  bool missing_soap_action = false;
  bool unknown_extension_elements = false;  ///< e.g. the JAX-WS customization stanza
  bool missing_target_namespace = false;
  bool dangling_message_reference = false;  ///< operation references a missing message
  bool dangling_part_reference = false;     ///< part element= has no schema declaration
  bool duplicate_operations = false;        ///< same operation name twice in a portType
  bool unresolvable_wsdl_import = false;    ///< wsdl:import without a location
};

/// Computes all features for `defs`.
WsdlFeatures analyze(const wsdl::Definitions& defs);

}  // namespace wsx::frameworks
