// registry.hpp — the framework roster of the study (Tables I and II).
#pragma once

#include <memory>
#include <vector>

#include "frameworks/client.hpp"
#include "frameworks/server.hpp"

namespace wsx::frameworks {

/// The three server-side subsystems of Table I, in table order:
/// Metro/GlassFish, JBossWS/JBoss AS, WCF/IIS.
std::vector<std::unique_ptr<ServerFramework>> make_servers();

/// The eleven client-side subsystems of Table II, in table order: Metro,
/// Axis1, Axis2, CXF, JBossWS, .NET (C#, VB, JScript), gSOAP, Zend, suds.
std::vector<std::unique_ptr<ClientFramework>> make_clients();

/// Individual factories (used by examples and focused tests).
std::unique_ptr<ServerFramework> make_server(std::string_view name);
std::unique_ptr<ClientFramework> make_client(std::string_view name);

}  // namespace wsx::frameworks
