// client.hpp — client-side framework subsystems (Table II).
//
// A client model performs testing-phase step (b): consume the served WSDL
// *text*, run the tool's own parsing/translation pipeline, and either fail
// (with the tool's diagnostics) or hand generated artifacts to step (c).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codemodel/model.hpp"
#include "common/diagnostics.hpp"
#include "frameworks/version_policy.hpp"

namespace wsx::frameworks {

class SharedDescription;

/// Outcome of one artifact-generation run.
struct GenerationResult {
  DiagnosticSink diagnostics;
  /// Present when the tool produced artifacts. Note that several studied
  /// tools produce artifacts *and* diagnostics, and some silently produce
  /// unusable artifacts — both combinations occur here too.
  std::optional<code::Artifacts> artifacts;

  bool produced_artifacts() const { return artifacts.has_value(); }
};

class ClientFramework {
 public:
  virtual ~ClientFramework() = default;

  virtual std::string name() const = 0;   ///< "Apache Axis1 1.4"
  virtual std::string tool() const = 0;   ///< "wsdl2java"
  virtual code::Language language() const = 0;

  /// Table II's "Compilation" column: false for PHP/Python, whose clients
  /// are checked by instantiation instead.
  bool requires_compilation() const { return code::requires_compilation(language()); }

  /// Generates client artifacts from a pre-parsed shared description. This
  /// is the primary entry point: campaigns parse each served WSDL once and
  /// hand the same immutable description to every client tool.
  virtual GenerationResult generate(const SharedDescription& description) const = 0;

  /// Convenience for callers holding raw served text (fuzzing and chaos
  /// paths mutate bytes, so there is nothing to share): parses the text
  /// into a throwaway SharedDescription and delegates to the virtual
  /// overload above.
  GenerationResult generate(std::string_view wsdl_text) const;

  /// Runtime marshalling behaviour for the Communication step (the paper's
  /// future work). These model how the generated/ dynamic proxies behave
  /// on the wire, not how the generators behave on the WSDL.
  struct InvocationPolicy {
    /// Omit the SOAPAction HTTP header when the binding declares none
    /// (gSOAP's stub behaviour) instead of sending an empty quoted value.
    bool omit_soap_action_when_unspecified = false;
    /// When the description carried unresolved references the tool mapped
    /// to an "uncommon data structure" (Zend), the proxy marshals the
    /// argument under the wrong element — the payload parses but the
    /// service echoes nothing.
    bool marshals_uncommon_structure = false;
  };
  virtual InvocationPolicy invocation_policy() const { return {}; }

  /// The runtime's documented version-validation stance (see
  /// version_policy.hpp). On the receive side it decides how the stack
  /// treats 1.2-era headers in responses; on the send side it picks the
  /// hybrid profile the proxy emits when the versions axis is active
  /// (profile_for). Default: strict — no WS-* runtime at all.
  virtual VersionPolicy version_policy() const { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
