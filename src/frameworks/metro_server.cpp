#include "frameworks/metro_server.hpp"

#include "frameworks/wsdl_builder.hpp"
#include "wsdl/writer.hpp"

namespace wsx::frameworks {

using catalog::Trait;

bool MetroServer::can_deploy(const catalog::TypeInfo& type) const {
  // JAXB bean rules: public default constructor, concrete, non-generic.
  // Interfaces are rejected — including the async API types JBossWS lets
  // through, which is why Metro publishes no zero-operation descriptions.
  return type.has(Trait::kDefaultCtor) && !type.has(Trait::kAbstract) &&
         !type.has(Trait::kInterface) && !type.has(Trait::kGenericType);
}

Result<DeployedService> MetroServer::deploy(const ServiceSpec& spec) const {
  if (spec.type == nullptr) return Error{"deploy.no-type", "service has no parameter type"};
  if (!can_deploy(*spec.type)) {
    return Error{"deploy.unbindable",
                 "Metro cannot bind '" + spec.type->qualified_name() +
                     "' to a schema type; deployment refused"};
  }

  WsdlBuilderOptions options;
  options.namespace_root = "http://metro.ws.example.org/";
  options.endpoint_root = "http://localhost:8080/metro/";
  options.wsa_style = WsdlBuilderOptions::WsaStyle::kForeignTypeRef;
  options.date_format_style = WsdlBuilderOptions::DateFormatStyle::kUnresolvedAttrGroup;
  options.attach_jaxws_extension = true;
  options.declare_faults_for_throwables = true;

  DeployedService service;
  service.spec = spec;
  service.wsdl = build_echo_wsdl(spec, options);

  // Metro refuses to publish a description without operations.
  if (service.wsdl.operation_count() == 0) {
    return Error{"deploy.no-operations",
                 "Metro refused to deploy '" + spec.service_name() +
                     "': the description would expose no operations"};
  }

  wsdl::WsdlWriteOptions write_options;  // Java stacks use the xs prefix
  service.wsdl_text = wsdl::to_string(service.wsdl, write_options);
  return service;
}

}  // namespace wsx::frameworks
