#include "frameworks/version_policy.hpp"

#include <sstream>

#include "frameworks/registry.hpp"

namespace wsx::frameworks {

const char* to_string(VersionPolicy policy) {
  switch (policy) {
    case VersionPolicy::kStrict:
      return "strict";
    case VersionPolicy::kRelaxed:
      return "relaxed";
    case VersionPolicy::kShadedCxf:
      return "shaded";
  }
  return "unknown";
}

std::optional<VersionPolicy> parse_version_policy(std::string_view name) {
  if (name == "strict") return VersionPolicy::kStrict;
  if (name == "relaxed") return VersionPolicy::kRelaxed;
  if (name == "shaded") return VersionPolicy::kShadedCxf;
  return std::nullopt;
}

std::array<VersionPolicy, kVersionPolicyCount> all_version_policies() {
  return {VersionPolicy::kStrict, VersionPolicy::kRelaxed, VersionPolicy::kShadedCxf};
}

soap::HybridProfile profile_for(VersionPolicy policy) {
  switch (policy) {
    case VersionPolicy::kStrict:
      return soap::HybridProfile::kPure11;
    case VersionPolicy::kRelaxed:
      return soap::HybridProfile::kAddressing;
    case VersionPolicy::kShadedCxf:
      return soap::HybridProfile::kSecured;
  }
  return soap::HybridProfile::kPure11;
}

std::string format_version_policy_matrix() {
  std::ostringstream out;
  out << "| model | role | version policy | emits profile |\n";
  out << "|---|---|---|---|\n";
  for (const auto& server : make_servers()) {
    out << "| " << server->name() << " | server | " << to_string(server->version_policy())
        << " | — |\n";
  }
  for (const auto& client : make_clients()) {
    out << "| " << client->name() << " | client | " << to_string(client->version_policy())
        << " | " << soap::to_string(profile_for(client->version_policy())) << " |\n";
  }
  return out.str();
}

}  // namespace wsx::frameworks
