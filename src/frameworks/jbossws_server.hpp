// jbossws_server.hpp — JBossWS CXF 4.2.3 on JBoss AS 7.2 (Table I row 2).
#pragma once

#include "frameworks/server.hpp"

namespace wsx::frameworks {

/// JBossWS rejects classes whose public API uses raw generics (243 of the
/// Metro-deployable population) but special-cases the JAX-WS async API
/// types — and then publishes descriptions with zero operations for them,
/// the unusable-but-WS-I-compliant WSDLs of §IV.B.1.
class JBossWsServer final : public ServerFramework {
 public:
  JBossWsServer() = default;
  /// Ablation constructor: with `refuse_zero_operations`, JBossWS adopts
  /// Metro's stricter behaviour and refuses to publish operation-less
  /// descriptions (the paper argues this is "a more adequate behavior").
  explicit JBossWsServer(bool refuse_zero_operations)
      : refuse_zero_operations_(refuse_zero_operations) {}

  std::string name() const override { return "JBossWS CXF 4.2.3"; }
  std::string application_server() const override { return "JBoss AS 7.2"; }
  std::string language() const override { return "Java"; }

  bool can_deploy(const catalog::TypeInfo& type) const override;
  Result<DeployedService> deploy(const ServiceSpec& spec) const override;

  /// CXF-based, deployed the way the Digikoppeling WUS estate ships its
  /// shaded CXF: the bundled WS-Addressing/WS-Security interceptors engage,
  /// so 1.2-era headers (mustUnderstand included) are processed, and the
  /// endpoint answers genuine SOAP 1.2 envelopes in kind.
  VersionPolicy version_policy() const override { return VersionPolicy::kShadedCxf; }

 private:
  bool refuse_zero_operations_ = false;
};

}  // namespace wsx::frameworks
