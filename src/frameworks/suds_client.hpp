// suds_client.hpp — suds 0.4, the lightweight Python SOAP client (Table II).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// Python's suds builds proxies dynamically, like Zend, but resolves the
/// schema eagerly: unresolved references into foreign namespaces abort
/// client construction, and its array handling chokes on a schema
/// reference under maxOccurs="unbounded" (its one DataSet failure).
class SudsClient final : public ClientFramework {
 public:
  std::string name() const override { return "suds Python 0.4"; }
  std::string tool() const override { return "suds Python client"; }
  code::Language language() const override { return code::Language::kPython; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;
  /// suds speaks plain SOAP 1.1 only — no WS-* plugin stack.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
