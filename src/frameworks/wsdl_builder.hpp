// wsdl_builder.hpp — shared construction of echo-service descriptions.
//
// All three server models use this builder; each passes its own quirk
// options, so the same native type produces genuinely different WSDL on
// different stacks — which is why a client can fail against one server's
// description of a class and succeed against another's (observed for
// SimpleDateFormat and W3CEndpointReference in the study).
#pragma once

#include <string>

#include "frameworks/service.hpp"
#include "wsdl/model.hpp"

namespace wsx::frameworks {

struct WsdlBuilderOptions {
  std::string namespace_root;  ///< e.g. "http://metro.example.org/"
  std::string endpoint_root;   ///< e.g. "http://localhost:8080/metro/"

  /// How the stack serializes javax.xml.ws.wsaddressing.W3CEndpointReference.
  enum class WsaStyle {
    kNone,
    kForeignTypeRef,  ///< Metro: element type= into the (unimported) WSA namespace
    kForeignAttrRef,  ///< JBossWS: attribute ref= into the WSA namespace
  };
  WsaStyle wsa_style = WsaStyle::kNone;

  /// How the stack serializes java.text.SimpleDateFormat.
  enum class DateFormatStyle {
    kNone,
    kUnresolvedAttrGroup,   ///< Metro: attributeGroup ref="xml:specialAttrs",
                            ///  xml namespace imported without a location
    kDualTypeDeclaration,   ///< JBossWS: element with type= AND inline type
  };
  DateFormatStyle date_format_style = DateFormatStyle::kNone;

  /// WCF: System.Data types serialize through the DataSet idiom
  /// (ref="s:schema" / ref="s:lang" / xs:any).
  bool dataset_idiom = false;

  /// JBossWS: async API interfaces deploy, but the binder silently drops
  /// the unmappable operation, publishing a description with no operations.
  bool async_yields_zero_operations = false;

  /// Java stacks attach a JAX-WS customization extension element that some
  /// foreign tools flag as unknown.
  bool attach_jaxws_extension = false;

  /// Java stacks declare a wsdl:fault for services whose parameter type is
  /// Exception/Error-derived (the JAX-WS mapping of checked exceptions).
  bool declare_faults_for_throwables = false;

  /// Inline-nesting depth used for types with Trait::kDeepNesting (the
  /// pathological subset gets kPathologicalNestingDepth).
  std::size_t deep_nesting_depth = 3;
  std::size_t pathological_nesting_depth = 5;

  /// Binding style. All studied stacks emit document/literal wrapped; the
  /// rpc/literal variant (type= parts, no wrapper elements) exists for
  /// substrate completeness and the custom-framework extension path.
  wsdl::SoapStyle binding_style = wsdl::SoapStyle::kDocument;
};

/// Builds the complete echo-service description for `spec`. The returned
/// model still has to be serialized by the caller (servers use their own
/// prefix conventions). Precondition: spec.type != nullptr.
wsdl::Definitions build_echo_wsdl(const ServiceSpec& spec, const WsdlBuilderOptions& options);

}  // namespace wsx::frameworks
