#include "frameworks/client.hpp"

#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult ClientFramework::generate(std::string_view wsdl_text) const {
  return generate(SharedDescription::from_text(wsdl_text));
}

}  // namespace wsx::frameworks
