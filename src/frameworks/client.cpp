#include "frameworks/client.hpp"

namespace wsx::frameworks {

// Currently all behaviour lives in the concrete client models; this
// translation unit anchors the vtable.

}  // namespace wsx::frameworks
