#include "frameworks/suds_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult SudsClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("suds.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  if (features.unresolved_foreign_type_ref) {
    result.diagnostics.error("suds.unresolved-type", "Type not found: referenced schema type");
  }
  if (features.unresolved_foreign_attr_ref) {
    result.diagnostics.error("suds.unresolved-attribute",
                             "Attribute not found: referenced schema attribute");
  }
  if (features.schema_element_ref_array) {
    result.diagnostics.error("suds.schema-ref-array",
                             "cannot build array binding over reference to 's:schema'");
  }
  if (features.dangling_part_reference) {
    result.diagnostics.error("suds.missing-wrapper",
                             "Type not found: message part element");
  }
  if (features.zero_operations) {
    result.diagnostics.warn("suds.no-operations",
                            "client object created but exposes no methods");
  }
  if (features.encoded_use) {
    result.diagnostics.warn("suds.encoded", "SOAP-encoded binding; marshaller support limited");
  }
  if (result.diagnostics.has_errors()) return result;

  ArtifactBuildOptions options;
  options.language = code::Language::kPython;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
