// gsoap_client.hpp — gSOAP Toolkit 2.8.16 wsdl2h + soapcpp2 (Table II).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// The only two-stage generator in the study: wsdl2h maps the description
/// to a C/C++ header model, soapcpp2 turns the header into proxy code. The
/// paper traces its failures to "inconsistent inter-operation between the
/// two client artifact generation tools" — here, wsdl2h happily maps a
/// duplicated DataSet schema reference that soapcpp2 then rejects as a
/// duplicate typedef. Unknown foreign types map to xsd__anyType, which is
/// why gSOAP survives descriptions that break every Java tool.
class GsoapClient final : public ClientFramework {
 public:
  std::string name() const override { return "gSOAP Toolkit 2.8.16"; }
  std::string tool() const override { return "wsdl2h.exe and soapcpp2.exe"; }
  code::Language language() const override { return code::Language::kCpp; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

  InvocationPolicy invocation_policy() const override {
    InvocationPolicy policy;
    policy.omit_soap_action_when_unspecified = true;
    return policy;
  }
  /// gSOAP stubs are compiled for exactly the binding they were generated
  /// from: no WS-* runtime, strict version coherence.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
