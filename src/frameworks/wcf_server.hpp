// wcf_server.hpp — WCF .NET 4.0.30319.17929 on IIS 8.0 Express (Table I).
#pragma once

#include "frameworks/server.hpp"

namespace wsx::frameworks {

/// WCF requires [Serializable] types with default constructors. Its
/// serializer emits the DataSet idiom (s:schema / s:lang / xs:any) for
/// System.Data types — the source of 80 non-WS-I-compliant descriptions —
/// and uses the "s" prefix for the XML Schema namespace.
class WcfServer final : public ServerFramework {
 public:
  std::string name() const override { return "WCF .NET 4.0.30319.17929"; }
  std::string application_server() const override { return "IIS 8.0.8418.0 (Express)"; }
  std::string language() const override { return "C#"; }

  bool can_deploy(const catalog::TypeInfo& type) const override;
  Result<DeployedService> deploy(const ServiceSpec& spec) const override;
  bool requires_soap_action_header() const override { return true; }

  /// basicHttpBinding with AddressingVersion.None: WCF faults on any
  /// WS-Addressing/WS-Security header it was not configured for — full
  /// version-coherence enforcement.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
