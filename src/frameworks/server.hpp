// server.hpp — server-side framework subsystems.
//
// A server framework model does what the real stack does at deployment:
// decide whether the native type is bindable (the paper's 22024 → 7239
// filter), generate the service's WSDL (with each stack's documented
// quirks), and — for the communication/execution extension — answer SOAP
// requests against a deployed service.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "frameworks/service.hpp"
#include "frameworks/version_policy.hpp"
#include "soap/envelope.hpp"
#include "soap/http.hpp"
#include "wsdl/model.hpp"

namespace wsx::frameworks {

/// A successfully deployed service: its model plus the exact WSDL text the
/// application server publishes (clients consume the text, not the model —
/// everything crosses a real serialize/parse boundary).
struct DeployedService {
  ServiceSpec spec;
  wsdl::Definitions wsdl;
  std::string wsdl_text;
};

class ServerFramework {
 public:
  virtual ~ServerFramework() = default;

  virtual std::string name() const = 0;                ///< "Metro 2.3"
  virtual std::string application_server() const = 0;  ///< "GlassFish 4.0"
  virtual std::string language() const = 0;            ///< "Java" / "C#"

  /// True when the framework's binder can map `type` to a schema type. A
  /// false return models the deployment refusals that filtered the paper's
  /// corpus from 22024 candidates to 7239 deployable services.
  virtual bool can_deploy(const catalog::TypeInfo& type) const = 0;

  /// Deploys the service and publishes its description (testing-phase step
  /// (a), Service Description Generation). Errors use the "deploy." prefix.
  virtual Result<DeployedService> deploy(const ServiceSpec& spec) const = 0;

  /// The stack's documented version-validation policy (see
  /// version_policy.hpp for the taxonomy and per-stack rationale).
  /// Campaigns may override it per round via the explicit-policy overloads
  /// below — that sweep is the `--versions` robustness axis.
  virtual VersionPolicy version_policy() const { return VersionPolicy::kStrict; }

  /// Execution step (paper's future work): handles one request envelope
  /// against a deployed service, echoing the argument back. The two-arg
  /// form validates under the stack's documented version_policy().
  soap::Envelope handle_request(const DeployedService& service,
                                const soap::Envelope& request) const;
  soap::Envelope handle_request(const DeployedService& service,
                                const soap::Envelope& request,
                                VersionPolicy policy) const;

  /// True when the stack's HTTP listener refuses requests without a
  /// SOAPAction header (.NET does; the Java stacks dispatch on the body).
  virtual bool requires_soap_action_header() const { return false; }

  /// Full Communication + Execution steps over the HTTP wire model:
  /// header checks (Content-Type per the version policy), envelope
  /// parsing, dispatch, response serialization. The two-arg form uses the
  /// stack's documented version_policy().
  soap::HttpResponse handle_http(const DeployedService& service,
                                 const soap::HttpRequest& request) const;
  soap::HttpResponse handle_http(const DeployedService& service,
                                 const soap::HttpRequest& request,
                                 VersionPolicy policy) const;
};

}  // namespace wsx::frameworks
