// shared_description.hpp — parse-once service description shared by every
// consumer of a deployed service.
//
// A campaign used to re-parse each service's WSDL text once per client tool
// (11×), once more for the WS-I check, and once per echo invocation — the
// same bytes, the same tree, every time. A SharedDescription performs that
// front half exactly once and hands out immutable views behind a
// shared_ptr: the client-view Definitions + feature vector (parsed from the
// *served text*, preserving the wire serialize/parse boundary), the
// server-model feature vector the runtime marshaller keys on, and the WS-I
// Basic Profile verdict (computed over the server model, as the study's
// description step always has). Copies are cheap handle copies; all state
// is const after construction, so one description may be read from any
// number of campaign worker threads.
//
// Fuzz/chaos paths that mutate raw WSDL bytes still enter through
// from_text(), which parses the mutated text and skips the server-side
// extras — there is no server model for a byte-level mutant.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "frameworks/features.hpp"
#include "wsdl/model.hpp"
#include "wsi/profile.hpp"

namespace wsx::frameworks {

struct DeployedService;

class SharedDescription {
 public:
  /// Parses `wsdl_text` and computes the client-view feature vector. No
  /// WS-I verdict and no server-model features (there is no server model).
  static SharedDescription from_text(std::string_view wsdl_text);

  /// Full pipeline for a deployed service: parses the served text for the
  /// client view, analyzes the server model for marshalling, and (when
  /// `with_wsi`) runs the WS-I Basic Profile check over the server model.
  static SharedDescription from_deployed(const DeployedService& service, bool with_wsi = true);

  /// True when the served text parsed as a WSDL description.
  bool parsed_ok() const { return !state_->parse_error.has_value(); }

  /// Precondition: !parsed_ok().
  const Error& parse_error() const { return *state_->parse_error; }

  /// Client-view description, parsed from the served text.
  /// Precondition: parsed_ok().
  const wsdl::Definitions& definitions() const { return state_->defs; }

  /// Client-view feature vector. Precondition: parsed_ok().
  const WsdlFeatures& features() const { return state_->features; }

  /// Server-model feature vector (marshalling view), or nullptr when the
  /// description was built from bare text.
  const WsdlFeatures* server_features() const {
    return state_->server_features ? &*state_->server_features : nullptr;
  }

  /// WS-I verdict over the server model, or nullptr when not computed.
  const wsi::ComplianceReport* wsi_report() const {
    return state_->wsi ? &*state_->wsi : nullptr;
  }

  /// The exact served bytes this description was parsed from.
  std::string_view wsdl_text() const { return state_->wsdl_text; }

 private:
  struct State {
    std::string wsdl_text;
    std::optional<Error> parse_error;
    wsdl::Definitions defs;      ///< valid iff !parse_error
    WsdlFeatures features{};     ///< valid iff !parse_error
    std::optional<WsdlFeatures> server_features;
    std::optional<wsi::ComplianceReport> wsi;
  };

  explicit SharedDescription(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

}  // namespace wsx::frameworks
