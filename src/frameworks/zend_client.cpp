#include "frameworks/zend_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult ZendClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("zend.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  if (features.zero_operations) {
    result.diagnostics.warn("zend.no-operations",
                            "client object created but exposes no methods");
  }
  if (features.unresolved_foreign_type_ref || features.unresolved_foreign_attr_ref ||
      features.schema_element_ref) {
    result.diagnostics.note("zend.uncommon-structure",
                            "unresolved references mapped to an uncommon data structure; "
                            "later inter-operation steps may be affected");
  }

  ArtifactBuildOptions options;
  options.language = code::Language::kPhp;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
