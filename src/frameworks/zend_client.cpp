#include "frameworks/zend_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/client_common.hpp"

namespace wsx::frameworks {

GenerationResult ZendClient::generate(std::string_view wsdl_text) const {
  GenerationResult result;
  Result<ParsedWsdl> parsed = parse_and_analyze(wsdl_text);
  if (!parsed.ok()) {
    result.diagnostics.error("zend.parse", parsed.error().message);
    return result;
  }
  const WsdlFeatures& features = parsed->features;

  if (features.zero_operations) {
    result.diagnostics.warn("zend.no-operations",
                            "client object created but exposes no methods");
  }
  if (features.unresolved_foreign_type_ref || features.unresolved_foreign_attr_ref ||
      features.schema_element_ref) {
    result.diagnostics.note("zend.uncommon-structure",
                            "unresolved references mapped to an uncommon data structure; "
                            "later inter-operation steps may be affected");
  }

  ArtifactBuildOptions options;
  options.language = code::Language::kPhp;
  result.artifacts = build_artifacts(parsed->defs, features, options);
  return result;
}

}  // namespace wsx::frameworks
