#include "frameworks/service.hpp"

namespace wsx::frameworks {

const char* to_string(ServiceShape shape) {
  return shape == ServiceShape::kSimpleEcho ? "simple-echo" : "crud";
}

std::string ServiceSpec::service_name() const {
  const std::string type_name = type != nullptr ? type->name : std::string{"Unknown"};
  return (shape == ServiceShape::kSimpleEcho ? "Echo" : "Crud") + type_name;
}

std::vector<ServiceSpec> make_services(const catalog::TypeCatalog& catalog,
                                       ServiceShape shape) {
  std::vector<ServiceSpec> services;
  services.reserve(catalog.size());
  for (const catalog::TypeInfo& type : catalog.types()) {
    services.push_back(ServiceSpec{&type, shape});
  }
  return services;
}

}  // namespace wsx::frameworks
