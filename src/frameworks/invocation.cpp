#include "frameworks/invocation.hpp"

#include "compilers/compiler.hpp"
#include "frameworks/features.hpp"
#include "frameworks/shared_description.hpp"
#include "soap/message.hpp"
#include "soap/version.hpp"

namespace wsx::frameworks {

PreparedCall prepare_echo_call(const DeployedService& service,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler) {
  return prepare_echo_call(service, SharedDescription::from_deployed(service, /*with_wsi=*/false),
                           client, compiler);
}

PreparedCall prepare_echo_call(const DeployedService& service,
                               const SharedDescription& description,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler) {
  return prepare_call(service, description, client, compiler, /*payload=*/nullptr);
}

PreparedCall prepare_echo_call(const DeployedService& service,
                               const SharedDescription& description,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler,
                               soap::HybridProfile profile) {
  return prepare_call(service, description, client, compiler, /*payload=*/nullptr, profile);
}

PreparedCall prepare_call(const DeployedService& service,
                          const SharedDescription& description,
                          const ClientFramework& client,
                          const compilers::Compiler* compiler,
                          const CallPayload* payload,
                          soap::HybridProfile profile) {
  PreparedCall call;

  // Steps 2–3 gate the call exactly as in the main study.
  GenerationResult generation = client.generate(description);
  if (generation.diagnostics.has_errors() || !generation.produced_artifacts()) {
    return call;
  }
  if (compiler != nullptr && compiler->compile(*generation.artifacts).has_errors()) {
    return call;
  }
  if (generation.artifacts->client_operations.empty()) {
    // The method-less client objects of the zero-operation descriptions.
    call.status = PreparedCall::Status::kNoInvocableProxy;
    return call;
  }

  call.operation = generation.artifacts->client_operations.front();
  if (payload == nullptr) {
    // Typed proxies send values from the parameter type's value space: for
    // enumeration types the stub API only admits the declared constants.
    call.payload = "probe-" + service.spec.service_name();
    for (const xsd::Schema& schema : service.wsdl.schemas) {
      for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
        if (!simple.enumeration.empty()) call.payload = simple.enumeration.front();
      }
    }
  } else {
    call.payload = payload->expected_echo();
  }

  // Marshalling — the client runtime builds the request envelope. The
  // server-model feature vector is precomputed by the shared description.
  const ClientFramework::InvocationPolicy policy = client.invocation_policy();
  const WsdlFeatures features =
      description.server_features() != nullptr ? *description.server_features()
                                               : analyze(service.wsdl);
  const bool uncommon = policy.marshals_uncommon_structure &&
                        (features.unresolved_foreign_type_ref ||
                         features.unresolved_foreign_attr_ref || features.schema_element_ref);
  call.uncommon_marshalling = uncommon;
  const std::string argument_name = uncommon ? "arg0Struct" : "arg0";
  Result<soap::Envelope> request =
      payload != nullptr && !payload->fields.empty()
          ? soap::build_structured_request(service.wsdl, call.operation, payload->fields)
          : soap::build_request(service.wsdl, call.operation,
                                {{argument_name, call.payload}});
  if (!request.ok()) {
    call.status = PreparedCall::Status::kNoInvocableProxy;
    return call;
  }

  // Mixed-version dressing: the hybrid profile's 1.2-era headers go onto
  // the wire form; the pure-1.1 serialization is kept as the downgrade
  // form a version-mismatch recovery retransmits.
  const std::string downgrade_text = soap::write(*request);
  std::string wire_text = downgrade_text;
  if (profile != soap::HybridProfile::kPure11) {
    soap::apply_hybrid_profile(*request, profile, call.operation);
    wire_text = soap::write(*request);
    call.hybrid = wire_text != downgrade_text;
  }

  // SOAPAction header policy.
  bool binding_declares_action = false;
  for (const wsdl::Binding& binding : service.wsdl.bindings) {
    for (const wsdl::BindingOperation& bound : binding.operations) {
      if (bound.name == call.operation && bound.has_soap_action) {
        binding_declares_action = true;
      }
    }
  }
  const std::string url = service.wsdl.services.empty()
                              ? "http://localhost/"
                              : service.wsdl.services.front().ports.front().location;
  call.request = soap::make_soap_request(url, "", std::move(wire_text));
  call.downgrade_request = soap::make_soap_request(url, "", downgrade_text);
  if (!binding_declares_action && policy.omit_soap_action_when_unspecified) {
    // gSOAP stubs send no SOAPAction header when the binding declares none.
    call.request.remove_header("SOAPAction");
    call.downgrade_request.remove_header("SOAPAction");
  }
  call.status = PreparedCall::Status::kReady;
  return call;
}

EchoClassification classify_echo_response(const soap::HttpResponse& response,
                                          const std::string& payload) {
  EchoClassification result;
  result.http_status = response.status;
  if (response.status == 405 || response.status == 415) {
    result.outcome = EchoOutcome::kTransportError;
    return result;
  }
  Result<soap::Envelope> envelope = soap::parse(response.body);
  if (!envelope.ok()) {
    result.outcome = EchoOutcome::kTransportError;
    return result;
  }
  if (envelope->is_fault()) {
    // Distinguish header-level rejections from execution faults, and the
    // version-policy rejections of the mixed-version axis from both: a
    // VersionMismatch or MustUnderstand code (either version's spelling)
    // marks the call recoverable by downgrading to the 1.1-coherent form.
    const std::string& code = envelope->fault().fault_code;
    const std::size_t colon = code.find(':');
    const std::string_view local = colon == std::string::npos
                                       ? std::string_view(code)
                                       : std::string_view(code).substr(colon + 1);
    if (local == "VersionMismatch" || local == "MustUnderstand") {
      result.outcome = EchoOutcome::kVersionMismatch;
      return result;
    }
    result.outcome =
        envelope->fault().fault_string.find("SOAPAction") != std::string::npos
            ? EchoOutcome::kTransportError
            : EchoOutcome::kServerFault;
    return result;
  }
  Result<std::string> echoed = soap::response_value(*envelope);
  if (!echoed.ok()) {
    result.outcome = EchoOutcome::kServerFault;
    return result;
  }
  result.outcome = *echoed == payload ? EchoOutcome::kOk : EchoOutcome::kEchoMismatch;
  return result;
}

}  // namespace wsx::frameworks
