#include "frameworks/metro_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult MetroClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("wsimport.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  // The binding-related failures are curable by a manual customization
  // (§IV.B.2); with one in place they downgrade to warnings.
  const auto binding_issue = [&](const char* code, const char* message) {
    if (customized_) {
      result.diagnostics.warn(std::string(code) + ".customized",
                              std::string(message) + " (mapped by bindings customization)");
    } else {
      result.diagnostics.error(code, message);
    }
  };
  if (features.unresolved_foreign_type_ref) {
    binding_issue("wsimport.unresolved-type",
                  "undefined type referenced from schema; "
                  "consider a JAX-B bindings customization");
  }
  if (features.unresolved_foreign_attr_ref) {
    binding_issue("wsimport.unresolved-attribute", "attribute reference cannot be resolved");
  }
  if (features.schema_element_ref) {
    binding_issue("wsimport.s-schema", "element reference 's:schema' is not recognized");
  }
  if (features.xsd_attr_ref) {
    binding_issue("wsimport.s-lang", "attribute reference 's:lang' is not recognized");
  }
  if (features.wildcard_only_content) {
    binding_issue("wsimport.s-any", "cannot bind a content model consisting only of 's:any'");
  }
  if (features.zero_operations) {
    result.diagnostics.error("wsimport.no-operations",
                             "the description declares no operations to import");
  }
  if (features.missing_target_namespace) {
    result.diagnostics.error("wsimport.no-target-namespace",
                             "wsdl:definitions has no targetNamespace");
  }
  if (features.dangling_message_reference) {
    result.diagnostics.error("wsimport.missing-message",
                             "operation references a message that is not defined");
  }
  if (features.dangling_part_reference) {
    result.diagnostics.error("wsimport.missing-wrapper",
                             "message part references an undeclared element");
  }
  if (features.duplicate_operations) {
    result.diagnostics.error("wsimport.duplicate-operation",
                             "operation overloading is not supported");
  }
  if (features.unresolvable_wsdl_import) {
    result.diagnostics.error("wsimport.unresolvable-import",
                             "failed to read imported WSDL document (no location)");
  }
  if (features.dual_type_declaration) {
    result.diagnostics.warn("wsimport.dual-type",
                            "element declares both a type attribute and an anonymous type; "
                            "the anonymous type is ignored");
  }
  if (result.diagnostics.has_errors()) return result;

  ArtifactBuildOptions options;
  options.language = code::Language::kJava;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
