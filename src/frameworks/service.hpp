// service.hpp — the echo services the study deploys.
//
// "Each service has a single operation with one input and one output
// variable of the same type. The operation simply returns the provided
// input without further processing." (paper §III.A.c)
#pragma once

#include <string>

#include "catalog/type_info.hpp"

namespace wsx::frameworks {

/// Service complexity levels. The paper's first batch is the simple echo
/// shape; kCrud implements its future work ("services with a higher level
/// of complexity to cover more elaborate patterns of inter-operation"):
/// three operations (store/fetch/list) with an unbounded array return.
enum class ServiceShape { kSimpleEcho, kCrud };

const char* to_string(ServiceShape shape);

/// One generated test service over one native type.
struct ServiceSpec {
  const catalog::TypeInfo* type = nullptr;  ///< parameter/return type (non-null)
  ServiceShape shape = ServiceShape::kSimpleEcho;

  /// Service name derived from the type, e.g. "EchoW3CEndpointReference".
  std::string service_name() const;
  /// The simple shape's single operation ("echo").
  static std::string operation_name() { return "echo"; }
};

/// Builds one ServiceSpec per type in `catalog`.
std::vector<ServiceSpec> make_services(const catalog::TypeCatalog& catalog,
                                       ServiceShape shape = ServiceShape::kSimpleEcho);

}  // namespace wsx::frameworks
