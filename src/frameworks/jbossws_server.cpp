#include "frameworks/jbossws_server.hpp"

#include "frameworks/wsdl_builder.hpp"
#include "wsdl/writer.hpp"

namespace wsx::frameworks {

using catalog::Trait;

bool JBossWsServer::can_deploy(const catalog::TypeInfo& type) const {
  if (type.has(Trait::kAsyncApi)) return true;  // Future/Response special case
  return type.has(Trait::kDefaultCtor) && !type.has(Trait::kAbstract) &&
         !type.has(Trait::kInterface) && !type.has(Trait::kGenericType) &&
         !type.has(Trait::kRawGenericApi);
}

Result<DeployedService> JBossWsServer::deploy(const ServiceSpec& spec) const {
  if (spec.type == nullptr) return Error{"deploy.no-type", "service has no parameter type"};
  if (!can_deploy(*spec.type)) {
    return Error{"deploy.unbindable",
                 "JBossWS cannot bind '" + spec.type->qualified_name() +
                     "' to a schema type; deployment refused"};
  }

  WsdlBuilderOptions options;
  options.namespace_root = "http://jbossws.ws.example.org/";
  options.endpoint_root = "http://localhost:8080/jbossws/";
  options.wsa_style = WsdlBuilderOptions::WsaStyle::kForeignAttrRef;
  options.date_format_style = WsdlBuilderOptions::DateFormatStyle::kDualTypeDeclaration;
  options.async_yields_zero_operations = true;  // publishes unusable WSDLs
  options.attach_jaxws_extension = true;
  options.declare_faults_for_throwables = true;

  DeployedService service;
  service.spec = spec;
  service.wsdl = build_echo_wsdl(spec, options);
  if (refuse_zero_operations_ && service.wsdl.operation_count() == 0) {
    return Error{"deploy.no-operations",
                 "JBossWS (strict ablation) refused to deploy '" + spec.service_name() +
                     "': the description would expose no operations"};
  }
  service.wsdl_text = wsdl::to_string(service.wsdl);
  return service;
}

}  // namespace wsx::frameworks
