#include "frameworks/registry.hpp"

#include "frameworks/axis1_client.hpp"
#include "frameworks/axis2_client.hpp"
#include "frameworks/cxf_client.hpp"
#include "frameworks/dotnet_client.hpp"
#include "frameworks/gsoap_client.hpp"
#include "frameworks/jbossws_client.hpp"
#include "frameworks/jbossws_server.hpp"
#include "frameworks/metro_client.hpp"
#include "frameworks/metro_server.hpp"
#include "frameworks/suds_client.hpp"
#include "frameworks/wcf_server.hpp"
#include "frameworks/zend_client.hpp"

namespace wsx::frameworks {

std::vector<std::unique_ptr<ServerFramework>> make_servers() {
  std::vector<std::unique_ptr<ServerFramework>> servers;
  servers.push_back(std::make_unique<MetroServer>());
  servers.push_back(std::make_unique<JBossWsServer>());
  servers.push_back(std::make_unique<WcfServer>());
  return servers;
}

std::vector<std::unique_ptr<ClientFramework>> make_clients() {
  std::vector<std::unique_ptr<ClientFramework>> clients;
  clients.push_back(std::make_unique<MetroClient>());
  clients.push_back(std::make_unique<Axis1Client>());
  clients.push_back(std::make_unique<Axis2Client>());
  clients.push_back(std::make_unique<CxfClient>());
  clients.push_back(std::make_unique<JBossWsClient>());
  clients.push_back(std::make_unique<DotNetClient>(code::Language::kCSharp));
  clients.push_back(std::make_unique<DotNetClient>(code::Language::kVisualBasic));
  clients.push_back(std::make_unique<DotNetClient>(code::Language::kJScript));
  clients.push_back(std::make_unique<GsoapClient>());
  clients.push_back(std::make_unique<ZendClient>());
  clients.push_back(std::make_unique<SudsClient>());
  return clients;
}

std::unique_ptr<ServerFramework> make_server(std::string_view name) {
  for (auto& server : make_servers()) {
    if (server->name() == name) return std::move(server);
  }
  return nullptr;
}

std::unique_ptr<ClientFramework> make_client(std::string_view name) {
  for (auto& client : make_clients()) {
    if (client->name() == name) return std::move(client);
  }
  return nullptr;
}

}  // namespace wsx::frameworks
