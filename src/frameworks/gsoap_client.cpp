#include "frameworks/gsoap_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult GsoapClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("wsdl2h.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  // --- Stage 1: wsdl2h. ---
  // Unknown foreign types/attributes map to xsd__anyType (tolerated), but a
  // dangling attributeGroup has no such fallback.
  if (features.unresolved_attr_group) {
    result.diagnostics.error("wsdl2h.attribute-group",
                             "cannot resolve attributeGroup reference; no header emitted");
    return result;
  }
  if (features.zero_operations) {
    result.diagnostics.warn("wsdl2h.empty-service",
                            "description contains no operations; generated header is empty");
  }
  if (features.missing_target_namespace) {
    result.diagnostics.warn("wsdl2h.no-target-namespace",
                            "definitions has no targetNamespace; using a synthetic one");
  }
  if (features.unresolvable_wsdl_import) {
    result.diagnostics.warn("wsdl2h.unresolvable-import",
                            "skipping wsdl:import without a location");
  }

  // --- Stage 2: soapcpp2, consuming the stage-1 header. ---
  if (features.schema_element_ref_duplicated) {
    // wsdl2h emitted two identical typedefs for the duplicated s:schema
    // reference; soapcpp2 rejects its sibling tool's own output.
    result.diagnostics.error("soapcpp2.duplicate-typedef",
                             "redefinition of 'xsd__schema' in generated header");
    return result;
  }

  ArtifactBuildOptions options;
  options.language = code::Language::kCpp;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
