#include "frameworks/cxf_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult CxfClient::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("cxf.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  // Binding-related failures downgrade to warnings when a manual bindings
  // customization is supplied (paper §IV.B.2).
  const auto binding_issue = [&](const char* code, const char* message) {
    if (customized_) {
      result.diagnostics.warn(std::string(code) + ".customized",
                              std::string(message) + " (mapped by bindings customization)");
    } else {
      result.diagnostics.error(code, message);
    }
  };
  if (features.unresolved_foreign_type_ref) {
    binding_issue("cxf.unresolved-type", "undefined schema type referenced");
  }
  if (features.unresolved_foreign_attr_ref) {
    binding_issue("cxf.unresolved-attribute", "undefined attribute referenced");
  }
  if (features.schema_element_ref) {
    binding_issue("cxf.s-schema", "unexpected element reference 's:schema'");
  }
  if (features.xsd_attr_ref) {
    binding_issue("cxf.s-lang", "unexpected attribute reference 's:lang'");
  }
  if (features.wildcard_only_content) {
    binding_issue("cxf.s-any", "cannot bind wildcard-only content model ('s:any')");
  }
  if (features.missing_target_namespace) {
    result.diagnostics.error("cxf.no-target-namespace",
                             "wsdl:definitions has no targetNamespace");
  }
  if (features.dangling_message_reference) {
    result.diagnostics.error("cxf.missing-message",
                             "operation references a message that is not defined");
  }
  if (features.dangling_part_reference) {
    result.diagnostics.error("cxf.missing-wrapper",
                             "message part references an undeclared element");
  }
  if (features.duplicate_operations) {
    result.diagnostics.error("cxf.duplicate-operation",
                             "duplicate operation in portType");
  }
  if (features.unresolvable_wsdl_import) {
    result.diagnostics.error("cxf.unresolvable-import",
                             "cannot resolve wsdl:import without a location");
  }
  // Operation-less descriptions pass silently (§IV.B.1).
  if (result.diagnostics.has_errors()) return result;

  ArtifactBuildOptions options;
  options.language = code::Language::kJava;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
