#include "frameworks/server.hpp"

#include "common/strings.hpp"
#include "soap/message.hpp"
#include "soap/version.hpp"
#include "xsd/values.hpp"

namespace wsx::frameworks {

soap::Envelope ServerFramework::handle_request(const DeployedService& service,
                                               const soap::Envelope& request) const {
  return handle_request(service, request, version_policy());
}

soap::Envelope ServerFramework::handle_request(const DeployedService& service,
                                               const soap::Envelope& request,
                                               VersionPolicy policy) const {
  // A shaded-CXF deployment answers a genuine SOAP 1.2 envelope in kind;
  // everything else on this endpoint speaks 1.1 — faults included.
  const soap::SoapVersion respond =
      policy == VersionPolicy::kShadedCxf && request.version() == soap::SoapVersion::k12
          ? soap::SoapVersion::k12
          : soap::SoapVersion::k11;
  const auto fault = [respond](std::string code, std::string reason, std::string detail) {
    return soap::Envelope::make_fault(
        {std::move(code), std::move(reason), std::move(detail)}, respond);
  };

  // The studied stacks bind services to SOAP 1.1 endpoints; a 1.2 envelope
  // gets the standard VersionMismatch fault — unless the shaded runtime's
  // bundled 1.2 support engages.
  if (request.version() != soap::SoapVersion::k11 && policy != VersionPolicy::kShadedCxf) {
    return fault("soap:VersionMismatch", "endpoint only accepts SOAP 1.1 envelopes", "");
  }
  const soap::VersionCoherence coherence = soap::inspect_coherence(request);
  if (policy == VersionPolicy::kStrict && coherence.has_12_era_headers) {
    // Strict version coherence: a 1.1 envelope must not carry the 1.2-era
    // extension stack at all, mustUnderstand or not.
    return fault("soap:VersionMismatch",
                 "SOAP 1.2-era extension header on a SOAP 1.1 endpoint", "");
  }
  // Header entries demanding mustUnderstand processing: the echo services
  // understand no extension headers, so SOAP requires a fault — except the
  // shaded runtime, whose bundled WS-A/WS-Security modules process the
  // known 1.2-era headers. Unknown mustUnderstand headers fault everywhere.
  if (coherence.has_unknown_mu_headers ||
      (coherence.has_12_era_mu_headers && policy != VersionPolicy::kShadedCxf)) {
    return fault("soap:MustUnderstand", "header not understood by this endpoint", "");
  }
  Result<std::string> operation = soap::request_operation(request);
  if (!operation.ok()) {
    return fault("soap:Client", "malformed request", operation.error().message);
  }
  bool described = false;
  for (const wsdl::PortType& port_type : service.wsdl.port_types) {
    for (const wsdl::Operation& candidate : port_type.operations) {
      if (candidate.name == *operation) described = true;
    }
  }
  if (!described) {
    return fault("soap:Client", "unknown operation '" + *operation + "'", "");
  }
  // Unmarshal by element name, as a real binder does: arguments under an
  // unexpected element are silently dropped (they are "lax" content), so a
  // client that marshals into the wrong element gets an empty echo back.
  std::string value;
  for (const soap::Argument& argument : soap::request_arguments(request)) {
    if (argument.name == "arg0") value = argument.value;
  }

  // Structured payloads (typed proxies marshal bean fields as child
  // elements of arg0): validate every field against the parameter type's
  // schema before echoing — the typed-unmarshalling path of real binders.
  if (const xml::Element* argument = request.body().child("arg0")) {
    const std::vector<const xml::Element*> field_elements = argument->child_elements();
    if (!field_elements.empty()) {
      // Resolve the parameter complexType through the operation wrapper.
      const xsd::ComplexType* parameter_type = nullptr;
      for (const xsd::Schema& schema : service.wsdl.schemas) {
        const xsd::ElementDecl* wrapper = schema.find_element(*operation);
        if (wrapper == nullptr || !wrapper->inline_type.has_value()) continue;
        for (const xsd::ElementDecl* arg_decl : wrapper->inline_type->elements()) {
          if (arg_decl->name == "arg0" && !arg_decl->type.empty()) {
            parameter_type = schema.find_complex_type(arg_decl->type.local_name());
          }
        }
      }
      if (parameter_type != nullptr) {
        for (const xml::Element* field : field_elements) {
          const xsd::ElementDecl* declared = nullptr;
          for (const xsd::ElementDecl* candidate : parameter_type->elements()) {
            if (candidate->name == field->local_name()) declared = candidate;
          }
          if (declared == nullptr) {
            return fault(
                "soap:Client",
                "unmarshalling error: unexpected element '" + field->local_name() + "'", "");
          }
          const std::optional<xsd::Builtin> builtin =
              declared->type.namespace_uri() == xml::ns::kXsd
                  ? xsd::builtin_from_local_name(declared->type.local_name())
                  : std::nullopt;
          if (builtin && !xsd::is_valid_value(*builtin, field->text())) {
            return fault("soap:Client",
                         "unmarshalling error: '" + field->text() + "' is not a valid xsd:" +
                             declared->type.local_name() + " for element '" +
                             field->local_name() + "'",
                         "");
          }
        }
        // Echo the first field's value (the bean round-trips).
        value = field_elements.front()->text();
      }
    }
  }
  // Typed unmarshalling: when the parameter type is an enumeration, the
  // binder rejects values outside the value space (a real execution-step
  // failure mode the echo services can exhibit).
  for (const xsd::Schema& schema : service.wsdl.schemas) {
    for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
      if (!simple.enumeration.empty() && !value.empty() &&
          !xsd::is_valid_value(simple, value)) {
        return fault(
            "soap:Client",
            "unmarshalling error: '" + value + "' is not a valid " + simple.name + " value",
            "");
      }
    }
  }
  if (value == "!throw") {
    // Drive the declared-fault path: echo services for Exception/Error
    // types raise their checked exception on demand.
    std::string detail;
    for (const wsdl::PortType& port_type : service.wsdl.port_types) {
      for (const wsdl::Operation& op : port_type.operations) {
        if (!op.faults.empty()) detail = op.faults.front().name;
      }
    }
    return fault("soap:Server", "simulated service exception", detail);
  }
  Result<soap::Envelope> response = soap::build_response(service.wsdl, *operation, value);
  if (!response.ok()) {
    return fault("soap:Server", "failed to build response", response.error().message);
  }
  // A 1.2 conversation gets its echo back in 1.2 as well.
  response.value().set_version(respond);
  return std::move(response.value());
}

soap::HttpResponse ServerFramework::handle_http(const DeployedService& service,
                                                const soap::HttpRequest& request) const {
  return handle_http(service, request, version_policy());
}

soap::HttpResponse ServerFramework::handle_http(const DeployedService& service,
                                                const soap::HttpRequest& request,
                                                VersionPolicy policy) const {
  const auto fault = [](std::string code, std::string reason) {
    const soap::Envelope envelope =
        soap::Envelope::make_fault({std::move(code), std::move(reason), ""});
    return soap::make_soap_response(soap::write(envelope), /*is_fault=*/true);
  };

  if (request.method != "POST") {
    soap::HttpResponse response;
    response.status = 405;
    response.body = "method not allowed";
    return response;
  }
  // Media-type gate. Every endpoint accepts the SOAP 1.1 "text/xml"; only
  // the shaded runtime also accepts the SOAP 1.2 "application/soap+xml".
  // A skewed Content-Type on a strict/relaxed stack dies here with a 415,
  // before any envelope is ever parsed.
  const std::optional<std::string> content_type = request.header("Content-Type");
  const bool media_type_ok =
      content_type.has_value() &&
      (soap::content_type_matches(*content_type, soap::SoapVersion::k11) ||
       (policy == VersionPolicy::kShadedCxf &&
        soap::content_type_matches(*content_type, soap::SoapVersion::k12)));
  if (!media_type_ok) {
    soap::HttpResponse response;
    response.status = 415;
    response.body = "unsupported media type";
    return response;
  }
  if (requires_soap_action_header() && !request.header("SOAPAction")) {
    // The behaviour of the .NET HTTP stack: dispatch is keyed on the
    // SOAPAction header, so its absence is a client error.
    return fault("soap:Client", "missing SOAPAction header");
  }

  Result<soap::Envelope> envelope = soap::parse(request.body);
  if (!envelope.ok()) {
    return fault("soap:Client", "malformed envelope: " + envelope.error().message);
  }
  const soap::Envelope response_envelope = handle_request(service, *envelope, policy);
  soap::HttpResponse response = soap::make_soap_response(soap::write(response_envelope),
                                                         response_envelope.is_fault());
  if (response_envelope.version() == soap::SoapVersion::k12) {
    // A 1.2 reply travels under its own media type.
    response.set_header("Content-Type", "application/soap+xml; charset=utf-8");
  }
  return response;
}

}  // namespace wsx::frameworks
