// invocation.hpp — the shared front and back half of one end-to-end echo
// call, factored out of the communication study so the chaos campaign
// drives the exact same call pipeline: steps 2–3 gate the call, the client
// runtime marshals the request (including each stack's SOAPAction policy),
// and a delivered HTTP response is classified the same way everywhere.
// With a fault-free wire the chaos study therefore reproduces the
// communication study's outcomes call for call.
#pragma once

#include <string>
#include <vector>

#include "frameworks/client.hpp"
#include "frameworks/server.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"

namespace wsx::compilers {
class Compiler;
}

namespace wsx::frameworks {

/// A caller-chosen call payload: either a scalar arg0 value, or — when
/// `fields` is non-empty — a structured request whose arg0 carries one
/// child element per field. `expected_echo()` is what a conforming echo
/// service sends back for it (the first field's text on the structured
/// path, mirroring the server model).
struct CallPayload {
  std::string value;
  std::vector<soap::Argument> fields;

  std::string expected_echo() const {
    return fields.empty() ? value : fields.front().value;
  }
};

/// Everything needed to put one echo call on the wire, or the reason it
/// never gets there.
struct PreparedCall {
  enum class Status {
    kBlockedEarlier,    ///< steps 2–3 failed; the call never happens
    kNoInvocableProxy,  ///< client object exists but has no method to call
    kReady,
  };
  Status status = Status::kBlockedEarlier;
  std::string operation;
  std::string payload;         ///< the value the service must echo back
  soap::HttpRequest request;   ///< fully built, SOAPAction policy applied
  /// The proxy marshalled into the "uncommon data structure" element
  /// (arg0Struct): the server model drops the argument and echoes "".
  bool uncommon_marshalling = false;
  /// The 1.1-coherent form of `request` (hybrid extension headers
  /// stripped): what a downgrade-capable stack retransmits after a
  /// version-mismatch fault. Identical to `request` for pure-1.1 calls.
  soap::HttpRequest downgrade_request;
  /// True when `request` carries a hybrid profile, i.e. differs from
  /// `downgrade_request` — the precondition for a meaningful downgrade.
  bool hybrid = false;
};

/// Runs generation + compilation gates and marshals the request envelope
/// exactly as the communication study does. `compiler` may be null for
/// tools checked by instantiation. Parses the served text and analyzes the
/// server model on every call; campaign loops should build one
/// SharedDescription per service and use the overload below.
PreparedCall prepare_echo_call(const DeployedService& service,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler);

/// Parse-once variant: `description` must have been built from `service`
/// (SharedDescription::from_deployed), so generation consumes the shared
/// parse and marshalling reuses the cached server-model features.
PreparedCall prepare_echo_call(const DeployedService& service,
                               const SharedDescription& description,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler);

/// Mixed-version variant: the request envelope is dressed in `profile`'s
/// 1.2-era extension headers (soap/version.hpp) before serialization, and
/// `downgrade_request` keeps the pure-1.1 form for downgrade retries.
/// kPure11 is byte-identical to the overload above.
PreparedCall prepare_echo_call(const DeployedService& service,
                               const SharedDescription& description,
                               const ClientFramework& client,
                               const compilers::Compiler* compiler,
                               soap::HybridProfile profile);

/// General form behind prepare_echo_call: with `payload == nullptr` the
/// probe/enumeration default payload is used (byte-identical to
/// prepare_echo_call); otherwise the caller's payload is marshalled —
/// scalar through the arg0 path (arg0Struct for uncommon-marshalling
/// pairs), structured through soap::build_structured_request. The
/// generative tester (wsx::gen) feeds its corpora through here so every
/// generated case runs the exact communication-study pipeline.
PreparedCall prepare_call(const DeployedService& service,
                          const SharedDescription& description,
                          const ClientFramework& client,
                          const compilers::Compiler* compiler,
                          const CallPayload* payload,
                          soap::HybridProfile profile = soap::HybridProfile::kPure11);

/// How one *delivered* HTTP response relates to the call contract.
enum class EchoOutcome {
  kTransportError,   ///< HTTP-level rejection or unparseable response body
  kVersionMismatch,  ///< version-policy rejection: a VersionMismatch or
                     ///< MustUnderstand fault — the distinct outcome class
                     ///< of the mixed-version axis, and the trigger of the
                     ///< downgrade-retry recovery path
  kServerFault,      ///< server returned any other soap:Fault
  kEchoMismatch,     ///< call completed but the echoed payload is wrong
  kOk,
};

struct EchoClassification {
  EchoOutcome outcome = EchoOutcome::kTransportError;
  int http_status = 0;  ///< the response's status code, for 4xx/5xx detail
};

/// Classifies a delivered response against the payload the call sent.
EchoClassification classify_echo_response(const soap::HttpResponse& response,
                                          const std::string& payload);

}  // namespace wsx::frameworks
