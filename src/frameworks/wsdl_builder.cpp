#include "frameworks/wsdl_builder.hpp"

#include <cassert>

#include "xml/qname.hpp"

namespace wsx::frameworks {
namespace {

using catalog::Trait;

/// Builds the schema complexType for the service's parameter type,
/// applying the server-specific serialization quirks.
xsd::ComplexType build_parameter_type(const catalog::TypeInfo& type,
                                      const WsdlBuilderOptions& options,
                                      const std::string& target_namespace,
                                      xsd::Schema& schema) {
  xsd::ComplexType complex_type;
  complex_type.name = type.name;

  if (options.dataset_idiom && type.has(Trait::kDataSetSchema)) {
    // The DataSet idiom: <xs:element ref="s:schema"/><xs:any/> plus an
    // xml-space language attribute referenced through the schema prefix —
    // the unresolvable "s:schema" / "s:lang" references the paper reports.
    xsd::ElementDecl schema_ref;
    schema_ref.ref = xml::QName{std::string(xml::ns::kXsd), "schema", "s"};
    if (type.has(Trait::kDataSetArray)) schema_ref.max_occurs = xsd::kUnbounded;
    if (type.has(Trait::kDataSetNested)) {
      // The ref hides inside a nested anonymous type.
      xsd::ComplexType inner;
      inner.particles.emplace_back(schema_ref);
      inner.particles.emplace_back(xsd::AnyParticle{});
      xsd::ElementDecl holder;
      holder.name = "diffgram";
      holder.inline_type = Box<xsd::ComplexType>{std::move(inner)};
      complex_type.particles.emplace_back(std::move(holder));
    } else {
      complex_type.particles.emplace_back(schema_ref);
      if (type.has(Trait::kDataSetDuplicated)) {
        // A second schema ref in the same content model; gSOAP's two-stage
        // pipeline emits a duplicate typedef for it and rejects its own
        // header.
        complex_type.particles.emplace_back(schema_ref);
      }
      complex_type.particles.emplace_back(xsd::AnyParticle{});
    }
    xsd::AttributeDecl lang;
    lang.ref = xml::QName{std::string(xml::ns::kXsd), "lang", "s"};
    complex_type.attributes.push_back(std::move(lang));
    return complex_type;
  }

  if (type.has(Trait::kWildcardContent)) {
    // DataTable family: the content model is nothing but wildcards.
    complex_type.particles.emplace_back(xsd::AnyParticle{});
    if (type.has(Trait::kDoubleWildcard)) {
      complex_type.particles.emplace_back(xsd::AnyParticle{});
    }
    return complex_type;
  }

  if (type.has(Trait::kGeneratorCrash)) {
    // Self-recursive content — the shape the JScript artifact generator
    // crashes on.
    xsd::ElementDecl next;
    next.name = "next";
    next.type = xml::QName{target_namespace, type.name};
    next.min_occurs = 0;
    complex_type.particles.emplace_back(std::move(next));
    return complex_type;
  }

  if (type.has(Trait::kDeepNesting)) {
    const std::size_t depth = type.has(Trait::kCompilerPathological)
                                  ? options.pathological_nesting_depth
                                  : options.deep_nesting_depth;
    // element row { element row { ... { element cell : string } } }
    xsd::ComplexType leaf;
    xsd::ElementDecl cell;
    cell.name = "cell";
    cell.type = xsd::qname(xsd::Builtin::kString);
    leaf.particles.emplace_back(std::move(cell));
    xsd::ComplexType current = std::move(leaf);
    for (std::size_t level = 1; level < depth; ++level) {
      xsd::ComplexType outer;
      xsd::ElementDecl row;
      row.name = "row" + std::to_string(depth - level);
      row.inline_type = Box<xsd::ComplexType>{std::move(current)};
      outer.particles.emplace_back(std::move(row));
      current = std::move(outer);
    }
    complex_type.particles = std::move(current.particles);
    return complex_type;
  }

  // Exception/Error beans derive from the platform's Throwable mapping
  // (declared once per schema, below in build_echo_wsdl).
  if (type.has(Trait::kThrowableDerived)) {
    complex_type.base = xml::QName{target_namespace, "Throwable"};
  }

  // Regular bean: one element per field.
  for (const catalog::FieldSpec& field : type.fields) {
    xsd::ElementDecl element;
    element.name = field.name;
    element.type = xsd::qname(field.type);
    if (field.is_array) {
      element.min_occurs = 0;
      element.max_occurs = xsd::kUnbounded;
    }
    complex_type.particles.emplace_back(std::move(element));
  }

  // Quirk overlays driven by the server's serialization style.
  if (type.has(Trait::kWsaEndpointReference)) {
    if (options.wsa_style == WsdlBuilderOptions::WsaStyle::kForeignTypeRef) {
      // Replace the address field's type with a reference into the WSA
      // namespace, which the definitions element declares but nothing
      // imports — the unresolved type reference that fails R2102.
      for (xsd::Particle& particle : complex_type.particles) {
        if (auto* element = std::get_if<xsd::ElementDecl>(&particle)) {
          if (element->name == "address") {
            element->type =
                xml::QName{std::string(xml::ns::kWsAddressing), "EndpointReferenceType", "wsa"};
          }
        }
      }
    } else if (options.wsa_style == WsdlBuilderOptions::WsaStyle::kForeignAttrRef) {
      xsd::AttributeDecl attr;
      attr.ref =
          xml::QName{std::string(xml::ns::kWsAddressing), "IsReferenceParameter", "wsa"};
      complex_type.attributes.push_back(std::move(attr));
    }
  }
  if (type.has(Trait::kLegacyDateFormat)) {
    if (options.date_format_style == WsdlBuilderOptions::DateFormatStyle::kUnresolvedAttrGroup) {
      complex_type.attribute_groups.push_back(
          {xml::QName{std::string(xml::ns::kXmlNs), "specialAttrs", "xml"}});
      // Import of the xml namespace *without* a schemaLocation — the JAXB
      // idiom that leaves the group reference dangling.
      schema.imports.push_back({std::string(xml::ns::kXmlNs), ""});
    } else if (options.date_format_style ==
               WsdlBuilderOptions::DateFormatStyle::kDualTypeDeclaration) {
      for (xsd::Particle& particle : complex_type.particles) {
        if (auto* element = std::get_if<xsd::ElementDecl>(&particle)) {
          if (element->name == "pattern") {
            // type= stays set AND an inline anonymous type appears —
            // invalid XML Schema that still gets published.
            xsd::ComplexType bogus;
            xsd::ElementDecl raw;
            raw.name = "rawPattern";
            raw.type = xsd::qname(xsd::Builtin::kString);
            bogus.particles.emplace_back(std::move(raw));
            element->inline_type = Box<xsd::ComplexType>{std::move(bogus)};
          }
        }
      }
    }
  }
  return complex_type;
}

}  // namespace

wsdl::Definitions build_echo_wsdl(const ServiceSpec& spec, const WsdlBuilderOptions& options) {
  assert(spec.type != nullptr);
  const catalog::TypeInfo& type = *spec.type;

  wsdl::Definitions defs;
  defs.name = spec.service_name();
  defs.target_namespace = options.namespace_root + type.name + "/";

  const bool zero_operations =
      options.async_yields_zero_operations && type.has(Trait::kAsyncApi);

  // --- Types section. ---
  xsd::Schema schema;
  schema.target_namespace = defs.target_namespace;
  xml::QName parameter_type_name;
  if (type.has(Trait::kEnumType)) {
    xsd::SimpleTypeDecl enum_type;
    enum_type.name = type.name;
    enum_type.base = xsd::qname(xsd::Builtin::kString);
    enum_type.enumeration = type.enum_values;
    schema.simple_types.push_back(std::move(enum_type));
    parameter_type_name = xml::QName{defs.target_namespace, type.name};
  } else if (!zero_operations) {
    if (type.has(Trait::kThrowableDerived)) {
      // The base type every Exception/Error bean extends.
      xsd::ComplexType throwable;
      throwable.name = "Throwable";
      xsd::ElementDecl stack_trace;
      stack_trace.name = "stackTrace";
      stack_trace.type = xsd::qname(xsd::Builtin::kString);
      stack_trace.min_occurs = 0;
      stack_trace.max_occurs = xsd::kUnbounded;
      throwable.particles.emplace_back(std::move(stack_trace));
      schema.complex_types.push_back(std::move(throwable));
    }
    schema.complex_types.push_back(
        build_parameter_type(type, options, defs.target_namespace, schema));
    parameter_type_name = xml::QName{defs.target_namespace, type.name};
  }

  const bool declare_fault =
      options.declare_faults_for_throwables && type.has(Trait::kThrowableDerived);
  if (declare_fault) {
    // JAX-WS maps the exception type to a fault element of the bean type.
    xsd::ElementDecl fault_element;
    fault_element.name = type.name;
    fault_element.type = parameter_type_name;
    schema.elements.push_back(std::move(fault_element));
  }

  // Operation descriptors for the service's shape. The simple shape is the
  // paper's echo; the CRUD shape implements its future-work complexity:
  // store(T)→string id, fetch(string)→T, list()→T[].
  struct OperationDesc {
    std::string name;
    xml::QName arg_type;     ///< empty = no argument
    xml::QName return_type;  ///< empty = no return element
    bool return_array = false;
  };
  std::vector<OperationDesc> operations;
  if (!zero_operations) {
    const xml::QName string_type = xsd::qname(xsd::Builtin::kString);
    if (spec.shape == ServiceShape::kSimpleEcho) {
      operations.push_back(
          {ServiceSpec::operation_name(), parameter_type_name, parameter_type_name, false});
    } else {
      operations.push_back({"store", parameter_type_name, string_type, false});
      operations.push_back({"fetch", string_type, parameter_type_name, false});
      operations.push_back({"list", {}, parameter_type_name, true});
    }
  }

  const bool rpc_style = options.binding_style == wsdl::SoapStyle::kRpc;
  for (const OperationDesc& op : operations) {
    if (rpc_style) break;  // rpc/literal uses type= parts, not wrappers
    // Wrapper elements for document/literal wrapped operations.
    xsd::ElementDecl request_wrapper;
    request_wrapper.name = op.name;
    {
      xsd::ComplexType wrapper_type;
      if (!op.arg_type.empty()) {
        xsd::ElementDecl arg;
        arg.name = "arg0";
        arg.type = op.arg_type;
        wrapper_type.particles.emplace_back(std::move(arg));
      }
      request_wrapper.inline_type = Box<xsd::ComplexType>{std::move(wrapper_type)};
    }
    schema.elements.push_back(std::move(request_wrapper));

    xsd::ElementDecl response_wrapper;
    response_wrapper.name = op.name + "Response";
    {
      xsd::ComplexType wrapper_type;
      if (!op.return_type.empty()) {
        xsd::ElementDecl ret;
        ret.name = "return";
        ret.type = op.return_type;
        if (op.return_array) {
          ret.min_occurs = 0;
          ret.max_occurs = xsd::kUnbounded;
        }
        wrapper_type.particles.emplace_back(std::move(ret));
      }
      response_wrapper.inline_type = Box<xsd::ComplexType>{std::move(wrapper_type)};
    }
    schema.elements.push_back(std::move(response_wrapper));
  }
  defs.schemas.push_back(std::move(schema));

  // Namespace declarations the stack puts on wsdl:definitions. Declaring
  // WSA here (without importing a schema for it) is what makes the
  // W3CEndpointReference references *parse* but not *resolve*.
  if (type.has(Trait::kWsaEndpointReference) &&
      options.wsa_style != WsdlBuilderOptions::WsaStyle::kNone) {
    defs.extra_namespaces.emplace_back("wsa", std::string(xml::ns::kWsAddressing));
  }

  if (options.attach_jaxws_extension) {
    xml::Element extension{"jaxws:bindings"};
    extension.declare_namespace("jaxws", "http://java.sun.com/xml/ns/jaxws");
    extension.set_attribute("version", "2.0");
    defs.extension_elements.push_back(std::move(extension));
  }

  // --- Messages, portType, binding, service. ---
  const std::string port_type_name = spec.service_name();
  // The fault (when declared) attaches to the first operation — echo for
  // the simple shape, store for CRUD.
  const std::string fault_operation = operations.empty() ? "" : operations.front().name;
  for (const OperationDesc& op : operations) {
    wsdl::Message input;
    input.name = op.name;
    if (rpc_style) {
      if (!op.arg_type.empty()) input.parts.push_back({"arg0", {}, op.arg_type});
    } else {
      input.parts.push_back({"parameters", xml::QName{defs.target_namespace, op.name}, {}});
    }
    defs.messages.push_back(std::move(input));

    wsdl::Message output;
    output.name = op.name + "Response";
    if (rpc_style) {
      if (!op.return_type.empty()) output.parts.push_back({"return", {}, op.return_type});
    } else {
      output.parts.push_back(
          {"parameters", xml::QName{defs.target_namespace, op.name + "Response"}, {}});
    }
    defs.messages.push_back(std::move(output));

    if (declare_fault && op.name == fault_operation) {
      wsdl::Message fault_message;
      fault_message.name = op.name + "Fault";
      fault_message.parts.push_back(
          {"fault", xml::QName{defs.target_namespace, type.name}, {}});
      defs.messages.push_back(std::move(fault_message));
    }
  }

  wsdl::PortType port_type;
  port_type.name = port_type_name;
  for (const OperationDesc& op : operations) {
    wsdl::Operation operation{op.name, op.name, op.name + "Response", {}};
    if (declare_fault && op.name == fault_operation) {
      operation.faults.push_back({type.name + "Fault", op.name + "Fault"});
    }
    port_type.operations.push_back(std::move(operation));
  }
  defs.port_types.push_back(std::move(port_type));

  wsdl::Binding binding;
  binding.name = port_type_name + "Binding";
  binding.port_type = xml::QName{defs.target_namespace, port_type_name};
  binding.style = options.binding_style;
  for (const OperationDesc& op : operations) {
    wsdl::BindingOperation operation;
    operation.name = op.name;
    operation.soap_action = "";
    operation.has_soap_action = !type.has(Trait::kMissingSoapAction);
    if (type.has(Trait::kSoapEncodedBinding)) {
      operation.input_use = wsdl::SoapUse::kEncoded;
      operation.output_use = wsdl::SoapUse::kEncoded;
    }
    if (declare_fault && op.name == fault_operation) {
      operation.fault_names.push_back(type.name + "Fault");
    }
    binding.operations.push_back(std::move(operation));
  }
  defs.bindings.push_back(std::move(binding));

  wsdl::Service service;
  service.name = spec.service_name() + "Service";
  service.ports.push_back({port_type_name + "Port",
                           xml::QName{defs.target_namespace, port_type_name + "Binding"},
                           options.endpoint_root + type.name});
  defs.services.push_back(std::move(service));

  return defs;
}

}  // namespace wsx::frameworks
