// dotnet_client.hpp — Microsoft wsdl.exe for C#, VB.NET and JScript.NET
// (Table II rows 6–8; one tool, three target languages).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// wsdl.exe understands the DataSet idiom natively (it is its own), errors
/// on foreign unresolved references, dangling attribute groups, dual type
/// declarations and operation-less descriptions, and warns on SOAP-encoded
/// bindings. The three language backends share that front end but differ
/// in code generation:
///  - C# — clean output;
///  - VB — mirrors case-colliding schema members that vbc then rejects;
///  - JScript — warns on unknown extension elements (every Java-stack
///    description), crashes on self-recursive content models, and emits
///    bodyless accessors for deep or anyType-array shapes.
class DotNetClient final : public ClientFramework {
 public:
  explicit DotNetClient(code::Language target);

  std::string name() const override;
  std::string tool() const override { return "wsdl.exe"; }
  code::Language language() const override { return target_; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

 private:
  code::Language target_;
  /// basicHttpBinding (AddressingVersion.None): wsdl.exe proxies send pure
  /// SOAP 1.1 and the channel stack faults on 1.2-era headers it was not
  /// configured for.
  VersionPolicy version_policy() const override { return VersionPolicy::kStrict; }
};

}  // namespace wsx::frameworks
