#include "frameworks/wcf_server.hpp"

#include "frameworks/wsdl_builder.hpp"
#include "wsdl/writer.hpp"

namespace wsx::frameworks {

using catalog::Trait;

bool WcfServer::can_deploy(const catalog::TypeInfo& type) const {
  return type.has(Trait::kDefaultCtor) && type.has(Trait::kSerializable) &&
         !type.has(Trait::kAbstract) && !type.has(Trait::kInterface) &&
         !type.has(Trait::kGenericType);
}

Result<DeployedService> WcfServer::deploy(const ServiceSpec& spec) const {
  if (spec.type == nullptr) return Error{"deploy.no-type", "service has no parameter type"};
  if (!can_deploy(*spec.type)) {
    return Error{"deploy.unbindable",
                 "WCF cannot serialize '" + spec.type->qualified_name() +
                     "'; deployment refused"};
  }

  WsdlBuilderOptions options;
  options.namespace_root = "http://tempuri.org/";
  options.endpoint_root = "http://localhost:80/wcf/";
  options.dataset_idiom = true;

  DeployedService service;
  service.spec = spec;
  service.wsdl = build_echo_wsdl(spec, options);

  wsdl::WsdlWriteOptions write_options;
  write_options.schema_prefix = "s";  // the prefix behind "s:schema"/"s:lang"
  service.wsdl_text = wsdl::to_string(service.wsdl, write_options);
  return service;
}

}  // namespace wsx::frameworks
