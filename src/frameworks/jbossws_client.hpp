// jbossws_client.hpp — JBossWS CXF 4.2.3 wsconsume (Table II row 5).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// wsconsume wraps the same CXF engine, so its tolerance profile matches
/// CXF's — including the silent acceptance of its own server subsystem's
/// operation-less descriptions.
class JBossWsClient final : public ClientFramework {
 public:
  JBossWsClient() = default;
  /// With a manual JAXB binding customization the binding-related failures
  /// (s:schema, s:lang, s:any, foreign refs) downgrade to warnings
  /// (paper §IV.B.2).
  explicit JBossWsClient(bool with_binding_customization)
      : customized_(with_binding_customization) {}

  std::string name() const override { return "JBossWS CXF 4.2.3"; }
  std::string tool() const override { return "wsconsume"; }
  code::Language language() const override { return code::Language::kJava; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

 private:
  bool customized_ = false;
  /// CXF-based like the server side: the shaded interceptor stack engages.
  VersionPolicy version_policy() const override { return VersionPolicy::kShadedCxf; }
};

}  // namespace wsx::frameworks
