// metro_server.hpp — Oracle Metro 2.3 on GlassFish 4.0 (Table I row 1).
#pragma once

#include "frameworks/server.hpp"

namespace wsx::frameworks {

/// Metro's binder accepts concrete bean-style classes only. It is the
/// strictest deployer in the study: it refuses to publish a description
/// with no operations (the behaviour the paper praises in §IV.A).
class MetroServer final : public ServerFramework {
 public:
  std::string name() const override { return "Metro 2.3"; }
  std::string application_server() const override { return "GlassFish 4.0"; }
  std::string language() const override { return "Java"; }

  bool can_deploy(const catalog::TypeInfo& type) const override;
  Result<DeployedService> deploy(const ServiceSpec& spec) const override;

  /// The JAX-WS RI processing model: unknown extension headers not marked
  /// mustUnderstand are skipped silently; a mustUnderstand header it has no
  /// handler for still faults, and a 1.2 envelope gets VersionMismatch.
  VersionPolicy version_policy() const override { return VersionPolicy::kRelaxed; }
};

}  // namespace wsx::frameworks
