// metro_client.hpp — Oracle Metro 2.3 wsimport (Table II row 1).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// wsimport is strict: any unresolved reference, wildcard-only content
/// model or operation-less description aborts generation; a dual type
/// declaration is tolerated with a warning. Its artifacts always compile —
/// "these tools never produced code that later results in compilation
/// errors" (paper §IV.A).
class MetroClient final : public ClientFramework {
 public:
  MetroClient() = default;
  /// With a manual JAXB binding customization the developer maps the
  /// otherwise-unresolvable constructs (s:schema, s:lang, s:any, foreign
  /// refs) to declared types — "all the errors in this group can be solved
  /// by using manual customization of the data type bindings" (§IV.B.2).
  /// The tool then warns instead of failing.
  explicit MetroClient(bool with_binding_customization)
      : customized_(with_binding_customization) {}

  std::string name() const override { return "Oracle Metro 2.3"; }
  std::string tool() const override { return "wsimport"; }
  code::Language language() const override { return code::Language::kJava; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

 private:
  bool customized_ = false;
  /// JAX-WS RI runtime: tolerates unknown non-mustUnderstand extension
  /// headers in responses and, when the versions axis is on, emits the
  /// (ignorable) WS-Addressing headers its wsa module adds by default.
  VersionPolicy version_policy() const override { return VersionPolicy::kRelaxed; }
};

}  // namespace wsx::frameworks
