// artifact_builder.hpp — shared client-artifact generation.
//
// Translates a parsed description into the generated-code model the way
// the wsdl2java-family tools do: one class per schema complexType (fields
// mirror the schema elements), plus a service proxy class with one method
// per operation. Tool-specific defects are injected through options; each
// defect produces *code* that the compiler simulators then genuinely
// reject, mirroring how the real failures were discovered.
#pragma once

#include "codemodel/model.hpp"
#include "frameworks/features.hpp"
#include "wsdl/model.hpp"

namespace wsx::frameworks {

struct ArtifactBuildOptions {
  code::Language language = code::Language::kJava;

  /// Axis1/Axis2 stubs use raw collections internally; javac then reports
  /// "unchecked or unsafe operations" on every compile.
  bool raw_collection_stubs = false;

  /// Axis1: the wrapper generated for Exception/Error-style types renames
  /// the "message" field but keeps referencing the original name
  /// (paper §IV.B.3, 889 compilation errors).
  bool throwable_wrapper_defect = false;

  /// Axis2: parameters follow the "local_<name>" convention, but for the
  /// XMLGregorianCalendar mapping the reference drops the underscore
  /// (paper §IV.B.3).
  bool local_suffix_defect = false;

  /// Axis2: each xs:any wildcard becomes an "extraElement" member; two
  /// wildcards in one type yield a duplicate member.
  bool wildcard_member_per_any = false;

  /// Axis2: enumeration wrappers declare the backing "value" member twice.
  bool enum_wrapper_defect = false;

  /// JScript: accessors for deeply nested or anyType-array content are
  /// emitted without bodies ("did not produce the necessary functions").
  bool missing_body_on_complex_shapes = false;

  /// JScript: the generated unit for very deep content models drives the
  /// compiler into its internal crash.
  bool pathological_marker_on_very_deep = false;
  std::size_t very_deep_threshold = 5;
  std::size_t complex_shape_threshold = 3;
};

/// Builds artifacts for `defs` (already parsed from served text).
code::Artifacts build_artifacts(const wsdl::Definitions& defs, const WsdlFeatures& features,
                                const ArtifactBuildOptions& options);

}  // namespace wsx::frameworks
