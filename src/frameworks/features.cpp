#include "frameworks/features.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace wsx::frameworks {
namespace {

bool is_xsd_ns(const xml::QName& name) { return name.namespace_uri() == xml::ns::kXsd; }

/// Recursive schema-shape analysis for one complexType content model.
void scan_complex_type(const xsd::ComplexType& type, const std::string& target_namespace,
                       const std::string& declared_name, std::size_t depth,
                       WsdlFeatures& features) {
  std::size_t schema_refs_here = 0;
  std::vector<std::string> sibling_names;
  for (const xsd::Particle& particle : type.particles) {
    const auto* element = std::get_if<xsd::ElementDecl>(&particle);
    if (element == nullptr) continue;
    if (element->is_ref() && is_xsd_ns(element->ref) &&
        element->ref.local_name() == "schema") {
      features.schema_element_ref = true;
      ++schema_refs_here;
      if (depth > 0) features.schema_element_ref_nested = true;
      if (element->max_occurs == xsd::kUnbounded) features.schema_element_ref_array = true;
    }
    if (!element->type.empty() && element->inline_type.has_value()) {
      features.dual_type_declaration = true;
    }
    if (!element->type.empty() && element->type.namespace_uri() == target_namespace &&
        element->type.local_name() == declared_name) {
      features.self_recursive_type = true;
    }
    if (!element->type.empty() && is_xsd_ns(element->type) &&
        element->type.local_name() == "anyType" && element->max_occurs == xsd::kUnbounded) {
      features.anytype_unbounded_element = true;
    }
    for (const std::string& sibling : sibling_names) {
      if (sibling != element->name && iequals(sibling, element->name)) {
        features.case_colliding_elements = true;
      }
    }
    sibling_names.push_back(element->name);
    if (element->inline_type.has_value()) {
      scan_complex_type(*element->inline_type, target_namespace, declared_name, depth + 1,
                        features);
    }
  }
  if (schema_refs_here >= 2) features.schema_element_ref_duplicated = true;

  const std::size_t wildcards = type.any_count();
  features.max_wildcards_per_type = std::max(features.max_wildcards_per_type, wildcards);
  if (wildcards > 0 && type.elements().empty()) features.wildcard_only_content = true;
}

}  // namespace

WsdlFeatures analyze(const wsdl::Definitions& defs) {
  WsdlFeatures features;

  const xsd::ResolutionReport resolution = xsd::resolve(defs.schemas);
  for (const xsd::UnresolvedRef& ref : resolution.unresolved) {
    switch (ref.kind) {
      case xsd::RefKind::kTypeRef:
        if (!is_xsd_ns(ref.target)) features.unresolved_foreign_type_ref = true;
        break;
      case xsd::RefKind::kElementRef:
        // xsd-namespace element refs are classified structurally below; a
        // dangling ref into any other namespace counts as foreign.
        if (!is_xsd_ns(ref.target)) features.unresolved_foreign_type_ref = true;
        break;
      case xsd::RefKind::kAttributeRef:
        if (is_xsd_ns(ref.target)) {
          features.xsd_attr_ref = true;  // the "s:lang" idiom
        } else {
          features.unresolved_foreign_attr_ref = true;
        }
        break;
      case xsd::RefKind::kAttributeGroupRef:
        features.unresolved_attr_group = true;
        break;
    }
  }

  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      scan_complex_type(type, schema.target_namespace, type.name, 0, features);
      features.max_inline_depth = std::max(features.max_inline_depth, type.nesting_depth());
    }
    for (const xsd::ElementDecl& element : schema.elements) {
      if (!element.type.empty() && element.inline_type.has_value()) {
        features.dual_type_declaration = true;
      }
      if (element.inline_type.has_value()) {
        scan_complex_type(*element.inline_type, schema.target_namespace, element.name, 1,
                          features);
      }
    }
    if (!schema.simple_types.empty()) {
      features.has_enumeration = std::any_of(
          schema.simple_types.begin(), schema.simple_types.end(),
          [](const xsd::SimpleTypeDecl& type) { return !type.enumeration.empty(); });
    }
  }

  features.zero_operations = defs.operation_count() == 0;
  for (const wsdl::Binding& binding : defs.bindings) {
    for (const wsdl::BindingOperation& operation : binding.operations) {
      if (operation.input_use == wsdl::SoapUse::kEncoded ||
          operation.output_use == wsdl::SoapUse::kEncoded) {
        features.encoded_use = true;
      }
      if (!operation.has_soap_action) features.missing_soap_action = true;
    }
  }
  features.unknown_extension_elements = !defs.extension_elements.empty();
  features.missing_target_namespace = defs.target_namespace.empty();
  for (const wsdl::WsdlImport& import : defs.imports) {
    if (import.location.empty()) features.unresolvable_wsdl_import = true;
  }

  for (const wsdl::PortType& port_type : defs.port_types) {
    for (std::size_t i = 0; i < port_type.operations.size(); ++i) {
      const wsdl::Operation& operation = port_type.operations[i];
      std::vector<std::string> referenced = {operation.input_message,
                                             operation.output_message};
      for (const wsdl::FaultRef& fault : operation.faults) referenced.push_back(fault.message);
      for (const std::string& message_name : referenced) {
        if (!message_name.empty() && defs.find_message(message_name) == nullptr) {
          features.dangling_message_reference = true;
        }
      }
      for (std::size_t j = i + 1; j < port_type.operations.size(); ++j) {
        if (operation.name == port_type.operations[j].name) {
          features.duplicate_operations = true;
        }
      }
    }
  }
  for (const wsdl::Message& message : defs.messages) {
    for (const wsdl::Part& part : message.parts) {
      if (part.element.empty()) continue;
      bool declared = false;
      for (const xsd::Schema& schema : defs.schemas) {
        if (schema.target_namespace == part.element.namespace_uri() &&
            schema.find_element(part.element.local_name()) != nullptr) {
          declared = true;
        }
      }
      if (!declared) features.dangling_part_reference = true;
    }
  }
  return features;
}

}  // namespace wsx::frameworks
