#include "frameworks/shared_description.hpp"

#include "frameworks/server.hpp"
#include "wsdl/parser.hpp"

namespace wsx::frameworks {

static void fill_from_text(std::string_view wsdl_text, wsdl::Definitions& defs,
                           WsdlFeatures& features, std::optional<Error>& parse_error) {
  Result<wsdl::Definitions> parsed = wsdl::parse(wsdl_text);
  if (!parsed.ok()) {
    parse_error = parsed.error();
    return;
  }
  defs = std::move(parsed.value());
  features = analyze(defs);
}

SharedDescription SharedDescription::from_text(std::string_view wsdl_text) {
  auto state = std::make_shared<State>();
  state->wsdl_text = std::string(wsdl_text);
  fill_from_text(state->wsdl_text, state->defs, state->features, state->parse_error);
  return SharedDescription{std::move(state)};
}

SharedDescription SharedDescription::from_deployed(const DeployedService& service,
                                                   bool with_wsi) {
  auto state = std::make_shared<State>();
  state->wsdl_text = service.wsdl_text;
  fill_from_text(state->wsdl_text, state->defs, state->features, state->parse_error);
  // Marshalling and WS-I run over the server *model*, not the re-parsed
  // text: that is what the deployment side of the study always did, and the
  // distinction matters for descriptions whose served text is unparsable.
  state->server_features = analyze(service.wsdl);
  if (with_wsi) state->wsi = wsi::check(service.wsdl);
  return SharedDescription{std::move(state)};
}

}  // namespace wsx::frameworks
