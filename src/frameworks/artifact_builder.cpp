#include "frameworks/artifact_builder.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace wsx::frameworks {
namespace {

bool looks_like_throwable(const xsd::ComplexType& type) {
  // What the Axis1 wrapper generator keys on: an Exception/Error-style
  // type exposing a "message" property.
  const bool named_like =
      ends_with(type.name, "Exception") || ends_with(type.name, "Error");
  const auto elements = type.elements();
  const bool has_message =
      std::any_of(elements.begin(), elements.end(),
                  [](const xsd::ElementDecl* e) { return e->name == "message"; });
  return named_like && has_message;
}

code::Class build_type_class(const xsd::ComplexType& type, const ArtifactBuildOptions& options,
                             const WsdlFeatures& features) {
  code::Class cls;
  cls.name = type.name;
  if (type.is_derived()) cls.base = type.base.local_name();

  code::Method describe;
  describe.name = "describe";
  describe.return_type = "string";

  const bool throwable_defect = options.throwable_wrapper_defect && looks_like_throwable(type);

  bool ref_member_emitted = false;
  for (const xsd::ElementDecl* element : type.elements()) {
    if (element->is_ref()) {
      // Unresolvable refs that the tool tolerated are mapped to a single
      // opaque member (how the .NET tools and Axis survive the DataSet
      // idiom — repeated refs collapse onto one member).
      if (!ref_member_emitted) {
        cls.fields.push_back({"schemaData", "anyType", false});
        ref_member_emitted = true;
      }
      continue;
    }
    std::string field_name = element->name;
    std::string referenced = element->name;
    if (throwable_defect && element->name == "message") {
      // The defect: the field is renamed, the reference is not.
      field_name = "message1";
    }
    if (options.local_suffix_defect && element->name == "gregorian") {
      // The defect: declared "local_gregorian", referenced without the
      // underscore.
      field_name = "local_gregorian";
      referenced = "localgregorian";
    }
    cls.fields.push_back({field_name, element->type.local_name(), false});
    describe.referenced_symbols.push_back(referenced);
  }

  if (options.wildcard_member_per_any) {
    // One "extraElement" member per wildcard; a double wildcard duplicates
    // the member.
    for (std::size_t i = 0; i < type.any_count(); ++i) {
      cls.fields.push_back({"extraElement", "anyType", false});
    }
  } else if (type.any_count() > 0) {
    cls.fields.push_back({"any", "anyType", false});
  }

  if (options.missing_body_on_complex_shapes &&
      (type.nesting_depth() >= options.complex_shape_threshold ||
       features.anytype_unbounded_element)) {
    describe.has_body = false;
  }

  cls.methods.push_back(std::move(describe));
  return cls;
}

}  // namespace

code::Artifacts build_artifacts(const wsdl::Definitions& defs, const WsdlFeatures& features,
                                const ArtifactBuildOptions& options) {
  code::Artifacts artifacts;
  artifacts.language = options.language;

  code::CompilationUnit types_unit;
  types_unit.name = "types";
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      types_unit.classes.push_back(build_type_class(type, options, features));
      if (options.pathological_marker_on_very_deep &&
          type.nesting_depth() >= options.very_deep_threshold) {
        types_unit.pathological = true;
      }
    }
    if (options.enum_wrapper_defect) {
      for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
        if (simple.enumeration.empty()) continue;
        code::Class wrapper;
        wrapper.name = simple.name;
        // The defect: the backing member is declared twice.
        wrapper.fields.push_back({"value", "string", false});
        wrapper.fields.push_back({"value", "string", false});
        types_unit.classes.push_back(std::move(wrapper));
      }
    } else {
      for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
        if (simple.enumeration.empty()) continue;
        code::Class wrapper;
        wrapper.name = simple.name;
        wrapper.fields.push_back({"value", "string", false});
        types_unit.classes.push_back(std::move(wrapper));
      }
    }
  }

  code::CompilationUnit proxy_unit;
  proxy_unit.name = "proxy";
  code::Class proxy;
  const std::string service_name =
      defs.services.empty() ? defs.name : defs.services.front().name;
  proxy.name = service_name.empty() ? "ServiceProxy" : service_name + "Proxy";
  if (options.raw_collection_stubs) {
    code::Field cache;
    cache.name = "responseCache";
    cache.type = "java.util.ArrayList";
    cache.raw_collection = true;
    proxy.fields.push_back(std::move(cache));
  }
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& operation : port_type.operations) {
      code::Method method;
      method.name = operation.name;
      method.return_type = "string";
      method.params.push_back({"arg0", "string"});
      method.referenced_symbols.push_back("arg0");
      proxy.methods.push_back(std::move(method));
      artifacts.client_operations.push_back(operation.name);
      // Checked-exception wrapper per declared fault.
      for (const wsdl::FaultRef& fault : operation.faults) {
        code::Class wrapper;
        wrapper.name = fault.name;
        wrapper.fields.push_back({"faultInfo", "object", false});
        code::Method accessor;
        accessor.name = "getFaultInfo";
        accessor.return_type = "object";
        accessor.referenced_symbols.push_back("faultInfo");
        wrapper.methods.push_back(std::move(accessor));
        proxy_unit.classes.push_back(std::move(wrapper));
      }
    }
  }
  proxy_unit.classes.push_back(std::move(proxy));

  artifacts.units.push_back(std::move(types_unit));
  artifacts.units.push_back(std::move(proxy_unit));
  return artifacts;
}

}  // namespace wsx::frameworks
