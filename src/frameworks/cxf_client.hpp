// cxf_client.hpp — Apache CXF 2.7.6 wsdl2java (Table II row 4).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// CXF behaves like wsimport on unresolved references and wildcard-only
/// content, but silently accepts operation-less descriptions (paper
/// §IV.B.1) and does not flag dual type declarations.
class CxfClient final : public ClientFramework {
 public:
  CxfClient() = default;
  /// With a manual JAXB binding customization the binding-related failures
  /// (s:schema, s:lang, s:any, foreign refs) downgrade to warnings
  /// (paper §IV.B.2).
  explicit CxfClient(bool with_binding_customization)
      : customized_(with_binding_customization) {}

  std::string name() const override { return "Apache CXF 2.7.6"; }
  std::string tool() const override { return "wsdl2java"; }
  code::Language language() const override { return code::Language::kJava; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;

 private:
  bool customized_ = false;
  /// CXF bundles WS-Addressing/WS-Security interceptors (the shaded-CXF
  /// deployments of the Digikoppeling estate are exactly this stack), so
  /// its proxies emit the secured hybrid profile under the versions axis.
  VersionPolicy version_policy() const override { return VersionPolicy::kShadedCxf; }
};

}  // namespace wsx::frameworks
