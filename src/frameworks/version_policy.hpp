// version_policy.hpp — the documented version-validation policy of each
// framework model, and the hybrid profile a client's policy implies.
//
// The mixed-version robustness axis asks: when a SOAP 1.1 message carries
// SOAP 1.2-era headers (WS-Addressing, WS-Security, XOP hints), does the
// receiving stack fault, ignore, or process? Real stacks fall into three
// documented camps, and the Digikoppeling WUS writeup (SNIPPETS.md) shows
// all three colliding in production:
//
//  * kStrict — version coherence enforced. Any 1.2-era extension header on
//    a 1.1 endpoint is rejected with a VersionMismatch fault, as is an
//    application/soap+xml Content-Type. WCF with AddressingVersion.None
//    behaves this way (it faults on wsa headers it was not configured
//    for), as do the generation-only stacks with no WS-* runtime at all.
//  * kRelaxed — the JAX-WS RI behaviour: unknown extension headers NOT
//    marked mustUnderstand are skipped silently; a mustUnderstand header
//    still faults (the processing model requires it).
//  * kShadedCxf — the shaded-CXF deployments of the Digikoppeling estate:
//    the bundled WS-Addressing/WS-Security modules engage, so 1.2-era
//    headers (mustUnderstand included) are processed, application/soap+xml
//    is accepted, and a genuine SOAP 1.2 envelope is answered in kind.
//
// Campaigns sweep a server-side policy override (--versions) against the
// hybrid message profile each client's own policy implies, producing the
// strict×relaxed×shaded matrix of the robustness axis.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

#include "soap/version.hpp"

namespace wsx::frameworks {

enum class VersionPolicy {
  kStrict,
  kRelaxed,
  kShadedCxf,
};
inline constexpr std::size_t kVersionPolicyCount = 3;

/// CLI spelling: "strict" / "relaxed" / "shaded".
const char* to_string(VersionPolicy policy);
std::optional<VersionPolicy> parse_version_policy(std::string_view name);

/// Every policy, in enum order — the --versions error message and the
/// exhaustive sweeps in tests iterate this.
std::array<VersionPolicy, kVersionPolicyCount> all_version_policies();

/// The hybrid message profile a client with `policy` emits when the
/// versions axis is active: a strict runtime sends pure 1.1; a relaxed one
/// adds (ignorable) WS-Addressing headers; a shaded one sends the full
/// Digikoppeling shape with a mustUnderstand wsse:Security header.
soap::HybridProfile profile_for(VersionPolicy policy);

/// Markdown matrix of every framework model's documented policy and (for
/// clients) the hybrid profile it emits — the docs/VERSIONS.md and CLI
/// `--versions` reference table.
std::string format_version_policy_matrix();

}  // namespace wsx::frameworks
