#include "frameworks/axis2_client.hpp"

#include "frameworks/artifact_builder.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::frameworks {

GenerationResult Axis2Client::generate(const SharedDescription& description) const {
  GenerationResult result;
  if (!description.parsed_ok()) {
    result.diagnostics.error("axis2.parse", description.parse_error().message);
    return result;
  }
  const WsdlFeatures& features = description.features();

  if (features.unresolved_foreign_type_ref) {
    result.diagnostics.error("axis2.unresolved-type",
                             "Error parsing WSDL: referenced type is not defined");
  }
  if (features.zero_operations) {
    result.diagnostics.error("axis2.no-operations",
                             "No operation was found in the portType");
  }
  if (features.dangling_part_reference) {
    result.diagnostics.error("axis2.missing-wrapper",
                             "Element referenced by message part is missing");
  }
  if (features.duplicate_operations) {
    result.diagnostics.error("axis2.duplicate-operation",
                             "Duplicate operation name in portType");
  }
  // Like Axis1, Axis2 leaves (partial) artifacts behind even on error —
  // the erratic-tool behaviour §III.B.c warns about.
  ArtifactBuildOptions options;
  options.language = code::Language::kJava;
  options.raw_collection_stubs = true;
  options.local_suffix_defect = true;
  options.wildcard_member_per_any = true;
  options.enum_wrapper_defect = true;
  result.artifacts = build_artifacts(description.definitions(), features, options);
  return result;
}

}  // namespace wsx::frameworks
