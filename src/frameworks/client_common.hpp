// client_common.hpp — shared front half of every client tool: parse the
// served WSDL text and compute its feature vector.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "frameworks/features.hpp"
#include "wsdl/parser.hpp"

namespace wsx::frameworks {

struct ParsedWsdl {
  wsdl::Definitions defs;
  WsdlFeatures features;
};

inline Result<ParsedWsdl> parse_and_analyze(std::string_view wsdl_text) {
  Result<wsdl::Definitions> defs = wsdl::parse(wsdl_text);
  if (!defs.ok()) return defs.error();
  WsdlFeatures features = analyze(defs.value());
  return ParsedWsdl{std::move(defs.value()), std::move(features)};
}

}  // namespace wsx::frameworks
