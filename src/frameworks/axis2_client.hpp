// axis2_client.hpp — Apache Axis2 1.6.2 wsdl2java (Table II row 3).
#pragma once

#include "frameworks/client.hpp"

namespace wsx::frameworks {

/// Axis2 errors on unresolved type references and on operation-less
/// descriptions, but ignores attribute-level problems entirely. Its
/// generated code carries three distinct defects the compilers catch:
/// the "local_" suffix slip (XMLGregorianCalendar), a duplicated
/// "extraElement" member for double wildcards, and a duplicated enum
/// backing member.
class Axis2Client final : public ClientFramework {
 public:
  std::string name() const override { return "Apache Axis2 1.6.2"; }
  std::string tool() const override { return "wsdl2java"; }
  code::Language language() const override { return code::Language::kJava; }
  using ClientFramework::generate;
  GenerationResult generate(const SharedDescription& description) const override;
  /// Axis2 ships the addressing module engaged by default and Rampart for
  /// WS-Security — the full 1.2-era header stack on 1.1 envelopes, the
  /// shape shaded-CXF receivers accept and strict ones reject.
  VersionPolicy version_policy() const override { return VersionPolicy::kShadedCxf; }
};

}  // namespace wsx::frameworks
