// model.hpp — WSDL 1.1 document model (the subset emitted by SOAP stacks:
// types / message / portType / binding / service with SOAP 1.1 extensions).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "xml/node.hpp"
#include "xml/qname.hpp"
#include "xsd/model.hpp"

namespace wsx::wsdl {

/// wsdl:part — references either a top-level schema element (document
/// style) or a schema type (rpc style). WS-I BP requires exactly one of
/// element=/type= per part depending on binding style.
struct Part {
  std::string name;
  xml::QName element;  ///< for document/literal
  xml::QName type;     ///< for rpc/literal
  friend bool operator==(const Part&, const Part&) = default;
};

struct Message {
  std::string name;
  std::vector<Part> parts;
  friend bool operator==(const Message&, const Message&) = default;
};

/// wsdl:fault of an operation — a named reference to a fault message.
struct FaultRef {
  std::string name;     ///< fault name, unique within the operation
  std::string message;  ///< referenced message's local name
  friend bool operator==(const FaultRef&, const FaultRef&) = default;
};

/// wsdl:operation inside a portType. Messages are referenced by local name
/// within the same target namespace (the only form the studied stacks emit).
struct Operation {
  std::string name;
  std::string input_message;
  std::string output_message;  ///< empty for one-way operations
  std::vector<FaultRef> faults;
  friend bool operator==(const Operation&, const Operation&) = default;
};

struct PortType {
  std::string name;
  std::vector<Operation> operations;
  friend bool operator==(const PortType&, const PortType&) = default;
};

enum class SoapStyle { kDocument, kRpc };
enum class SoapUse { kLiteral, kEncoded };

const char* to_string(SoapStyle style);
const char* to_string(SoapUse use);

struct BindingOperation {
  std::string name;
  std::string soap_action;  ///< value of soapAction= (may be empty string)
  bool has_soap_action = true;
  SoapUse input_use = SoapUse::kLiteral;
  SoapUse output_use = SoapUse::kLiteral;
  /// Fault names bound with soap:fault (use is always literal here).
  std::vector<std::string> fault_names;
  friend bool operator==(const BindingOperation&, const BindingOperation&) = default;
};

struct Binding {
  std::string name;
  xml::QName port_type;
  SoapStyle style = SoapStyle::kDocument;
  std::string transport{"http://schemas.xmlsoap.org/soap/http"};
  std::vector<BindingOperation> operations;
  friend bool operator==(const Binding&, const Binding&) = default;
};

struct Port {
  std::string name;
  xml::QName binding;
  std::string location;  ///< soap:address/@location
  friend bool operator==(const Port&, const Port&) = default;
};

struct Service {
  std::string name;
  std::vector<Port> ports;
  friend bool operator==(const Service&, const Service&) = default;
};

/// wsdl:import — brings another WSDL document's namespace into scope.
/// WS-I requires a resolvable location (R2007); descriptions in the wild
/// carry locationless imports that tools cannot follow.
struct WsdlImport {
  std::string namespace_uri;
  std::string location;  ///< empty = unresolvable
  friend bool operator==(const WsdlImport&, const WsdlImport&) = default;
};

/// wsdl:definitions — the complete service description.
struct Definitions {
  std::string name;
  std::string target_namespace;
  std::string documentation;
  std::vector<WsdlImport> imports;
  std::vector<xsd::Schema> schemas;  ///< contents of wsdl:types
  std::vector<Message> messages;
  std::vector<PortType> port_types;
  std::vector<Binding> bindings;
  std::vector<Service> services;
  /// Vendor extension elements preserved verbatim (e.g. the JAX-WS
  /// customization stanza Java stacks attach; some client tools warn on
  /// extensions they do not recognize).
  std::vector<xml::Element> extension_elements;
  /// Extra namespace declarations to put on wsdl:definitions (prefix → URI).
  /// This is how servers declare namespaces that their schemas reference
  /// without importing — the W3CEndpointReference failure mode.
  std::vector<std::pair<std::string, std::string>> extra_namespaces;

  /// Source positions of named constructs, keyed "kind:name" (e.g.
  /// "portType:EchoPort", "message:echo", "operation:EchoPort/echo",
  /// "definitions:"). Populated by the parser when the model comes from
  /// text; empty for programmatically built models. Lint rules use this to
  /// anchor diagnostics to lines of the published document.
  std::map<std::string, SourceLocation, std::less<>> source_locations;

  const Message* find_message(std::string_view name) const;
  const PortType* find_port_type(std::string_view name) const;
  const Binding* find_binding(std::string_view name) const;

  /// Location recorded for `key` ("kind:name"), falling back to the
  /// wsdl:definitions element, else an unknown location.
  SourceLocation locate(std::string_view key) const;

  /// Total operation count across all portTypes.
  std::size_t operation_count() const;
};

}  // namespace wsx::wsdl
