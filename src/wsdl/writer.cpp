#include "wsdl/writer.hpp"

#include "xml/writer.hpp"

namespace wsx::wsdl {
namespace {

class WsdlWriter {
 public:
  WsdlWriter(const Definitions& definitions, const WsdlWriteOptions& options)
      : defs_(definitions), options_(options) {}

  xml::Element build() {
    xml::Element root{options_.wsdl_prefix + ":definitions"};
    root.declare_namespace(options_.wsdl_prefix, xml::ns::kWsdl);
    root.declare_namespace(options_.soap_prefix, xml::ns::kWsdlSoap);
    root.declare_namespace(options_.schema_prefix, xml::ns::kXsd);
    root.declare_namespace(options_.target_prefix, defs_.target_namespace);
    for (const auto& [prefix, uri] : defs_.extra_namespaces) {
      root.declare_namespace(prefix, uri);
    }
    if (!defs_.name.empty()) root.set_attribute("name", defs_.name);
    root.set_attribute("targetNamespace", defs_.target_namespace);

    if (!defs_.documentation.empty()) {
      root.add_element(wsdl("documentation")).add_text(defs_.documentation);
    }
    for (const WsdlImport& import : defs_.imports) {
      xml::Element& node = root.add_element(wsdl("import"));
      node.set_attribute("namespace", import.namespace_uri);
      if (!import.location.empty()) node.set_attribute("location", import.location);
    }
    for (const xml::Element& extension : defs_.extension_elements) {
      root.add_child(extension);
    }
    if (!defs_.schemas.empty()) {
      xml::Element& types = root.add_element(wsdl("types"));
      xsd::SchemaWriteOptions schema_options;
      schema_options.schema_prefix = options_.schema_prefix;
      schema_options.target_prefix = options_.target_prefix;
      for (const xsd::Schema& schema : defs_.schemas) {
        types.add_child(xsd::to_xml(schema, schema_options));
      }
    }
    for (const Message& message : defs_.messages) write_message(root, message);
    for (const PortType& port_type : defs_.port_types) write_port_type(root, port_type);
    for (const Binding& binding : defs_.bindings) write_binding(root, binding);
    for (const Service& service : defs_.services) write_service(root, service);
    return root;
  }

 private:
  std::string wsdl(std::string_view local) const {
    return options_.wsdl_prefix + ":" + std::string(local);
  }
  std::string soap(std::string_view local) const {
    return options_.soap_prefix + ":" + std::string(local);
  }

  std::string qname_ref(const xml::QName& name) const {
    if (name.namespace_uri() == defs_.target_namespace) {
      return options_.target_prefix + ":" + name.local_name();
    }
    if (name.namespace_uri() == xml::ns::kXsd) {
      return options_.schema_prefix + ":" + name.local_name();
    }
    return name.prefix().empty() ? name.local_name() : name.lexical();
  }

  void write_message(xml::Element& root, const Message& message) const {
    xml::Element& node = root.add_element(wsdl("message"));
    node.set_attribute("name", message.name);
    for (const Part& part : message.parts) {
      xml::Element& part_node = node.add_element(wsdl("part"));
      part_node.set_attribute("name", part.name);
      if (!part.element.empty()) part_node.set_attribute("element", qname_ref(part.element));
      if (!part.type.empty()) part_node.set_attribute("type", qname_ref(part.type));
    }
  }

  void write_port_type(xml::Element& root, const PortType& port_type) const {
    xml::Element& node = root.add_element(wsdl("portType"));
    node.set_attribute("name", port_type.name);
    for (const Operation& operation : port_type.operations) {
      xml::Element& op_node = node.add_element(wsdl("operation"));
      op_node.set_attribute("name", operation.name);
      if (!operation.input_message.empty()) {
        op_node.add_element(wsdl("input"))
            .set_attribute("message",
                           options_.target_prefix + ":" + operation.input_message);
      }
      if (!operation.output_message.empty()) {
        op_node.add_element(wsdl("output"))
            .set_attribute("message",
                           options_.target_prefix + ":" + operation.output_message);
      }
      for (const FaultRef& fault : operation.faults) {
        xml::Element& fault_node = op_node.add_element(wsdl("fault"));
        fault_node.set_attribute("name", fault.name);
        fault_node.set_attribute("message", options_.target_prefix + ":" + fault.message);
      }
    }
  }

  void write_binding(xml::Element& root, const Binding& binding) const {
    xml::Element& node = root.add_element(wsdl("binding"));
    node.set_attribute("name", binding.name);
    node.set_attribute("type", qname_ref(binding.port_type));
    xml::Element& soap_binding = node.add_element(soap("binding"));
    soap_binding.set_attribute("transport", binding.transport);
    soap_binding.set_attribute("style", to_string(binding.style));
    for (const BindingOperation& operation : binding.operations) {
      xml::Element& op_node = node.add_element(wsdl("operation"));
      op_node.set_attribute("name", operation.name);
      xml::Element& soap_op = op_node.add_element(soap("operation"));
      if (operation.has_soap_action) {
        soap_op.set_attribute("soapAction", operation.soap_action);
      }
      xml::Element& input = op_node.add_element(wsdl("input"));
      input.add_element(soap("body")).set_attribute("use", to_string(operation.input_use));
      xml::Element& output = op_node.add_element(wsdl("output"));
      output.add_element(soap("body")).set_attribute("use", to_string(operation.output_use));
      for (const std::string& fault_name : operation.fault_names) {
        xml::Element& fault_node = op_node.add_element(wsdl("fault"));
        fault_node.set_attribute("name", fault_name);
        xml::Element& soap_fault = fault_node.add_element(soap("fault"));
        soap_fault.set_attribute("name", fault_name);
        soap_fault.set_attribute("use", "literal");
      }
    }
  }

  void write_service(xml::Element& root, const Service& service) const {
    xml::Element& node = root.add_element(wsdl("service"));
    node.set_attribute("name", service.name);
    for (const Port& port : service.ports) {
      xml::Element& port_node = node.add_element(wsdl("port"));
      port_node.set_attribute("name", port.name);
      port_node.set_attribute("binding", qname_ref(port.binding));
      port_node.add_element(soap("address")).set_attribute("location", port.location);
    }
  }

  const Definitions& defs_;
  const WsdlWriteOptions& options_;
};

}  // namespace

xml::Element to_xml(const Definitions& definitions, const WsdlWriteOptions& options) {
  return WsdlWriter{definitions, options}.build();
}

std::string to_string(const Definitions& definitions, const WsdlWriteOptions& options) {
  return xml::write(to_xml(definitions, options));
}

}  // namespace wsx::wsdl
