#include "wsdl/model.hpp"

namespace wsx::wsdl {

const char* to_string(SoapStyle style) {
  return style == SoapStyle::kDocument ? "document" : "rpc";
}

const char* to_string(SoapUse use) { return use == SoapUse::kLiteral ? "literal" : "encoded"; }

const Message* Definitions::find_message(std::string_view name) const {
  for (const Message& message : messages) {
    if (message.name == name) return &message;
  }
  return nullptr;
}

const PortType* Definitions::find_port_type(std::string_view name) const {
  for (const PortType& port_type : port_types) {
    if (port_type.name == name) return &port_type;
  }
  return nullptr;
}

const Binding* Definitions::find_binding(std::string_view name) const {
  for (const Binding& binding : bindings) {
    if (binding.name == name) return &binding;
  }
  return nullptr;
}

SourceLocation Definitions::locate(std::string_view key) const {
  if (const auto it = source_locations.find(key); it != source_locations.end()) {
    return it->second;
  }
  if (const auto it = source_locations.find("definitions:"); it != source_locations.end()) {
    return it->second;
  }
  return {};
}

std::size_t Definitions::operation_count() const {
  std::size_t count = 0;
  for (const PortType& port_type : port_types) count += port_type.operations.size();
  return count;
}

}  // namespace wsx::wsdl
