// parser.hpp — builds a Definitions model from WSDL XML (text or tree).
//
// Every client artifact generator in the study consumes WSDL through this
// parser, so a served description goes through a full serialize → parse
// round trip before any tool sees it — exactly like the wire.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "wsdl/model.hpp"
#include "xml/node.hpp"

namespace wsx::wsdl {

/// Parses WSDL text. Error codes use the "wsdl." prefix.
Result<Definitions> parse(std::string_view text);

/// Parses an already-parsed wsdl:definitions element.
Result<Definitions> from_xml(const xml::Element& definitions_element);

}  // namespace wsx::wsdl
