// writer.hpp — serializes a Definitions model to a WSDL 1.1 XML document.
#pragma once

#include <string>

#include "wsdl/model.hpp"
#include "xml/node.hpp"
#include "xsd/writer.hpp"

namespace wsx::wsdl {

struct WsdlWriteOptions {
  std::string wsdl_prefix = "wsdl";
  std::string soap_prefix = "soap";
  std::string target_prefix = "tns";
  /// Passed through to the schema writer; WCF sets this to "s".
  std::string schema_prefix = "xs";
};

/// Builds the wsdl:definitions element for `definitions`.
xml::Element to_xml(const Definitions& definitions, const WsdlWriteOptions& options = {});

/// Convenience: full document text.
std::string to_string(const Definitions& definitions, const WsdlWriteOptions& options = {});

}  // namespace wsx::wsdl
