#include "wsdl/import_store.hpp"

#include <set>

#include "wsdl/parser.hpp"

namespace wsx::wsdl {

void DocumentStore::add(std::string location, std::string text) {
  documents_[std::move(location)] = std::move(text);
}

const std::string* DocumentStore::get(std::string_view location) const {
  const auto it = documents_.find(location);
  return it == documents_.end() ? nullptr : &it->second;
}

namespace {

/// Appends everything importable from `imported` into `target`.
void merge(Definitions& target, Definitions&& imported) {
  for (xsd::Schema& schema : imported.schemas) target.schemas.push_back(std::move(schema));
  for (Message& message : imported.messages) target.messages.push_back(std::move(message));
  for (PortType& port_type : imported.port_types) {
    target.port_types.push_back(std::move(port_type));
  }
  for (Binding& binding : imported.bindings) target.bindings.push_back(std::move(binding));
  for (Service& service : imported.services) target.services.push_back(std::move(service));
  for (auto& ns : imported.extra_namespaces) {
    target.extra_namespaces.push_back(std::move(ns));
  }
  for (xml::Element& extension : imported.extension_elements) {
    target.extension_elements.push_back(std::move(extension));
  }
}

Result<Definitions> load_recursive(const DocumentStore& store, const std::string& location,
                                   std::set<std::string>& in_progress,
                                   std::set<std::string>& loaded) {
  if (in_progress.contains(location)) {
    return Error{"wsdl.import-cycle", "import cycle through '" + location + "'"};
  }
  const std::string* text = store.get(location);
  if (text == nullptr) {
    return Error{"wsdl.unknown-location", "no document at '" + location + "'"};
  }
  Result<Definitions> parsed = parse(*text);
  if (!parsed.ok()) {
    return Error{parsed.error().code,
                 "while loading '" + location + "': " + parsed.error().message};
  }

  in_progress.insert(location);
  Definitions defs = std::move(parsed.value());
  const std::vector<WsdlImport> imports = std::move(defs.imports);
  defs.imports.clear();
  for (const WsdlImport& import : imports) {
    if (import.location.empty()) {
      in_progress.erase(location);
      return Error{"wsdl.unresolved-import", "import of namespace '" + import.namespace_uri +
                                                 "' in '" + location + "' has no location"};
    }
    if (loaded.contains(import.location)) continue;  // already merged elsewhere
    Result<Definitions> child =
        load_recursive(store, import.location, in_progress, loaded);
    if (!child.ok()) {
      in_progress.erase(location);
      return child.error();
    }
    merge(defs, std::move(child.value()));
  }
  in_progress.erase(location);
  loaded.insert(location);
  return defs;
}

}  // namespace

Result<Definitions> load_flattened(const DocumentStore& store,
                                   const std::string& root_location) {
  std::set<std::string> in_progress;
  std::set<std::string> loaded;
  return load_recursive(store, root_location, in_progress, loaded);
}

}  // namespace wsx::wsdl
