#include "wsdl/parser.hpp"

#include "xml/parser.hpp"
#include "xml/query.hpp"
#include "xsd/reader.hpp"

namespace wsx::wsdl {
namespace {

/// Extracts the local part of "tns:Name" style message references.
std::string local_part(std::string_view lexical) {
  const std::size_t colon = lexical.find(':');
  return std::string(colon == std::string_view::npos ? lexical : lexical.substr(colon + 1));
}

/// Records `node`'s start-tag position (when it was parsed from text) under
/// "kind:name" in the definitions' source map.
void record_location(Definitions& defs, std::string_view kind, std::string_view name,
                     const xml::Element& node) {
  if (node.source_line() == 0) return;
  defs.source_locations[std::string(kind) + ":" + std::string(name)] =
      SourceLocation{"", node.source_line(), node.source_column()};
}

class WsdlParser {
 public:
  Result<Definitions> parse(const xml::Element& root) {
    if (root.local_name() != "definitions") {
      return Error{"wsdl.not-a-wsdl",
                   "expected wsdl:definitions, got '" + root.name() + "'"};
    }
    scope_.push(root);
    Definitions defs;
    defs.name = root.attribute("name").value_or("");
    defs.target_namespace = root.attribute("targetNamespace").value_or("");
    record_location(defs, "definitions", "", root);
    for (const xml::Attribute& attr : root.attributes()) {
      constexpr std::string_view kXmlnsPrefix = "xmlns:";
      if (attr.name.rfind(kXmlnsPrefix, 0) == 0) {
        defs.extra_namespaces.emplace_back(attr.name.substr(kXmlnsPrefix.size()), attr.value);
      }
    }

    for (const xml::Element* child : root.child_elements()) {
      const std::string local = child->local_name();
      // Prefix-only lookup: we just need to know whether the element sits in
      // the WSDL namespace, so compare against the scope's stored URI instead
      // of materializing a QName per child.
      const std::string_view lexical = child->name();
      const std::size_t colon = lexical.find(':');
      const std::string_view prefix =
          colon == std::string_view::npos ? std::string_view{} : lexical.substr(0, colon);
      const std::string* ns_uri = scope_.find_prefix(prefix);
      const bool is_wsdl_ns = ns_uri != nullptr && *ns_uri == xml::ns::kWsdl;
      if (is_wsdl_ns && local == "documentation") {
        defs.documentation = child->text();
      } else if (is_wsdl_ns && local == "import") {
        WsdlImport import;
        import.namespace_uri = child->attribute("namespace").value_or("");
        import.location = child->attribute("location").value_or("");
        record_location(defs, "import", import.namespace_uri, *child);
        defs.imports.push_back(std::move(import));
      } else if (is_wsdl_ns && local == "types") {
        Status status = parse_types(*child, defs);
        if (!status.ok()) {
          scope_.pop();
          return status.error();
        }
      } else if (is_wsdl_ns && local == "message") {
        defs.messages.push_back(parse_message(*child));
        record_location(defs, "message", defs.messages.back().name, *child);
      } else if (is_wsdl_ns && local == "portType") {
        defs.port_types.push_back(parse_port_type(*child, defs));
        record_location(defs, "portType", defs.port_types.back().name, *child);
      } else if (is_wsdl_ns && local == "binding") {
        Result<Binding> binding = parse_binding(*child);
        if (!binding.ok()) {
          scope_.pop();
          return binding.error();
        }
        defs.bindings.push_back(std::move(binding.value()));
        record_location(defs, "binding", defs.bindings.back().name, *child);
      } else if (is_wsdl_ns && local == "service") {
        defs.services.push_back(parse_service(*child));
        record_location(defs, "service", defs.services.back().name, *child);
      } else {
        // Vendor extension element — preserve verbatim.
        defs.extension_elements.push_back(*child);
      }
    }
    scope_.pop();
    return defs;
  }

 private:
  Status parse_types(const xml::Element& types, Definitions& defs) {
    scope_.push(types);
    for (const xml::Element* child : types.child_elements()) {
      if (child->local_name() != "schema") continue;
      Result<xsd::Schema> schema = xsd::from_xml(*child, scope_);
      if (!schema.ok()) {
        scope_.pop();
        return schema.error();
      }
      defs.schemas.push_back(std::move(schema.value()));
    }
    scope_.pop();
    return Status::success();
  }

  xml::QName resolve_qname_attr(const xml::Element& node, std::string_view attr) {
    std::optional<std::string> raw = node.attribute(attr);
    if (!raw) return {};
    scope_.push(node);
    std::optional<xml::QName> resolved = scope_.resolve(*raw, /*use_default_ns=*/true);
    scope_.pop();
    if (resolved) return *resolved;
    const std::size_t colon = raw->find(':');
    if (colon == std::string::npos) return xml::QName{"", *raw};
    return xml::QName{"", raw->substr(colon + 1), raw->substr(0, colon)};
  }

  Message parse_message(const xml::Element& node) {
    Message message;
    message.name = node.attribute("name").value_or("");
    for (const xml::Element* part_node : node.children_named("part")) {
      Part part;
      part.name = part_node->attribute("name").value_or("");
      part.element = resolve_qname_attr(*part_node, "element");
      part.type = resolve_qname_attr(*part_node, "type");
      message.parts.push_back(std::move(part));
    }
    return message;
  }

  PortType parse_port_type(const xml::Element& node, Definitions& defs) {
    PortType port_type;
    port_type.name = node.attribute("name").value_or("");
    for (const xml::Element* op_node : node.children_named("operation")) {
      Operation operation;
      operation.name = op_node->attribute("name").value_or("");
      record_location(defs, "operation", port_type.name + "/" + operation.name, *op_node);
      if (const xml::Element* input = op_node->child("input")) {
        operation.input_message = local_part(input->attribute("message").value_or(""));
      }
      if (const xml::Element* output = op_node->child("output")) {
        operation.output_message = local_part(output->attribute("message").value_or(""));
      }
      for (const xml::Element* fault_node : op_node->children_named("fault")) {
        FaultRef fault;
        fault.name = fault_node->attribute("name").value_or("");
        fault.message = local_part(fault_node->attribute("message").value_or(""));
        operation.faults.push_back(std::move(fault));
      }
      port_type.operations.push_back(std::move(operation));
    }
    return port_type;
  }

  Result<Binding> parse_binding(const xml::Element& node) {
    Binding binding;
    binding.name = node.attribute("name").value_or("");
    binding.port_type = resolve_qname_attr(node, "type");
    if (const xml::Element* soap_binding = node.child("binding")) {
      binding.transport = soap_binding->attribute("transport").value_or("");
      const std::string style = soap_binding->attribute("style").value_or("document");
      if (style == "rpc") {
        binding.style = SoapStyle::kRpc;
      } else if (style == "document") {
        binding.style = SoapStyle::kDocument;
      } else {
        return Error{"wsdl.bad-style", "unknown soap:binding style '" + style + "'"};
      }
    }
    for (const xml::Element* op_node : node.children_named("operation")) {
      BindingOperation operation;
      operation.name = op_node->attribute("name").value_or("");
      if (const xml::Element* soap_op = op_node->child("operation")) {
        std::optional<std::string> action = soap_op->attribute("soapAction");
        operation.has_soap_action = action.has_value();
        operation.soap_action = action.value_or("");
      } else {
        operation.has_soap_action = false;
      }
      const auto read_use = [](const xml::Element* io) {
        if (io == nullptr) return SoapUse::kLiteral;
        const xml::Element* body = io->child("body");
        if (body == nullptr) return SoapUse::kLiteral;
        return body->attribute("use").value_or("literal") == "encoded" ? SoapUse::kEncoded
                                                                       : SoapUse::kLiteral;
      };
      operation.input_use = read_use(op_node->child("input"));
      operation.output_use = read_use(op_node->child("output"));
      for (const xml::Element* fault_node : op_node->children_named("fault")) {
        operation.fault_names.push_back(fault_node->attribute("name").value_or(""));
      }
      binding.operations.push_back(std::move(operation));
    }
    return binding;
  }

  Service parse_service(const xml::Element& node) {
    Service service;
    service.name = node.attribute("name").value_or("");
    for (const xml::Element* port_node : node.children_named("port")) {
      Port port;
      port.name = port_node->attribute("name").value_or("");
      port.binding = resolve_qname_attr(*port_node, "binding");
      if (const xml::Element* address = port_node->child("address")) {
        port.location = address->attribute("location").value_or("");
      }
      service.ports.push_back(std::move(port));
    }
    return service;
  }

  xml::NamespaceScope scope_;
};

}  // namespace

Result<Definitions> parse(std::string_view text) {
  Result<xml::Element> root = xml::parse_element(text);
  if (!root.ok()) return root.error();
  return from_xml(root.value());
}

Result<Definitions> from_xml(const xml::Element& definitions_element) {
  return WsdlParser{}.parse(definitions_element);
}

}  // namespace wsx::wsdl
