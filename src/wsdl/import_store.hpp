// import_store.hpp — multi-document descriptions: a location-keyed store
// plus recursive wsdl:import resolution into one flattened Definitions.
//
// Real stacks frequently publish split descriptions (WCF's ?wsdl=wsdl0
// pages, schemas in separate documents); consumers must fetch and merge
// them. This module models the fetch step with an in-memory store, so the
// library can represent both the single-document descriptions the study
// uses and the split form, and convert the latter into the former.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "wsdl/model.hpp"

namespace wsx::wsdl {

/// An in-memory "web": location URI → document text.
class DocumentStore {
 public:
  void add(std::string location, std::string text);
  /// nullptr when the location is unknown (an unfetchable import).
  const std::string* get(std::string_view location) const;
  std::size_t size() const { return documents_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> documents_;
};

/// Fetches `root_location`, recursively resolves every wsdl:import against
/// the store, and merges the imported definitions (schemas, messages,
/// portTypes, bindings, services, namespace declarations) into one
/// flattened document. The result carries no imports.
///
/// Errors ("wsdl." prefix): unknown root, import without a location,
/// import of an unknown location, import cycles, parse failures.
Result<Definitions> load_flattened(const DocumentStore& store,
                                   const std::string& root_location);

}  // namespace wsx::wsdl
