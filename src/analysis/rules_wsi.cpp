// rules_wsi.cpp — the WS-I Basic Profile 1.1 assertions, re-homed from
// src/wsi/assertions.cpp as registry rules. Ids follow the BP numbering for
// the checks it defines; the R28xx block covers schema validity, which BP
// incorporates by reference to XML Schema. The wsi::check adapter maps
// these findings back onto the legacy AssertionResult API.
#include <algorithm>
#include <string>

#include "analysis/registry.hpp"
#include "xsd/resolver.hpp"

namespace wsx::analysis {
namespace {

/// R2001-flavoured structural soundness: a definitions element must carry a
/// target namespace for its names to be referenceable.
void check_target_namespace(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  if (!defs.target_namespace.empty()) return;
  out.report("wsdl:definitions has no targetNamespace", "wsdl:definitions",
             defs.locate("definitions:"),
             "declare targetNamespace= on wsdl:definitions");
}

/// R2007: a wsdl:import must state a location the consumer can retrieve.
void check_import_locations(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::WsdlImport& import : defs.imports) {
    if (!import.location.empty()) continue;
    out.report("import of namespace '" + import.namespace_uri + "' has no location",
               import.namespace_uri, defs.locate("import:" + import.namespace_uri),
               "add location= to the wsdl:import");
  }
}

/// R2102: QName references in the description must resolve. This is the
/// assertion the DataSet-style (s:schema / s:lang) and the
/// W3CEndpointReference WSDLs fail.
void check_qname_resolution(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const xsd::ResolutionReport report = xsd::resolve(defs.schemas);
  for (const xsd::UnresolvedRef& ref : report.unresolved) {
    out.report(std::string(to_string(ref.kind)) + " '" + ref.target.lexical() + "' in " +
                   ref.context,
               ref.context, defs.locate("definitions:"),
               "declare or import the referenced component");
  }
}

/// R2800-flavoured: embedded schemas must be valid XML Schema. Catches the
/// dual type declaration (type= plus inline anonymous type) and unnamed
/// top-level elements.
void check_schema_validity(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const xsd::ResolutionReport report = xsd::resolve(defs.schemas);
  for (const xsd::ValidityIssue& issue : report.issues) {
    out.report(issue.code + " in " + issue.context, issue.context,
               defs.locate("definitions:"));
  }
}

/// R2304: operations within a portType must have unique signatures.
void check_operation_uniqueness(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (std::size_t i = 0; i < port_type.operations.size(); ++i) {
      const std::string& name = port_type.operations[i].name;
      bool duplicate = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (port_type.operations[j].name == name) duplicate = true;
      }
      if (!duplicate) continue;
      out.report("duplicate operation '" + name + "' in portType '" + port_type.name + "'",
                 port_type.name + "/" + name,
                 defs.locate("operation:" + port_type.name + "/" + name),
                 "rename one of the operations (BP prohibits overloading)");
    }
  }
}

/// R2201/R2204: a document-literal binding must reference messages whose
/// parts use element= (and at most one body part).
void check_document_parts(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    if (binding.style != wsdl::SoapStyle::kDocument) continue;
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;
    for (const wsdl::Operation& operation : port_type->operations) {
      for (const std::string& message_name :
           {operation.input_message, operation.output_message}) {
        if (message_name.empty()) continue;
        const wsdl::Message* message = defs.find_message(message_name);
        if (message == nullptr) continue;
        for (const wsdl::Part& part : message->parts) {
          if (part.element.empty()) {
            out.report("document-style part '" + part.name + "' lacks element=",
                       message->name + "/" + part.name,
                       defs.locate("message:" + message->name),
                       "reference a top-level schema element via element=");
          }
        }
        if (message->parts.size() > 1) {
          out.report("document-style message '" + message->name + "' has multiple parts",
                     message->name, defs.locate("message:" + message->name),
                     "wrap the parameters in a single wrapper element");
        }
      }
    }
  }
}

/// R2203: rpc-literal parts must use type=.
void check_rpc_parts(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    if (binding.style != wsdl::SoapStyle::kRpc) continue;
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;
    for (const wsdl::Operation& operation : port_type->operations) {
      for (const std::string& message_name :
           {operation.input_message, operation.output_message}) {
        if (message_name.empty()) continue;
        const wsdl::Message* message = defs.find_message(message_name);
        if (message == nullptr) continue;
        for (const wsdl::Part& part : message->parts) {
          if (part.type.empty()) {
            out.report("rpc-style part '" + part.name + "' lacks type=",
                       message->name + "/" + part.name,
                       defs.locate("message:" + message->name),
                       "reference a schema type via type=");
          }
        }
      }
    }
  }
}

/// R2706: a binding must use use="literal"; SOAP encoding is prohibited.
void check_literal_use(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    for (const wsdl::BindingOperation& operation : binding.operations) {
      if (operation.input_use != wsdl::SoapUse::kEncoded &&
          operation.output_use != wsdl::SoapUse::kEncoded) {
        continue;
      }
      out.report("operation '" + operation.name + "' in binding '" + binding.name +
                     "' uses SOAP encoding",
                 binding.name + "/" + operation.name, defs.locate("binding:" + binding.name),
                 "use use=\"literal\" on soap:body");
    }
  }
}

/// R2744/R2745: soap:operation must carry a soapAction attribute (its value
/// may be an empty string, but the attribute itself must be present so that
/// receivers can match the HTTP header).
void check_soap_action(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    for (const wsdl::BindingOperation& operation : binding.operations) {
      if (operation.has_soap_action) continue;
      out.report("operation '" + operation.name + "' in binding '" + binding.name +
                     "' has no soapAction attribute",
                 binding.name + "/" + operation.name, defs.locate("binding:" + binding.name),
                 "add soapAction=\"\" to soap:operation");
    }
  }
}

/// R2701: bindings must reference an existing portType.
void check_binding_port_type(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    if (defs.find_port_type(binding.port_type.local_name()) != nullptr) continue;
    out.report("binding '" + binding.name + "' references unknown portType '" +
                   binding.port_type.local_name() + "'",
               binding.name, defs.locate("binding:" + binding.name));
  }
}

/// R2718/R2720: binding operations must exist in the portType, and every
/// portType operation must be bound.
void check_binding_coverage(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;  // reported by R2701
    for (const wsdl::BindingOperation& bound : binding.operations) {
      const bool exists =
          std::any_of(port_type->operations.begin(), port_type->operations.end(),
                      [&bound](const wsdl::Operation& op) { return op.name == bound.name; });
      if (exists) continue;
      out.report("binding '" + binding.name + "' binds unknown operation '" + bound.name + "'",
                 binding.name + "/" + bound.name, defs.locate("binding:" + binding.name));
    }
    for (const wsdl::Operation& declared : port_type->operations) {
      const bool bound = std::any_of(
          binding.operations.begin(), binding.operations.end(),
          [&declared](const wsdl::BindingOperation& op) { return op.name == declared.name; });
      if (bound) continue;
      out.report("portType operation '" + declared.name + "' is not bound by '" +
                     binding.name + "'",
                 port_type->name + "/" + declared.name,
                 defs.locate("operation:" + port_type->name + "/" + declared.name));
    }
  }
}

/// R2097-flavoured: operations must reference messages that exist.
void check_message_references(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::PortType& port_type : defs.port_types) {
    for (const wsdl::Operation& operation : port_type.operations) {
      std::vector<std::string> referenced = {operation.input_message,
                                             operation.output_message};
      for (const wsdl::FaultRef& fault : operation.faults) referenced.push_back(fault.message);
      for (const std::string& message_name : referenced) {
        if (message_name.empty()) continue;
        if (defs.find_message(message_name) != nullptr) continue;
        out.report("operation '" + operation.name + "' references unknown message '" +
                       message_name + "'",
                   port_type.name + "/" + operation.name,
                   defs.locate("operation:" + port_type.name + "/" + operation.name));
      }
    }
  }
}

/// R2723-flavoured: every fault declared by a portType operation must be
/// bound by the binding under the same name.
void check_fault_coverage(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Binding& binding : defs.bindings) {
    const wsdl::PortType* port_type = defs.find_port_type(binding.port_type.local_name());
    if (port_type == nullptr) continue;
    for (const wsdl::Operation& operation : port_type->operations) {
      const wsdl::BindingOperation* bound = nullptr;
      for (const wsdl::BindingOperation& candidate : binding.operations) {
        if (candidate.name == operation.name) bound = &candidate;
      }
      if (bound == nullptr) continue;  // reported by R2718
      for (const wsdl::FaultRef& fault : operation.faults) {
        const bool covered = std::any_of(
            bound->fault_names.begin(), bound->fault_names.end(),
            [&fault](const std::string& name) { return name == fault.name; });
        if (covered) continue;
        out.report("fault '" + fault.name + "' of operation '" + operation.name +
                       "' is not bound by '" + binding.name + "'",
                   binding.name + "/" + operation.name,
                   defs.locate("binding:" + binding.name),
                   "add a soap:fault entry for the declared fault");
      }
    }
  }
}

/// R2105-flavoured: message parts using element= must reference an element
/// declared by the embedded schemas. Catches dangling wrapper references
/// (renamed wrapper elements, undeclared prefixes).
void check_part_element_resolution(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Message& message : defs.messages) {
    for (const wsdl::Part& part : message.parts) {
      if (part.element.empty()) continue;
      bool declared = false;
      for (const xsd::Schema& schema : defs.schemas) {
        if (schema.target_namespace == part.element.namespace_uri() &&
            schema.find_element(part.element.local_name()) != nullptr) {
          declared = true;
        }
      }
      if (declared) continue;
      out.report("part '" + part.name + "' of message '" + message.name +
                     "' references undeclared element '" + part.element.lexical() + "'",
                 message.name + "/" + part.name, defs.locate("message:" + message.name),
                 "declare the wrapper element in wsdl:types");
    }
  }
}

/// R2401-flavoured: a wsdl:service must expose SOAP/HTTP ports with an
/// absolute location and a resolvable binding.
void check_service_ports(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  for (const wsdl::Service& service : defs.services) {
    for (const wsdl::Port& port : service.ports) {
      if (port.location.rfind("http://", 0) != 0 && port.location.rfind("https://", 0) != 0) {
        out.report("port '" + port.name + "' has location '" + port.location + "'",
                   service.name + "/" + port.name, defs.locate("service:" + service.name),
                   "use an absolute http(s) URI in soap:address");
      }
      if (defs.find_binding(port.binding.local_name()) == nullptr) {
        out.report("port '" + port.name + "' references unknown binding '" +
                       port.binding.local_name() + "'",
                   service.name + "/" + port.name, defs.locate("service:" + service.name));
      }
    }
  }
}

void add_rule(RuleRegistry& registry, const char* id, const char* title,
              LambdaRule::CheckFn fn) {
  RuleInfo info;
  info.id = id;
  info.title = title;
  info.category = Category::kConformance;
  info.default_severity = Severity::kError;
  info.paper_ref = "§III.B.d";
  registry.add(std::make_unique<LambdaRule>(std::move(info), fn));
}

}  // namespace

void register_wsi_rules(RuleRegistry& registry) {
  // Registration order is the canonical reporting order of the original
  // checker (wsi::check relies on it).
  add_rule(registry, "R2001", "DESCRIPTION must declare a targetNamespace",
           check_target_namespace);
  add_rule(registry, "R2007", "wsdl:import must declare a location", check_import_locations);
  add_rule(registry, "R2102", "QName references must resolve", check_qname_resolution);
  add_rule(registry, "R2800", "Embedded schemas must be valid XML Schema",
           check_schema_validity);
  add_rule(registry, "R2304", "Operations within a portType must be uniquely named",
           check_operation_uniqueness);
  add_rule(registry, "R2204", "Document-literal bindings must use element= parts (one body part)",
           check_document_parts);
  add_rule(registry, "R2203", "Rpc-literal bindings must use type= parts", check_rpc_parts);
  add_rule(registry, "R2706", "Bindings must use literal encoding", check_literal_use);
  add_rule(registry, "R2744", "soap:operation must declare soapAction", check_soap_action);
  add_rule(registry, "R2701", "Bindings must reference an existing portType",
           check_binding_port_type);
  add_rule(registry, "R2718", "Binding operations must exist in the portType",
           check_binding_coverage);
  add_rule(registry, "R2097", "Operations must reference existing messages",
           check_message_references);
  add_rule(registry, "R2723", "Bindings must bind every declared fault", check_fault_coverage);
  add_rule(registry, "R2105", "Message parts must reference declared elements",
           check_part_element_resolution);
  add_rule(registry, "R2401", "soap:address must use an absolute http(s) URI",
           check_service_ports);
}

}  // namespace wsx::analysis
