#include "analysis/supervised_corpus.hpp"

#include <utility>

#include "catalog/spec_json.hpp"
#include "common/json.hpp"

namespace wsx::analysis {
namespace {

Error bad_config(const std::string& what) {
  return Error{"resilience.bad-config", "lint-corpus config: " + what};
}

Error bad_record(const std::string& id, const std::string& what) {
  return Error{"resilience.bad-record", "task record for '" + id + "': " + what};
}

bool shape_from_string(std::string_view text, frameworks::ServiceShape& out) {
  for (const frameworks::ServiceShape shape :
       {frameworks::ServiceShape::kSimpleEcho, frameworks::ServiceShape::kCrud}) {
    if (text == frameworks::to_string(shape)) {
      out = shape;
      return true;
    }
  }
  return false;
}

std::string finding_json(const Finding& finding) {
  return json::ObjectWriter{}
      .field("rule", finding.rule_id)
      .field("sev", to_string(finding.severity))
      .field("msg", finding.message)
      .field("subj", finding.subject)
      .field("uri", finding.location.uri)
      .field("line", finding.location.line)
      .field("col", finding.location.column)
      .field("fix", finding.fixit)
      .str();
}

bool finding_from_json(const json::Value& value, Finding& out) {
  const json::Value* rule = value.find("rule");
  const json::Value* sev = value.find("sev");
  const json::Value* msg = value.find("msg");
  const json::Value* subj = value.find("subj");
  const json::Value* uri = value.find("uri");
  const json::Value* line = value.find("line");
  const json::Value* col = value.find("col");
  const json::Value* fix = value.find("fix");
  if (rule == nullptr || !rule->is_string() || sev == nullptr || !sev->is_string() ||
      !severity_from_string(sev->as_string(), out.severity) || msg == nullptr ||
      !msg->is_string() || subj == nullptr || !subj->is_string() || uri == nullptr ||
      !uri->is_string() || line == nullptr || !line->is_number() || col == nullptr ||
      !col->is_number() || fix == nullptr || !fix->is_string()) {
    return false;
  }
  out.rule_id = rule->as_string();
  out.message = msg->as_string();
  out.subject = subj->as_string();
  out.location.uri = uri->as_string();
  out.location.line = static_cast<std::size_t>(line->as_number());
  out.location.column = static_cast<std::size_t>(col->as_number());
  out.fixit = fix->as_string();
  return true;
}

std::string analysis_record_json(const ServiceAnalysis& analysis) {
  json::ArrayWriter findings;
  for (const Finding& finding : analysis.findings) {
    findings.raw_item(finding_json(finding));
  }
  return json::ObjectWriter{}
      .field("server", analysis.server)
      .field("service", analysis.service)
      .field("type", analysis.type_name)
      .field("uri", analysis.uri)
      .field("zero", analysis.zero_operations)
      .raw_field("findings", findings.str())
      .str();
}

bool analysis_from_json(const json::Value& value, ServiceAnalysis& out) {
  const json::Value* server = value.find("server");
  const json::Value* service = value.find("service");
  const json::Value* type = value.find("type");
  const json::Value* uri = value.find("uri");
  const json::Value* zero = value.find("zero");
  const json::Value* findings = value.find("findings");
  if (server == nullptr || !server->is_string() || service == nullptr ||
      !service->is_string() || type == nullptr || !type->is_string() || uri == nullptr ||
      !uri->is_string() || zero == nullptr || !zero->is_bool() || findings == nullptr ||
      !findings->is_array()) {
    return false;
  }
  out.server = server->as_string();
  out.service = service->as_string();
  out.type_name = type->as_string();
  out.uri = uri->as_string();
  out.zero_operations = zero->as_bool();
  out.findings.reserve(findings->size());
  for (const json::Value& item : findings->items()) {
    Finding finding;
    if (!finding_from_json(item, finding)) return false;
    out.findings.push_back(std::move(finding));
  }
  return true;
}

}  // namespace

std::string corpus_config_json(const CorpusOptions& options) {
  json::ArrayWriter disabled;
  for (const std::string& id : options.rules.disabled) disabled.item(id);
  json::ArrayWriter only;
  for (const std::string& id : options.rules.only) only.item(id);
  json::ObjectWriter severity;
  for (const auto& [id, level] : options.rules.severity_overrides) {
    severity.field(id, to_string(level));
  }
  json::ObjectWriter rules;
  rules.raw_field("disabled", disabled.str())
      .raw_field("only", only.str())
      .raw_field("severity", severity.str());
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(options.java_spec))
      .raw_field("dotnet", catalog::to_json(options.dotnet_spec))
      .field("shape", frameworks::to_string(options.shape))
      .raw_field("rules", rules.str())
      .field("join_study", options.join_study)
      .str();
}

Result<CorpusOptions> corpus_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  CorpusOptions options;
  const json::Value* java = parsed->find("java");
  const json::Value* dotnet = parsed->find("dotnet");
  if (java == nullptr || !java->is_object() || dotnet == nullptr || !dotnet->is_object()) {
    return bad_config("missing catalog specs");
  }
  Result<catalog::JavaCatalogSpec> java_spec = catalog::java_spec_from_json(json::to_text(*java));
  if (!java_spec.ok()) return java_spec.error();
  options.java_spec = java_spec.value();
  Result<catalog::DotNetCatalogSpec> dotnet_spec =
      catalog::dotnet_spec_from_json(json::to_text(*dotnet));
  if (!dotnet_spec.ok()) return dotnet_spec.error();
  options.dotnet_spec = dotnet_spec.value();
  const json::Value* shape = parsed->find("shape");
  if (shape == nullptr || !shape->is_string() ||
      !shape_from_string(shape->as_string(), options.shape)) {
    return bad_config("missing or unknown shape");
  }
  const json::Value* rules = parsed->find("rules");
  if (rules == nullptr || !rules->is_object()) return bad_config("missing rules");
  const json::Value* disabled = rules->find("disabled");
  const json::Value* only = rules->find("only");
  const json::Value* severity = rules->find("severity");
  if (disabled == nullptr || !disabled->is_array() || only == nullptr || !only->is_array() ||
      severity == nullptr || !severity->is_object()) {
    return bad_config("malformed rules");
  }
  for (const json::Value& id : disabled->items()) {
    if (!id.is_string()) return bad_config("malformed disabled rule id");
    options.rules.disabled.insert(id.as_string());
  }
  for (const json::Value& id : only->items()) {
    if (!id.is_string()) return bad_config("malformed only rule id");
    options.rules.only.insert(id.as_string());
  }
  for (const auto& [id, level] : severity->members()) {
    Severity parsed_level = Severity::kNote;
    if (!level.is_string() || !severity_from_string(level.as_string(), parsed_level)) {
      return bad_config("malformed severity override for '" + id + "'");
    }
    options.rules.severity_overrides.emplace(id, parsed_level);
  }
  const json::Value* join = parsed->find("join_study");
  if (join == nullptr || !join->is_bool()) return bad_config("missing join_study");
  options.join_study = join->as_bool();
  return options;
}

Result<SupervisedCorpusResult> analyze_corpus_supervised(
    const CorpusOptions& options, const SupervisedCorpusOptions& supervision) {
  SupervisedCorpusResult out;
  CorpusReport& report = out.report;

  obs::Span run_span(options.tracer, "lint-corpus");
  const std::vector<LintJob> jobs = build_lint_corpus(options, report, run_span.id());

  resilience::CampaignTasks tasks;
  tasks.campaign = "lint-corpus";
  tasks.config_json = corpus_config_json(options);
  tasks.ids.reserve(jobs.size());
  for (const LintJob& job : jobs) {
    tasks.ids.push_back(job.server + "|" + job.service);
  }
  tasks.run = [&](std::size_t index, resilience::TaskContext& context) {
    obs::ScopedTimer one = obs::timer(options.metrics, "lint.step.lint_us");
    const ServiceAnalysis analysis = lint_service(jobs[index], options.rules);
    context.charge(1);  // cost model: one virtual ms per linted description
    return analysis_record_json(analysis);
  };

  obs::Span lint_span(options.tracer, "pass:lint", run_span);
  obs::ScopedTimer lint_timer = obs::timer(options.metrics, "lint.phase.lint_us");
  resilience::SupervisorOptions sup;
  sup.journal = supervision.journal;
  sup.jobs = options.jobs;
  sup.checkpoint_path = supervision.checkpoint_path;
  sup.resume = supervision.resume;
  sup.trip_after_tasks = supervision.trip_after_tasks;
  sup.metrics = options.metrics;
  Result<resilience::SupervisorReport> supervised = resilience::supervise(tasks, sup);
  lint_span.end();
  lint_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold in corpus order; the join + tally passes then run over exactly
  // the folded services.
  report.services.reserve(out.supervisor.completed);
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    if (task.state != resilience::TaskState::kCompleted) continue;
    Result<json::Value> record = json::parse(task.record);
    if (!record.ok()) return record.error();
    ServiceAnalysis analysis;
    if (!analysis_from_json(*record, analysis)) {
      return bad_record(task.id, "malformed service analysis");
    }
    obs::add(options.metrics, "lint.findings_total", analysis.findings.size());
    report.services.push_back(std::move(analysis));
  }
  finalize_corpus_report(report, options, run_span.id());
  return out;
}

}  // namespace wsx::analysis
