// baseline.hpp — suppression files for adopting the linter on an existing
// corpus: record today's findings, then only new findings fail the build.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/rule.hpp"
#include "common/result.hpp"

namespace wsx::analysis {

/// A set of accepted findings. The on-disk format is line-oriented text —
/// one "rule_id<TAB>uri<TAB>fingerprint" entry per finding, sorted — so
/// baselines diff cleanly under version control. The fingerprint hashes the
/// finding's identity (rule, subject, message) rather than its position, so
/// baselines survive unrelated edits that shift line numbers.
class Baseline {
 public:
  Baseline() = default;

  /// Records every finding as accepted.
  static Baseline from_findings(const std::vector<Finding>& findings);

  /// Parses the text format. Blank lines and '#' comment lines are ignored.
  /// Error code "baseline.malformed-line" names the offending line number.
  static Result<Baseline> parse(std::string_view text);

  /// Serializes to the text format (sorted, trailing newline, leading
  /// comment header).
  std::string str() const;

  bool suppresses(const Finding& finding) const;
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// The fingerprint recorded for a finding (exposed for tests).
  static std::string fingerprint(const Finding& finding);

 private:
  static std::string entry_key(const Finding& finding);
  std::set<std::string> entries_;
};

/// Removes findings the baseline suppresses, preserving order.
std::vector<Finding> apply_baseline(std::vector<Finding> findings, const Baseline& baseline);

}  // namespace wsx::analysis
