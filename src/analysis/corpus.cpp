#include "analysis/corpus.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "catalog/java_catalog.hpp"
#include "common/pool.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/server.hpp"
#include "interop/study.hpp"
#include "wsdl/parser.hpp"

namespace wsx::analysis {

ServiceAnalysis lint_service(const LintJob& job, const RuleConfig& rules) {
  ServiceAnalysis analysis;
  analysis.server = job.server;
  analysis.service = job.service;
  analysis.type_name = job.type_name;
  analysis.uri = job.uri;
  analysis.zero_operations = job.zero_operations;
  // Lint the published text, not the in-memory model — findings then carry
  // the line/column positions consumers would see.
  const Result<wsdl::Definitions> parsed = wsdl::parse(job.wsdl_text);
  if (!parsed.ok()) {
    Finding finding;
    finding.rule_id = "WSX0001";
    finding.severity = Severity::kCrash;
    finding.message = "published WSDL does not parse: " + parsed.error().message;
    finding.location.uri = job.uri;
    analysis.findings.push_back(std::move(finding));
    return analysis;
  }
  AnalysisInput input;
  input.definitions = &parsed.value();
  input.uri = job.uri;
  analysis.findings = analyze(input, rules).findings;
  return analysis;
}

bool ServiceAnalysis::flagged_by(std::string_view rule_id) const {
  return std::any_of(findings.begin(), findings.end(),
                     [rule_id](const Finding& f) { return f.rule_id == rule_id; });
}

double RuleStats::precision() const {
  const std::size_t flagged = true_positives + false_positives;
  return flagged == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(flagged);
}

double RuleStats::recall() const {
  const std::size_t errored = true_positives + false_negatives;
  return errored == 0 ? 0.0 : static_cast<double>(true_positives) / static_cast<double>(errored);
}

std::vector<Finding> CorpusReport::all_findings() const {
  std::vector<Finding> out;
  for (const ServiceAnalysis& service : services) {
    out.insert(out.end(), service.findings.begin(), service.findings.end());
  }
  return out;
}

std::size_t CorpusReport::services_with_findings() const {
  return static_cast<std::size_t>(
      std::count_if(services.begin(), services.end(),
                    [](const ServiceAnalysis& s) { return !s.findings.empty(); }));
}

std::string CorpusReport::summary() const {
  return std::to_string(services.size()) + " services on " + std::to_string(servers) +
         " servers: " + std::to_string(services_with_findings()) + " with findings";
}

std::vector<LintJob> build_lint_corpus(const CorpusOptions& options, CorpusReport& report,
                                       obs::SpanId parent_span) {
  // Preparation: the same corpus the study deploys (§III.A).
  obs::Span deploy_span(options.tracer, "pass:deploy", parent_span);
  obs::ScopedTimer deploy_timer = obs::timer(options.metrics, "lint.phase.deploy_us");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(options.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(options.dotnet_spec);
  const std::vector<frameworks::ServiceSpec> java_services =
      frameworks::make_services(java_catalog, options.shape);
  const std::vector<frameworks::ServiceSpec> dotnet_services =
      frameworks::make_services(dotnet_catalog, options.shape);
  const auto servers = frameworks::make_servers();
  report.servers = servers.size();

  std::vector<LintJob> jobs;
  for (const auto& server : servers) {
    const bool is_dotnet = server->language() == "C#";
    const std::vector<frameworks::ServiceSpec>& services =
        is_dotnet ? dotnet_services : java_services;
    for (const frameworks::ServiceSpec& spec : services) {
      if (!server->can_deploy(*spec.type)) {
        ++report.deploy_refusals;
        continue;
      }
      Result<frameworks::DeployedService> deployed = server->deploy(spec);
      if (!deployed.ok()) {
        ++report.deploy_refusals;
        continue;
      }
      LintJob job;
      job.server = server->name();
      job.service = spec.service_name();
      job.type_name = spec.type->name;
      job.uri = job.server + "/" + job.service + ".wsdl";
      job.wsdl_text = std::move(deployed.value().wsdl_text);
      job.zero_operations = deployed.value().wsdl.operation_count() == 0;
      jobs.push_back(std::move(job));
    }
  }
  obs::add(options.metrics, "lint.services_total", jobs.size());
  obs::add(options.metrics, "lint.deploy_refusals", report.deploy_refusals);
  deploy_span.annotate("services", jobs.size());
  deploy_span.annotate("refused", report.deploy_refusals);
  deploy_span.end();
  deploy_timer.stop();
  return jobs;
}

CorpusReport analyze_corpus(const CorpusOptions& options) {
  CorpusReport report;

  obs::Span run_span(options.tracer, "lint-corpus");
  const std::vector<LintJob> jobs = build_lint_corpus(options, report, run_span.id());

  // Parallel lint: fixed slices merged in index order, so the report is
  // identical for any --jobs value.
  obs::Span lint_span(options.tracer, "pass:lint", run_span);
  obs::ScopedTimer lint_timer = obs::timer(options.metrics, "lint.phase.lint_us");
  const auto run_slice = [&](std::size_t begin, std::size_t end) {
    std::vector<ServiceAnalysis> slice;
    slice.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      obs::ScopedTimer one = obs::timer(options.metrics, "lint.step.lint_us");
      slice.push_back(lint_service(jobs[i], options.rules));
    }
    return slice;
  };
  PoolStats pool_stats;
  std::vector<std::vector<ServiceAnalysis>> slices =
      parallel_slices(jobs.size(), options.jobs, run_slice, &pool_stats);
  if (options.metrics != nullptr) {
    options.metrics->gauge("lint.pool.workers").set_max(
        static_cast<std::int64_t>(pool_stats.workers));
    options.metrics->gauge("lint.pool.max_queue_depth").set_max(
        static_cast<std::int64_t>(pool_stats.max_queue_depth));
  }
  report.services.reserve(jobs.size());
  for (std::vector<ServiceAnalysis>& slice : slices) {
    for (ServiceAnalysis& service : slice) {
      obs::add(options.metrics, "lint.findings_total", service.findings.size());
      report.services.push_back(std::move(service));
    }
  }
  lint_span.annotate("linted", report.services.size());
  lint_span.end();
  lint_timer.stop();

  finalize_corpus_report(report, options, run_span.id());
  return report;
}

void finalize_corpus_report(CorpusReport& report, const CorpusOptions& options,
                            obs::SpanId parent_span) {
  // Failure-prediction join: replay the study over the same corpus and mark
  // services at least one client errored against (§III.B).
  if (options.join_study) {
    obs::Span join_span(options.tracer, "pass:join", parent_span);
    obs::ScopedTimer join_timer = obs::timer(options.metrics, "lint.phase.join_us");
    report.joined = true;
    std::map<std::string, bool, std::less<>> errored;  // server/service → error
    interop::StudyConfig study;
    study.java_spec = options.java_spec;
    study.dotnet_spec = options.dotnet_spec;
    study.shape = options.shape;
    study.threads = options.study_threads;
    study.observer = [&errored](const interop::TestRecord& record) {
      bool& slot = errored[record.server + "/" + record.service];
      slot = slot || record.generation_error || record.compilation_error;
    };
    (void)interop::run_study(study);
    for (ServiceAnalysis& service : report.services) {
      const auto it = errored.find(service.server + "/" + service.service);
      service.downstream_error = it != errored.end() && it->second;
    }
  }

  // Per-rule tallies in registration order.
  obs::Span tally_span(options.tracer, "pass:tally", parent_span);
  obs::ScopedTimer tally_timer = obs::timer(options.metrics, "lint.phase.tally_us");
  for (const auto& rule : RuleRegistry::builtin().rules()) {
    const RuleInfo& info = rule->info();
    if (!options.rules.enabled(info)) continue;
    RuleStats stats;
    stats.rule_id = info.id;
    for (const ServiceAnalysis& service : report.services) {
      const std::size_t hits = static_cast<std::size_t>(
          std::count_if(service.findings.begin(), service.findings.end(),
                        [&info](const Finding& f) { return f.rule_id == info.id; }));
      stats.findings += hits;
      const bool flagged = hits != 0;
      if (flagged) ++stats.services_flagged;
      if (!report.joined) continue;
      if (flagged && service.downstream_error) ++stats.true_positives;
      if (flagged && !service.downstream_error) ++stats.false_positives;
      if (!flagged && service.downstream_error) ++stats.false_negatives;
    }
    if (stats.findings != 0) {
      obs::add(options.metrics, "lint.rule." + stats.rule_id, stats.findings);
    }
    report.rules.push_back(std::move(stats));
  }
}

std::string format_report(const CorpusReport& report) {
  std::string out = report.summary() + "\n";
  if (report.deploy_refusals != 0) {
    out += "  (" + std::to_string(report.deploy_refusals) + " deploy refusals excluded)\n";
  }
  const auto percent = [](double value) {
    return std::to_string(static_cast<int>(value * 100.0 + 0.5)) + "%";
  };
  for (const RuleStats& stats : report.rules) {
    if (stats.findings == 0 && !report.joined) continue;
    out += "  " + stats.rule_id + ": " + std::to_string(stats.findings) + " findings in " +
           std::to_string(stats.services_flagged) + " services";
    if (report.joined && stats.services_flagged != 0) {
      out += " | precision " + percent(stats.precision()) + ", recall " +
             percent(stats.recall());
    }
    out += "\n";
  }
  return out;
}

}  // namespace wsx::analysis
