// predict.hpp — the static compatibility predictor.
//
// Given a service's SharedDescription, predicts each client tool's
// testing-phase verdict (ok / warning-class / error-class, plus the
// responsible footnote mechanism) *without executing* the generation or
// compilation pipeline. The per-client rules are distilled from the
// framework models (src/frameworks/*_client.cpp), the shared artifact
// builder and the compiler simulators: each rule is a pure predicate over
// the WsdlFeatures vector plus a small set of shape signals computed once
// per description. predict_corpus() applies the predictor to the whole
// generated corpus and — by default — joins the predictions against the
// dynamic study's ground truth to score precision/recall/F1 on the error
// class (docs/PREDICT.md has the methodology).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/corpus.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "common/result.hpp"
#include "frameworks/features.hpp"
#include "frameworks/service.hpp"
#include "frameworks/shared_description.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::analysis::predict {

/// Predicted classification of one testing-phase step.
enum class Outcome { kOk, kWarning, kError };

const char* to_string(Outcome outcome);
bool outcome_from_string(std::string_view text, Outcome& out);

/// Shape facts the compilation-step rules key on, beyond WsdlFeatures.
/// All are computed over *named* complex types only — those are the types
/// the artifact builder turns into classes.
struct ShapeSignals {
  bool throwable_wrapper = false;   ///< *Exception/*Error type with a "message" element
  bool gregorian_element = false;   ///< element the Axis2 local_ defect trips on
  bool unresolved_base = false;     ///< extension base not defined in the description
  bool duplicate_members = false;   ///< colliding class members (case-sensitive)
  bool duplicate_members_folded = false;  ///< ...compared without case (VB.NET)
  bool double_wildcard = false;     ///< >= 2 xs:any wildcards in one type
  bool has_enum = false;            ///< enumeration simpleType declared
  bool has_named_types = false;     ///< at least one class will be generated
  bool deep_nesting = false;        ///< nesting depth >= 3 (JScript missing-body)
  bool very_deep_nesting = false;   ///< nesting depth >= 5 (JScript compiler crash)
  bool anytype_unbounded = false;   ///< unbounded anyType element (JScript missing-body)
};

/// Computes the shape signals for a parsed description.
ShapeSignals collect_signals(const wsdl::Definitions& defs);

/// The facts a predictor rule may consult.
struct Facts {
  bool parsed = false;
  frameworks::WsdlFeatures features{};  ///< zeroed when !parsed
  ShapeSignals signals{};               ///< zeroed when !parsed
};

/// One predicted testing-phase step. Warning and error flags are
/// independent, exactly like interop::TestRecord's ground-truth flags —
/// most tools keep emitting warnings even once an error is certain.
struct StepPrediction {
  bool warning = false;
  bool error = false;
  /// Responsible mechanisms (footnote catalog ids), sorted and deduplicated.
  std::vector<std::string> mechanisms;

  Outcome outcome() const {
    return error ? Outcome::kError : warning ? Outcome::kWarning : Outcome::kOk;
  }
  friend bool operator==(const StepPrediction&, const StepPrediction&) = default;
};

/// Predicted verdict of one client tool against one description.
struct ClientPrediction {
  std::string client;      ///< exact framework name (join key)
  bool compiled = true;    ///< false: dynamic client, no compilation column
  bool artifacts = true;   ///< artifacts predicted to reach step (c)
  StepPrediction generation;
  StepPrediction compilation;

  bool any_error() const { return generation.error || compilation.error; }
  friend bool operator==(const ClientPrediction&, const ClientPrediction&) = default;
};

/// Full per-client prediction for one description.
struct ServicePrediction {
  std::string fingerprint;  ///< canonical shape fingerprint (hex)
  std::vector<ClientPrediction> clients;  ///< frameworks::make_clients() order

  friend bool operator==(const ServicePrediction&, const ServicePrediction&) = default;
};

// --- The predictor rule registry ----------------------------------------

enum class Step { kGeneration, kCompilation };

/// One distilled predictor rule: when `when(facts)` holds, `mechanism` is
/// predicted to fire at `step` with `severity`.
struct Rule {
  Step step;
  Outcome severity;
  const char* mechanism;
  bool (*when)(const Facts&);
};

/// The predictor's model of one client tool.
struct ClientModel {
  const char* client;            ///< exact ClientFramework::name() string
  bool compiled = true;          ///< has a compilation column
  bool artifacts_on_error = false;  ///< erratic tool: artifacts despite errors
  std::vector<Rule> rules;
};

/// The per-client rule registry, in frameworks::make_clients() order.
const std::vector<ClientModel>& client_models();

/// Predicts every client's verdict for one description.
ServicePrediction predict_service(const frameworks::SharedDescription& description);

// --- Corpus pass and ground-truth join ----------------------------------

struct PredictOptions {
  catalog::JavaCatalogSpec java_spec;      ///< defaults: the paper's population
  catalog::DotNetCatalogSpec dotnet_spec;  ///< defaults: the paper's population
  frameworks::ServiceShape shape = frameworks::ServiceShape::kSimpleEcho;
  std::size_t jobs = 0;  ///< predictor worker threads; 0 = hardware concurrency

  /// Runs the dynamic study over the same corpus and scores the predictions
  /// against its per-test outcomes (precision/recall/F1 on the error class).
  bool join_study = true;
  std::size_t study_threads = 0;  ///< 0 = hardware concurrency

  /// Observability sinks, both optional (null = off). Metrics use the
  /// "predict." prefix.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Prediction for one deployed service of the corpus.
struct ServicePredictionRecord {
  std::string server;
  std::string service;
  std::string type_name;
  std::string uri;  ///< "server/service.wsdl"
  std::vector<std::string> operations;  ///< sorted unique operation names
  ServicePrediction prediction;

  friend bool operator==(const ServicePredictionRecord&,
                         const ServicePredictionRecord&) = default;
};

/// Predictive power of the rules for one client (or "overall"), measured
/// against the dynamic study's error class.
struct ClientScore {
  std::string client;
  std::size_t tests = 0;
  std::size_t true_positives = 0;   ///< predicted error, observed error
  std::size_t false_positives = 0;  ///< predicted error, no observed error
  std::size_t false_negatives = 0;  ///< observed error, not predicted
  std::size_t true_negatives = 0;
  std::size_t exact_matches = 0;    ///< all four step flags predicted exactly

  double precision() const;  ///< TP / (TP + FP); 1 when nothing predicted
  double recall() const;     ///< TP / (TP + FN); 1 when nothing observed
  double f1() const;
};

struct PredictReport {
  std::vector<ServicePredictionRecord> services;  ///< deterministic corpus order
  std::vector<ClientScore> clients;  ///< with join_study, make_clients() order
  ClientScore overall;               ///< micro-average across clients
  std::size_t servers = 0;
  std::size_t deploy_refusals = 0;
  bool joined = false;

  /// One line, e.g. "57 services on 3 servers: 31 predicted to fail somewhere".
  std::string summary() const;
};

/// Predicts the whole corpus (in parallel) and optionally joins against the
/// dynamic study. Output is deterministic for a given options value
/// regardless of `jobs`.
PredictReport predict_corpus(const PredictOptions& options = {});

// --- Corpus passes, exposed for the resilience supervisor ---------------
//
// predict_corpus = build_predict_corpus → predict_service_job per job →
// ordered merge → finalize_predict_report, mirroring the lint corpus
// driver so both the straight and the supervised path produce identical
// reports.

/// The deploy pass: one job per deployed description, canonical corpus
/// order. Seeds `report.servers` / `report.deploy_refusals`.
std::vector<LintJob> build_predict_corpus(const PredictOptions& options, PredictReport& report,
                                          obs::SpanId parent_span = obs::kNoSpan);

/// Predicts one job (pure; safe to call from worker threads).
ServicePredictionRecord predict_service_job(const LintJob& job);

/// The join + scoring passes over `report.services` (already corpus-ordered).
void finalize_predict_report(PredictReport& report, const PredictOptions& options,
                             obs::SpanId parent_span = obs::kNoSpan);

/// JSON round-trip for one record (the resilience journal's task payload).
std::string record_json(const ServicePredictionRecord& record);
Result<ServicePredictionRecord> record_from_json(std::string_view text);

/// Human-readable report: per-client predicted/observed error counts and
/// precision/recall/F1 when joined.
std::string format_predict_report(const PredictReport& report);

/// Human-readable verdict table for one description (the single-service
/// `wsinterop predict SERVER TYPE` output).
std::string format_service_prediction(const ServicePrediction& prediction);

}  // namespace wsx::analysis::predict
