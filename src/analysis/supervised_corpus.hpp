// supervised_corpus.hpp — the corpus lint driver re-driven under the
// resilience supervisor (src/resilience/supervisor.hpp).
//
// Task granularity is one lint job (one deployed description). Completed
// findings are journaled as JSON and folded back in corpus order, then the
// usual join + tally passes run over the folded services, so a supervised
// run with full coverage matches analyze_corpus byte-for-byte.
#pragma once

#include <string>
#include <string_view>

#include "analysis/corpus.hpp"
#include "common/result.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::analysis {

/// Supervisor knobs for the lint --corpus verb (jobs lives in
/// CorpusOptions::jobs).
struct SupervisedCorpusOptions {
  resilience::JournalOptions journal;
  std::string checkpoint_path;
  const resilience::Journal* resume = nullptr;
  std::size_t trip_after_tasks = 0;
};

/// Canonical config fingerprint for the lint-corpus campaign, and its
/// inverse (used by `wsinterop resume`). Round-trips byte-identically
/// through json::parse + to_text; jobs/sinks are deliberately excluded.
std::string corpus_config_json(const CorpusOptions& options);
Result<CorpusOptions> corpus_config_from_json(std::string_view text);

struct SupervisedCorpusResult {
  CorpusReport report;
  resilience::SupervisorReport supervisor;
};

/// Runs the corpus lint under supervision. Quarantined or not-admitted
/// services are absent from the report (the supervisor section carries the
/// coverage counters); rule tallies cover the folded services only.
Result<SupervisedCorpusResult> analyze_corpus_supervised(
    const CorpusOptions& options, const SupervisedCorpusOptions& supervision);

}  // namespace wsx::analysis
