// rules_schema.cpp — the WSX lint pack over document structure and embedded
// schemas: the checks WS-I Basic Profile cannot express but that the paper
// shows predict client-side failures (§IV). Ids are stable WSX1xxx codes.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/registry.hpp"
#include "xml/qname.hpp"

namespace wsx::analysis {
namespace {

/// Invokes `fn(element, context)` for every element declaration in the
/// schema set, descending into inline anonymous types.
void for_each_element(const std::vector<xsd::Schema>& schemas,
                      const std::function<void(const xsd::ElementDecl&, const std::string&)>& fn) {
  const std::function<void(const xsd::ComplexType&, const std::string&)> walk_type =
      [&](const xsd::ComplexType& type, const std::string& context) {
        for (const xsd::Particle& particle : type.particles) {
          const auto* element = std::get_if<xsd::ElementDecl>(&particle);
          if (element == nullptr) continue;
          fn(*element, context);
          if (element->inline_type.has_value()) {
            walk_type(*element->inline_type, context + "/" + element->name);
          }
        }
      };
  for (const xsd::Schema& schema : schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      walk_type(type, "complexType " + type.name);
    }
    for (const xsd::ElementDecl& element : schema.elements) {
      fn(element, "element " + element.name);
      if (element.inline_type.has_value()) {
        walk_type(*element.inline_type, "element " + element.name);
      }
    }
  }
}

/// Invokes `fn(attribute, context)` for every attribute declaration.
void for_each_attribute(
    const std::vector<xsd::Schema>& schemas,
    const std::function<void(const xsd::AttributeDecl&, const std::string&)>& fn) {
  const std::function<void(const xsd::ComplexType&, const std::string&)> walk_type =
      [&](const xsd::ComplexType& type, const std::string& context) {
        for (const xsd::AttributeDecl& attribute : type.attributes) fn(attribute, context);
        for (const xsd::Particle& particle : type.particles) {
          const auto* element = std::get_if<xsd::ElementDecl>(&particle);
          if (element != nullptr && element->inline_type.has_value()) {
            walk_type(*element->inline_type, context + "/" + element->name);
          }
        }
      };
  for (const xsd::Schema& schema : schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      walk_type(type, "complexType " + type.name);
    }
    for (const xsd::ElementDecl& element : schema.elements) {
      if (element.inline_type.has_value()) {
        walk_type(*element.inline_type, "element " + element.name);
      }
    }
  }
}

/// WSX1001 (§IV.A): a description must expose at least one operation.
/// JBossWS publishes compliant-but-unusable descriptions whose portTypes
/// declare nothing; every studied client stack rejects or no-ops on them.
void check_operations_present(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  if (defs.port_types.empty()) {
    out.report("no portType declares any operation", "wsdl:definitions",
               defs.locate("definitions:"), "declare a portType with at least one operation");
    return;
  }
  for (const wsdl::PortType& port_type : defs.port_types) {
    if (!port_type.operations.empty()) continue;
    out.report("portType '" + port_type.name + "' declares no operations", port_type.name,
               defs.locate("portType:" + port_type.name),
               "declare at least one wsdl:operation");
  }
}

bool is_xsd_any_type(const xml::QName& type) {
  return type.namespace_uri() == xml::ns::kXsd &&
         (type.local_name() == "anyType" || type.local_name() == "anySimpleType");
}

/// WSX1002 (§IV.B): xs:anyType erases the schema contract; client
/// generators map it to object/Object and consumers must reverse-engineer
/// the payload.
void check_any_type(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const SourceLocation at = defs.locate("definitions:");
  for_each_element(defs.schemas, [&](const xsd::ElementDecl& element, const std::string& ctx) {
    if (!is_xsd_any_type(element.type)) return;
    out.report("element '" + element.name + "' in " + ctx + " is typed xs:" +
                   element.type.local_name(),
               ctx + "/" + element.name, at, "declare a concrete schema type");
  });
  for_each_attribute(defs.schemas,
                     [&](const xsd::AttributeDecl& attribute, const std::string& ctx) {
                       if (!is_xsd_any_type(attribute.type)) return;
                       out.report("attribute '" + attribute.name + "' in " + ctx +
                                      " is typed xs:" + attribute.type.local_name(),
                                  ctx + "/@" + attribute.name, at,
                                  "declare a concrete schema type");
                     });
}

/// WSX1003 (§IV.B): xs:any wildcard content (the DataSet/DataTable family)
/// defeats static proxy generation — the wire content has no compile-time
/// shape.
void check_wildcards(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const SourceLocation at = defs.locate("definitions:");
  const std::function<void(const xsd::ComplexType&, const std::string&)> walk_type =
      [&](const xsd::ComplexType& type, const std::string& context) {
        for (const xsd::Particle& particle : type.particles) {
          if (const auto* any = std::get_if<xsd::AnyParticle>(&particle)) {
            out.report("xs:any wildcard (namespace=\"" + any->namespace_constraint + "\") in " +
                           context,
                       context, at, "model the payload with named types");
          } else if (const auto* element = std::get_if<xsd::ElementDecl>(&particle)) {
            if (element->inline_type.has_value()) {
              walk_type(*element->inline_type, context + "/" + element->name);
            }
          }
        }
      };
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      walk_type(type, "complexType " + type.name);
    }
    for (const xsd::ElementDecl& element : schema.elements) {
      if (element.inline_type.has_value()) {
        walk_type(*element.inline_type, "element " + element.name);
      }
    }
  }
}

/// WSX1004 (§IV.B): schema types named after one platform's collection
/// classes. Such types round-trip only between homogeneous stacks; foreign
/// consumers get opaque or miscased mappings.
void check_collection_types(const AnalysisInput& input, Reporter& out) {
  static const std::set<std::string, std::less<>> kCollectionNames = {
      "ArrayList",  "ArrayOfAnyType", "DataSet",  "DataTable", "HashMap",
      "Hashtable",  "HashSet",        "LinkedList", "TreeMap", "Vector",
  };
  const wsdl::Definitions& defs = *input.definitions;
  const SourceLocation at = defs.locate("definitions:");
  std::set<std::string, std::less<>> reported;
  const auto flag = [&](const std::string& name, const std::string& context) {
    if (kCollectionNames.count(name) == 0) return;
    if (!reported.insert(name + "|" + context).second) return;
    out.report("platform collection type '" + name + "' in " + context, name, at,
               "expose an array of a named item type instead");
  };
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      flag(type.name, "wsdl:types");
    }
  }
  for_each_element(defs.schemas, [&](const xsd::ElementDecl& element, const std::string& ctx) {
    if (!element.type.empty()) flag(std::string(element.type.local_name()), ctx);
  });
}

/// True when a named complex type `name` exists in any schema whose target
/// namespace matches `ns` (or matches loosely when the reference carries no
/// namespace — the single-tns case the studied stacks emit).
const xsd::ComplexType* find_named_type(const std::vector<xsd::Schema>& schemas,
                                        const xml::QName& ref) {
  for (const xsd::Schema& schema : schemas) {
    if (!ref.namespace_uri().empty() && schema.target_namespace != ref.namespace_uri()) {
      continue;
    }
    if (const xsd::ComplexType* type = schema.find_complex_type(ref.local_name())) return type;
  }
  return nullptr;
}

/// WSX1005 (§IV.A): recursive complex types where every edge of the cycle
/// is required (minOccurs >= 1) and non-nillable. Serializers either refuse
/// such types or emit infinitely deep instances; the paper's minOccurs
/// advocacy argues for an explicit optional escape hatch.
void check_required_recursion(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const std::vector<xsd::Schema>& schemas = defs.schemas;

  // Adjacency over named complex types, required edges only.
  std::map<const xsd::ComplexType*, std::vector<const xsd::ComplexType*>> edges;
  std::vector<const xsd::ComplexType*> order;
  for (const xsd::Schema& schema : schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      order.push_back(&type);
      auto& out_edges = edges[&type];
      const std::function<void(const xsd::ComplexType&)> collect =
          [&](const xsd::ComplexType& node) {
            for (const xsd::Particle& particle : node.particles) {
              const auto* element = std::get_if<xsd::ElementDecl>(&particle);
              if (element == nullptr) continue;
              if (element->min_occurs < 1 || element->nillable) continue;
              if (!element->type.empty()) {
                if (const xsd::ComplexType* target = find_named_type(schemas, element->type)) {
                  out_edges.push_back(target);
                }
              }
              if (element->inline_type.has_value()) collect(*element->inline_type);
            }
          };
      collect(type);
    }
  }

  // Colour DFS; every node on a grey back-edge path is part of a required
  // cycle. Declaration order keeps the report deterministic.
  enum class Colour { kWhite, kGrey, kBlack };
  std::map<const xsd::ComplexType*, Colour> colour;
  std::set<const xsd::ComplexType*> in_cycle;
  std::vector<const xsd::ComplexType*> path;
  const std::function<void(const xsd::ComplexType*)> visit = [&](const xsd::ComplexType* node) {
    colour[node] = Colour::kGrey;
    path.push_back(node);
    for (const xsd::ComplexType* next : edges[node]) {
      if (colour[next] == Colour::kGrey) {
        for (auto it = std::find(path.begin(), path.end(), next); it != path.end(); ++it) {
          in_cycle.insert(*it);
        }
      } else if (colour[next] == Colour::kWhite) {
        visit(next);
      }
    }
    path.pop_back();
    colour[node] = Colour::kBlack;
  };
  for (const xsd::ComplexType* node : order) {
    if (colour[node] == Colour::kWhite) visit(node);
  }

  const SourceLocation at = defs.locate("definitions:");
  for (const xsd::ComplexType* node : order) {
    if (in_cycle.count(node) == 0) continue;
    out.report("complexType '" + node->name +
                   "' is recursive with no optional or nillable escape",
               node->name, at,
               "set minOccurs=\"0\" or nillable=\"true\" on the recursive element");
  }
}

/// Collects every type name referenced anywhere in the description
/// (element/attribute type=, extension base=, simpleType base=, rpc part
/// type=), for the unused-type check.
std::set<std::string, std::less<>> referenced_type_names(const wsdl::Definitions& defs) {
  std::set<std::string, std::less<>> used;
  for_each_element(defs.schemas, [&](const xsd::ElementDecl& element, const std::string&) {
    if (!element.type.empty()) used.insert(std::string(element.type.local_name()));
  });
  for_each_attribute(defs.schemas, [&](const xsd::AttributeDecl& attribute, const std::string&) {
    if (!attribute.type.empty()) used.insert(std::string(attribute.type.local_name()));
  });
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      if (!type.base.empty()) used.insert(std::string(type.base.local_name()));
    }
    for (const xsd::SimpleTypeDecl& type : schema.simple_types) {
      if (!type.base.empty()) used.insert(std::string(type.base.local_name()));
    }
  }
  for (const wsdl::Message& message : defs.messages) {
    for (const wsdl::Part& part : message.parts) {
      if (!part.type.empty()) used.insert(std::string(part.type.local_name()));
    }
  }
  return used;
}

/// WSX1006: named types nothing references. Dead declarations bloat every
/// generated client and frequently mark refactoring leftovers.
void check_unused_types(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const std::set<std::string, std::less<>> used = referenced_type_names(defs);
  const SourceLocation at = defs.locate("definitions:");
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      if (type.name.empty() || used.count(type.name) != 0) continue;
      out.report("complexType '" + type.name + "' is never referenced", type.name, at,
                 "remove the declaration or reference it");
    }
    for (const xsd::SimpleTypeDecl& type : schema.simple_types) {
      if (type.name.empty() || used.count(type.name) != 0) continue;
      out.report("simpleType '" + type.name + "' is never referenced", type.name, at,
                 "remove the declaration or reference it");
    }
  }
}

/// WSX1007: the same (targetNamespace, name) declared twice. Generators
/// pick one arbitrarily — peers can disagree about which.
void check_duplicate_types(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  const SourceLocation at = defs.locate("definitions:");
  std::map<std::string, std::size_t> counts;
  const auto key = [](const std::string& tns, const std::string& name) {
    return "{" + tns + "}" + name;
  };
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      if (!type.name.empty()) ++counts[key(schema.target_namespace, type.name)];
    }
    for (const xsd::SimpleTypeDecl& type : schema.simple_types) {
      if (!type.name.empty()) ++counts[key(schema.target_namespace, type.name)];
    }
  }
  for (const auto& [qualified, count] : counts) {
    if (count < 2) continue;
    out.report("type '" + qualified + "' is declared " + std::to_string(count) + " times",
               qualified, at, "keep a single declaration per qualified name");
  }
}

/// WSX1010: the same operation name exposed by multiple portTypes. Client
/// generators deriving method or message class names from operation names
/// collide across ports.
void check_operation_overloading(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  std::map<std::string, std::vector<const wsdl::PortType*>> by_name;
  for (const wsdl::PortType& port_type : defs.port_types) {
    std::set<std::string, std::less<>> seen;
    for (const wsdl::Operation& operation : port_type.operations) {
      if (!seen.insert(operation.name).second) continue;  // in-portType dup = R2304
      by_name[operation.name].push_back(&port_type);
    }
  }
  for (const auto& [name, port_types] : by_name) {
    if (port_types.size() < 2) continue;
    std::string owners;
    for (const wsdl::PortType* port_type : port_types) {
      if (!owners.empty()) owners += ", ";
      owners += "'" + port_type->name + "'";
    }
    out.report("operation '" + name + "' is declared by " +
                   std::to_string(port_types.size()) + " portTypes (" + owners + ")",
               name, defs.locate("operation:" + port_types.front()->name + "/" + name),
               "give each portType's operations distinct names");
  }
}

void add_rule(RuleRegistry& registry, const char* id, const char* title, Category category,
              Severity severity, const char* paper_ref, LambdaRule::CheckFn fn) {
  RuleInfo info;
  info.id = id;
  info.title = title;
  info.category = category;
  info.default_severity = severity;
  info.paper_ref = paper_ref;
  registry.add(std::make_unique<LambdaRule>(std::move(info), fn));
}

}  // namespace

void register_schema_rules(RuleRegistry& registry) {
  add_rule(registry, "WSX1001", "Description should expose at least one operation",
           Category::kStructure, Severity::kWarning, "§IV.A", check_operations_present);
  add_rule(registry, "WSX1002", "Avoid xs:anyType typed content", Category::kPortability,
           Severity::kWarning, "§IV.B", check_any_type);
  add_rule(registry, "WSX1003", "Avoid xs:any wildcard content", Category::kPortability,
           Severity::kWarning, "§IV.B", check_wildcards);
  add_rule(registry, "WSX1004", "Avoid platform collection types", Category::kPortability,
           Severity::kWarning, "§IV.B", check_collection_types);
  add_rule(registry, "WSX1005", "Recursive types need an optional or nillable escape",
           Category::kSchema, Severity::kWarning, "§IV.A", check_required_recursion);
  add_rule(registry, "WSX1006", "Named types should be referenced", Category::kSchema,
           Severity::kNote, "§IV.B", check_unused_types);
  add_rule(registry, "WSX1007", "Qualified type names must be declared once",
           Category::kSchema, Severity::kError, "§III.B.d", check_duplicate_types);
  add_rule(registry, "WSX1010", "Operation names should be unique across portTypes",
           Category::kPortability, Severity::kWarning, "§IV.B", check_operation_overloading);
}

}  // namespace wsx::analysis
