// supervised_predict.hpp — the predict corpus pass re-driven under the
// resilience supervisor (src/resilience/supervisor.hpp).
//
// Task granularity is one deployed description. Completed predictions are
// journaled as JSON records and folded back in corpus order, then the join
// + scoring pass runs over the folded services, so a supervised run with
// full coverage matches predict_corpus byte-for-byte.
#pragma once

#include <string>
#include <string_view>

#include "analysis/predict.hpp"
#include "common/result.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::analysis::predict {

/// Supervisor knobs for the predict --corpus verb (jobs lives in
/// PredictOptions::jobs).
struct SupervisedPredictOptions {
  resilience::JournalOptions journal;
  std::string checkpoint_path;
  const resilience::Journal* resume = nullptr;
  std::size_t trip_after_tasks = 0;
};

/// Canonical config fingerprint for the predict-corpus campaign, and its
/// inverse (used by `wsinterop resume`). Round-trips byte-identically
/// through json::parse + to_text; jobs/sinks are deliberately excluded.
std::string predict_config_json(const PredictOptions& options);
Result<PredictOptions> predict_config_from_json(std::string_view text);

struct SupervisedPredictResult {
  PredictReport report;
  resilience::SupervisorReport supervisor;
};

/// Runs the corpus prediction under supervision. Quarantined or
/// not-admitted services are absent from the report (the supervisor section
/// carries the coverage counters); scores cover the folded services only.
Result<SupervisedPredictResult> predict_corpus_supervised(
    const PredictOptions& options, const SupervisedPredictOptions& supervision);

}  // namespace wsx::analysis::predict
