// rules_imports.cpp — cross-document passes over the import graph. These
// run with full power when the AnalysisInput carries a DocumentStore (the
// corpus driver and the multi-document CLI mode provide one) and degrade to
// single-document checks otherwise.
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/registry.hpp"
#include "wsdl/parser.hpp"
#include "xml/qname.hpp"

namespace wsx::analysis {
namespace {

/// WSX1008: imports a consumer cannot follow. Two shapes: xs:import with no
/// schemaLocation whose namespace no local schema supplies (tools must
/// guess), and wsdl:import whose location the store cannot fetch (dead
/// split-description links).
void check_unresolved_imports(const AnalysisInput& input, Reporter& out) {
  const wsdl::Definitions& defs = *input.definitions;
  std::set<std::string, std::less<>> local_namespaces;
  for (const xsd::Schema& schema : defs.schemas) {
    local_namespaces.insert(schema.target_namespace);
  }
  const SourceLocation at = defs.locate("definitions:");
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::SchemaImport& import : schema.imports) {
      if (!import.schema_location.empty()) continue;
      if (import.namespace_uri == xml::ns::kXsd) continue;
      if (local_namespaces.count(import.namespace_uri) != 0) continue;
      out.report("schema import of namespace '" + import.namespace_uri +
                     "' has no schemaLocation and no local schema supplies it",
                 import.namespace_uri, at,
                 "add schemaLocation= or embed the schema in wsdl:types");
    }
  }
  if (input.store == nullptr) return;
  for (const wsdl::WsdlImport& import : defs.imports) {
    if (import.location.empty()) continue;  // R2007 reports locationless imports
    if (input.store->get(import.location) != nullptr) continue;
    out.report("wsdl:import location '" + import.location + "' cannot be fetched",
               import.location, defs.locate("import:" + import.namespace_uri),
               "publish the imported document at the referenced location");
  }
}

/// WSX1009: wsdl:import cycles. Follows import locations through the
/// DocumentStore from the root document; consumers that flatten imports
/// either loop or bail out on such graphs.
void check_import_cycles(const AnalysisInput& input, Reporter& out) {
  if (input.store == nullptr || input.root_location.empty()) return;
  const wsdl::DocumentStore& store = *input.store;

  // location → imported locations; parsed documents are cached so each is
  // read once even when imported from several places.
  std::map<std::string, std::vector<std::string>, std::less<>> graph;
  const std::function<void(const std::string&)> load = [&](const std::string& location) {
    if (graph.count(location) != 0) return;
    auto& imports = graph[location];
    const std::string* text = store.get(location);
    if (text == nullptr) return;  // WSX1008 reports unfetchable locations
    Result<wsdl::Definitions> parsed = wsdl::parse(*text);
    if (!parsed.ok()) return;  // parse failures surface elsewhere
    for (const wsdl::WsdlImport& import : parsed.value().imports) {
      if (!import.location.empty()) imports.push_back(import.location);
    }
    for (const std::string& next : imports) load(next);
  };
  load(input.root_location);

  std::set<std::string, std::less<>> done;
  std::vector<std::string> path;
  std::set<std::string, std::less<>> on_path;
  const std::function<void(const std::string&)> visit = [&](const std::string& location) {
    path.push_back(location);
    on_path.insert(location);
    for (const std::string& next : graph[location]) {
      if (on_path.count(next) != 0) {
        std::string chain = next;
        for (auto it = std::find(path.begin(), path.end(), next); it != path.end(); ++it) {
          if (*it != next) continue;
          for (auto rest = it + 1; rest != path.end(); ++rest) chain += " -> " + *rest;
          break;
        }
        chain += " -> " + next;
        out.report("wsdl:import cycle: " + chain, next, SourceLocation{input.root_location},
                   "break the cycle by merging or restructuring the documents");
        continue;
      }
      if (done.count(next) == 0) visit(next);
    }
    on_path.erase(location);
    path.pop_back();
    done.insert(location);
  };
  visit(input.root_location);
}

void add_rule(RuleRegistry& registry, const char* id, const char* title, Severity severity,
              LambdaRule::CheckFn fn) {
  RuleInfo info;
  info.id = id;
  info.title = title;
  info.category = Category::kImports;
  info.default_severity = severity;
  info.paper_ref = "§III.B.d";
  registry.add(std::make_unique<LambdaRule>(std::move(info), fn));
}

}  // namespace

void register_import_rules(RuleRegistry& registry) {
  add_rule(registry, "WSX1008", "Imports must be resolvable", Severity::kWarning,
           check_unresolved_imports);
  add_rule(registry, "WSX1009", "The wsdl:import graph must be acyclic", Severity::kError,
           check_import_cycles);
}

}  // namespace wsx::analysis
