#include "analysis/fingerprint.hpp"

#include <algorithm>
#include <vector>

namespace wsx::analysis {
namespace {

/// Renders a QName as "{uri}local" so prefixes never reach the canonical
/// form; an empty QName renders as "-".
std::string canon(const xml::QName& name) {
  if (name.empty()) return "-";
  return "{" + name.namespace_uri() + "}" + name.local_name();
}

void sort_lines(std::vector<std::string>& lines) {
  std::sort(lines.begin(), lines.end());
}

void append_all(std::string& out, const std::vector<std::string>& lines) {
  for (const std::string& line : lines) out += line;
}

std::string canon_complex_type(const xsd::ComplexType& type);

std::string canon_element(const xsd::ElementDecl& element) {
  std::string out = "elem name=" + element.name + " type=" + canon(element.type) +
                    " ref=" + canon(element.ref) + " min=" + std::to_string(element.min_occurs) +
                    " max=" + std::to_string(element.max_occurs) +
                    (element.nillable ? " nillable" : "") + ";";
  if (element.inline_type) {
    out += "[" + canon_complex_type(*element.inline_type) + "]";
  }
  return out;
}

std::string canon_complex_type(const xsd::ComplexType& type) {
  std::string out = "complex name=" + type.name + " base=" + canon(type.base) + ";";
  // Sequence particle order is shape-significant: keep it.
  for (const xsd::Particle& particle : type.particles) {
    if (const auto* element = std::get_if<xsd::ElementDecl>(&particle)) {
      out += canon_element(*element);
    } else {
      const auto& any = std::get<xsd::AnyParticle>(particle);
      out += "any ns=" + any.namespace_constraint + " pc=" + any.process_contents +
             " min=" + std::to_string(any.min_occurs) +
             " max=" + std::to_string(any.max_occurs) + ";";
    }
  }
  // Attribute order is insignificant in XSD: sort.
  std::vector<std::string> attrs;
  for (const xsd::AttributeDecl& attr : type.attributes) {
    attrs.push_back("attr name=" + attr.name + " type=" + canon(attr.type) +
                    " ref=" + canon(attr.ref) + (attr.required ? " required" : "") + ";");
  }
  sort_lines(attrs);
  append_all(out, attrs);
  std::vector<std::string> groups;
  for (const xsd::AttributeGroupRef& group : type.attribute_groups) {
    groups.push_back("attrgroup ref=" + canon(group.ref) + ";");
  }
  sort_lines(groups);
  append_all(out, groups);
  return out;
}

std::string canon_schema(const xsd::Schema& schema) {
  std::string out = "schema tns=" + schema.target_namespace +
                    (schema.element_form_qualified ? " qualified" : " unqualified") + "\n";
  std::vector<std::string> lines;
  for (const xsd::SchemaImport& import : schema.imports) {
    lines.push_back("import ns=" + import.namespace_uri +
                    (import.schema_location.empty() ? " locationless" : " located") + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);
  // Top-level declaration order is insignificant: sort each kind by its
  // full canonical rendering (stable even for duplicate names).
  lines.clear();
  for (const xsd::ComplexType& type : schema.complex_types) {
    lines.push_back(canon_complex_type(type) + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);
  lines.clear();
  for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
    // Enumeration facet order is insignificant.
    std::vector<std::string> values = simple.enumeration;
    std::sort(values.begin(), values.end());
    std::string line = "simple name=" + simple.name + " base=" + canon(simple.base) + " enum=";
    for (const std::string& value : values) line += value + ",";
    lines.push_back(line + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);
  lines.clear();
  for (const xsd::ElementDecl& element : schema.elements) {
    lines.push_back("top " + canon_element(element) + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t value = digest;
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

Fingerprint fingerprint(const wsdl::Definitions& defs) {
  std::string out = "wsx-fingerprint v1\n";
  out += "tns=" + defs.target_namespace + "\n";

  std::vector<std::string> lines;
  for (const wsdl::WsdlImport& import : defs.imports) {
    lines.push_back("wsdl-import ns=" + import.namespace_uri +
                    (import.location.empty() ? " locationless" : " located") + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  // Extra namespace *URIs* are shape (they change what references resolve
  // against); the prefixes they are declared under are not.
  lines.clear();
  for (const auto& [prefix, uri] : defs.extra_namespaces) {
    lines.push_back("xmlns uri=" + uri + "\n");
  }
  sort_lines(lines);
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  append_all(out, lines);

  // Extension elements matter by element identity, not serialization; the
  // local name strips any (presentation-only) prefix.
  lines.clear();
  for (const xml::Element& extension : defs.extension_elements) {
    lines.push_back("extension name=" + extension.local_name() + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  lines.clear();
  for (const xsd::Schema& schema : defs.schemas) lines.push_back(canon_schema(schema));
  sort_lines(lines);
  append_all(out, lines);

  lines.clear();
  for (const wsdl::Message& message : defs.messages) {
    std::string line = "message name=" + message.name + ";";
    // Part order is shape-significant (rpc parameter order): keep it.
    for (const wsdl::Part& part : message.parts) {
      line += "part name=" + part.name + " element=" + canon(part.element) +
              " type=" + canon(part.type) + ";";
    }
    lines.push_back(line + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  lines.clear();
  for (const wsdl::PortType& port_type : defs.port_types) {
    std::string line = "porttype name=" + port_type.name + ";";
    std::vector<std::string> ops;
    for (const wsdl::Operation& operation : port_type.operations) {
      std::string op = "op name=" + operation.name + " in=" + operation.input_message +
                       " out=" + operation.output_message + ";";
      std::vector<std::string> faults;
      for (const wsdl::FaultRef& fault : operation.faults) {
        faults.push_back("fault name=" + fault.name + " message=" + fault.message + ";");
      }
      sort_lines(faults);
      for (const std::string& fault : faults) op += fault;
      ops.push_back(op);
    }
    sort_lines(ops);
    for (const std::string& op : ops) line += op;
    lines.push_back(line + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  lines.clear();
  for (const wsdl::Binding& binding : defs.bindings) {
    std::string line = "binding name=" + binding.name + " type=" + canon(binding.port_type) +
                       " style=" + wsdl::to_string(binding.style) +
                       " transport=" + binding.transport + ";";
    std::vector<std::string> ops;
    for (const wsdl::BindingOperation& operation : binding.operations) {
      std::string op = "bop name=" + operation.name +
                       (operation.has_soap_action ? " action=" + operation.soap_action : "") +
                       " in=" + wsdl::to_string(operation.input_use) +
                       " out=" + wsdl::to_string(operation.output_use) + ";";
      std::vector<std::string> faults = operation.fault_names;
      std::sort(faults.begin(), faults.end());
      for (const std::string& fault : faults) op += "bfault name=" + fault + ";";
      ops.push_back(op);
    }
    sort_lines(ops);
    for (const std::string& op : ops) line += op;
    lines.push_back(line + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  lines.clear();
  for (const wsdl::Service& service : defs.services) {
    std::string line = "service name=" + service.name + ";";
    std::vector<std::string> ports;
    for (const wsdl::Port& port : service.ports) {
      // soap:address location excluded: a redeployed service keeps its shape.
      ports.push_back("port name=" + port.name + " binding=" + canon(port.binding) + ";");
    }
    sort_lines(ports);
    for (const std::string& port : ports) line += port;
    lines.push_back(line + "\n");
  }
  sort_lines(lines);
  append_all(out, lines);

  Fingerprint result;
  result.canonical = std::move(out);
  result.digest = fnv1a64(result.canonical);
  return result;
}

}  // namespace wsx::analysis
