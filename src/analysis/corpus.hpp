// corpus.hpp — the corpus-parallel lint driver and the failure-prediction
// join. Deploys the study's catalog-generated services on every server
// framework, lints each published WSDL across a thread pool, and — when
// asked — joins the per-rule hits against interop::study outcomes to score
// each rule's predictive power (the paper's description-step-flags-predict-
// downstream-errors claim, §IV.A).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/registry.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::analysis {

struct CorpusOptions {
  catalog::JavaCatalogSpec java_spec;      ///< defaults: the paper's population
  catalog::DotNetCatalogSpec dotnet_spec;  ///< defaults: the paper's population
  frameworks::ServiceShape shape = frameworks::ServiceShape::kSimpleEcho;
  std::size_t jobs = 0;  ///< lint worker threads; 0 = hardware concurrency
  RuleConfig rules;      ///< rule selection/severity tuning

  /// Runs the interop study over the same corpus and computes per-rule
  /// precision/recall against downstream generation/compilation errors.
  bool join_study = false;
  std::size_t study_threads = 0;  ///< 0 = hardware concurrency

  /// Observability sinks, both optional (null = off). Spans: run → pass
  /// (deploy/lint/join/tally); metrics use the "lint." prefix, including
  /// one "lint.rule.<ID>" hit counter per firing rule.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Lint outcome of one deployed service.
struct ServiceAnalysis {
  std::string server;     ///< server framework name
  std::string service;    ///< e.g. "EchoSimpleDateFormat"
  std::string type_name;  ///< native type behind the service
  std::string uri;        ///< "server/service.wsdl", stamped into findings
  std::vector<Finding> findings;
  bool zero_operations = false;  ///< the study's "unusable" classification
  /// With join_study: at least one client hit a generation or compilation
  /// error against this service.
  bool downstream_error = false;

  bool flagged_by(std::string_view rule_id) const;
};

/// Predictive power of one rule against the joined study outcomes.
struct RuleStats {
  std::string rule_id;
  std::size_t findings = 0;          ///< total findings emitted
  std::size_t services_flagged = 0;  ///< services with >= 1 finding
  // Populated only with CorpusOptions::join_study:
  std::size_t true_positives = 0;   ///< flagged and downstream error
  std::size_t false_positives = 0;  ///< flagged, no downstream error
  std::size_t false_negatives = 0;  ///< downstream error, not flagged

  double precision() const;  ///< TP / (TP + FP); 0 when nothing flagged
  double recall() const;     ///< TP / (TP + FN); 0 when no errors happened
};

struct CorpusReport {
  std::vector<ServiceAnalysis> services;  ///< deterministic corpus order
  /// Per-rule hit counts in registry registration order (rules that never
  /// fired included, so reports are shape-stable).
  std::vector<RuleStats> rules;
  std::size_t servers = 0;
  std::size_t deploy_refusals = 0;  ///< services a server would not deploy
  bool joined = false;              ///< RuleStats carry TP/FP/FN

  /// Every finding across the corpus, in corpus order.
  std::vector<Finding> all_findings() const;
  std::size_t services_with_findings() const;
  /// One line, e.g. "1894 services on 3 servers: 120 with findings".
  std::string summary() const;
};

/// Deploys, lints (in parallel), and optionally joins against the study.
/// Output is deterministic for a given options value regardless of `jobs`.
CorpusReport analyze_corpus(const CorpusOptions& options = {});

// --- Corpus passes, exposed for the resilience supervisor ---------------
//
// analyze_corpus = build_lint_corpus → lint_service per job → ordered
// merge → finalize_corpus_report. The supervised driver replaces the
// middle with checkpointable tasks and folds records through the same
// sequence, so both paths produce identical reports.

/// One deployed description awaiting analysis.
struct LintJob {
  std::string server;
  std::string service;
  std::string type_name;
  std::string uri;
  std::string wsdl_text;
  bool zero_operations = false;
};

/// The deploy pass: generates and deploys the corpus on every server,
/// seeding `report.servers` / `report.deploy_refusals`. Job order is the
/// canonical corpus order.
std::vector<LintJob> build_lint_corpus(const CorpusOptions& options, CorpusReport& report,
                                       obs::SpanId parent_span = obs::kNoSpan);

/// Lints one job (pure; safe to call from worker threads).
ServiceAnalysis lint_service(const LintJob& job, const RuleConfig& rules);

/// The join + tally passes over `report.services` (which must already be
/// in corpus order).
void finalize_corpus_report(CorpusReport& report, const CorpusOptions& options,
                            obs::SpanId parent_span = obs::kNoSpan);

/// Human-readable per-rule table (hits, and precision/recall when joined).
std::string format_report(const CorpusReport& report);

}  // namespace wsx::analysis
