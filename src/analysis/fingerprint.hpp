// fingerprint.hpp — canonical shape fingerprint of a service description.
//
// The substitution index (docs/PREDICT.md) keys services by *shape*: the
// operation signatures, message parts and normalized XSD type structure
// that client tools actually consume. The fingerprint is a digest over a
// canonical serialization of the parsed model, so it is stable under
// namespace-prefix renaming (QNames are expanded to {uri}local), attribute
// and declaration reordering where XML order is insignificant, and any
// whitespace/formatting difference the parser already discards. Sequence
// particle order and message part order are shape-significant and kept.
//
// Deliberately excluded: wsdl:definitions/@name, documentation, source
// locations, and soap:address locations — the same service deployed under
// a different name or URL keeps its fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "wsdl/model.hpp"

namespace wsx::analysis {

/// A canonical-form digest plus the canonical text it was computed over
/// (kept for collision checks and for the property tests).
struct Fingerprint {
  std::uint64_t digest = 0;   ///< FNV-1a 64 over `canonical`
  std::string canonical;      ///< the canonical serialization

  /// 16-digit lowercase hex rendering of the digest.
  std::string hex() const;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.digest == b.digest && a.canonical == b.canonical;
  }
};

/// Computes the canonical shape fingerprint of `defs`.
Fingerprint fingerprint(const wsdl::Definitions& defs);

/// FNV-1a 64-bit over arbitrary bytes (exposed for fingerprinting inputs
/// that never parsed — the raw served bytes are the only shape they have).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace wsx::analysis
