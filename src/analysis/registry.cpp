#include "analysis/registry.hpp"

#include <algorithm>

namespace wsx::analysis {

const char* to_string(Category category) {
  switch (category) {
    case Category::kConformance:
      return "conformance";
    case Category::kStructure:
      return "structure";
    case Category::kSchema:
      return "schema";
    case Category::kImports:
      return "imports";
    case Category::kPortability:
      return "portability";
  }
  return "unknown";
}

Diagnostic Finding::to_diagnostic() const {
  Diagnostic diagnostic;
  diagnostic.severity = severity;
  diagnostic.code = "lint." + rule_id;
  diagnostic.message = message;
  diagnostic.subject = subject;
  diagnostic.location = location;
  diagnostic.fixit = fixit;
  return diagnostic;
}

void Reporter::report(std::string message, std::string subject, SourceLocation location,
                      std::string fixit) {
  if (location.uri.empty()) location.uri = uri_;
  Finding finding;
  finding.rule_id = info_.id;
  finding.severity = severity_;
  finding.message = std::move(message);
  finding.subject = std::move(subject);
  finding.location = std::move(location);
  finding.fixit = std::move(fixit);
  out_.push_back(std::move(finding));
  ++reported_;
}

bool RuleConfig::enabled(const RuleInfo& info) const {
  if (disabled.count(info.id) != 0) return false;
  return only.empty() || only.count(info.id) != 0;
}

Severity RuleConfig::severity_for(const RuleInfo& info) const {
  const auto it = severity_overrides.find(info.id);
  return it != severity_overrides.end() ? it->second : info.default_severity;
}

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry pack;
    register_wsi_rules(pack);
    register_schema_rules(pack);
    register_import_rules(pack);
    return pack;
  }();
  return registry;
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }

const Rule* RuleRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule->info().id == id) return rule.get();
  }
  return nullptr;
}

std::size_t AnalysisResult::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [severity](const Finding& f) { return f.severity == severity; }));
}

bool AnalysisResult::has_errors() const {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError || f.severity == Severity::kCrash;
  });
}

AnalysisResult analyze(const AnalysisInput& input, const RuleConfig& config,
                       const RuleRegistry& registry) {
  AnalysisResult result;
  for (const auto& rule : registry.rules()) {
    const RuleInfo& info = rule->info();
    if (!config.enabled(info)) continue;
    Reporter reporter{info, config.severity_for(info), input.uri, result.findings};
    rule->run(input, reporter);
  }
  return result;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    const std::string where = finding.location.str();
    if (!where.empty()) {
      out += where;
      out += ": ";
    }
    out += to_string(finding.severity);
    out += ": [";
    out += finding.rule_id;
    out += "] ";
    out += finding.message;
    out += '\n';
    if (!finding.fixit.empty()) {
      out += "    fix: ";
      out += finding.fixit;
      out += '\n';
    }
  }
  return out;
}

std::string summarize(const std::vector<Finding>& findings) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  for (const Finding& finding : findings) {
    switch (finding.severity) {
      case Severity::kError:
      case Severity::kCrash:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
  }
  if (errors == 0 && warnings == 0 && notes == 0) return "clean";
  std::string out;
  const auto append = [&out](std::size_t n, const char* noun) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  append(errors, "error");
  append(warnings, "warning");
  append(notes, "note");
  return out;
}

}  // namespace wsx::analysis
