// message_lint.hpp — the WSX11xx pack: version-coherence lint over SOAP
// *messages* rather than WSDL documents.
//
// The document rules (WSX10xx, BP R2xxx) predict steps 1–3 failures from
// the description alone; the message pack predicts the mixed-version wire
// failures of docs/VERSIONS.md from a captured envelope alone. A message
// that trips WSX1101–WSX1103 is exactly one a strict receiver rejects with
// a VersionMismatch/MustUnderstand fault (or HTTP 415), so the pack is the
// static mirror of the --versions campaign axis: lint the traffic capture,
// know the blast radius before the rollout.
//
// The rules reuse the document framework's Finding/RuleRegistry/RuleConfig
// machinery, so findings flow through the same SARIF serialization and
// Baseline suppression files as the document pack.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/registry.hpp"

namespace wsx::analysis {

/// One captured message: the envelope bytes plus the Content-Type it
/// travelled under. `uri` is the capture's identity, stamped into finding
/// locations (a file name, a journal offset, a pair id — anything stable).
struct MessageInput {
  std::string body;
  std::string content_type;  ///< "" = unknown; skips the media-type checks
  std::string uri;
};

/// The WSX11xx rules in registration order (WSX1101, WSX1102, WSX1103).
/// Constructed once, thread-safe to read, usable as the `registry`
/// argument of to_sarif.
const RuleRegistry& message_lint_registry();

/// Runs the message pack over one capture. An unparseable body reports
/// nothing — the fuzz and chaos layers own malformed-envelope handling;
/// this pack is about well-formed messages whose *versions* disagree.
std::vector<Finding> lint_message(const MessageInput& input, const RuleConfig& config = {});

}  // namespace wsx::analysis
