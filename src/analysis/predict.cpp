#include "analysis/predict.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/fingerprint.hpp"
#include "common/json.hpp"
#include "common/pool.hpp"
#include "common/strings.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/server.hpp"
#include "interop/study.hpp"

namespace wsx::analysis::predict {
namespace {

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Mirrors build_type_class: the field list one complexType compiles to
/// (defect-free shape — defects are modelled as their own signals).
std::vector<std::string> class_field_names(const xsd::ComplexType& type) {
  std::vector<std::string> names;
  bool ref_member_emitted = false;
  for (const xsd::ElementDecl* element : type.elements()) {
    if (element->is_ref()) {
      // Repeated refs collapse onto one opaque member.
      if (!ref_member_emitted) {
        names.emplace_back("schemaData");
        ref_member_emitted = true;
      }
      continue;
    }
    names.push_back(element->name);
  }
  if (type.any_count() > 0) names.emplace_back("any");
  return names;
}

bool has_duplicate(const std::vector<std::string>& names, bool fold_case) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (fold_case ? iequals(names[i], names[j]) : names[i] == names[j]) return true;
    }
  }
  // The generated describe() method collides with a member of the same name.
  return std::any_of(names.begin(), names.end(), [fold_case](const std::string& name) {
    return fold_case ? iequals(name, "describe") : name == "describe";
  });
}

void apply_rules(const ClientModel& model, Step step, const Facts& facts, StepPrediction& out) {
  for (const Rule& rule : model.rules) {
    if (rule.step != step || !rule.when(facts)) continue;
    if (rule.severity == Outcome::kError) {
      out.error = true;
    } else {
      out.warning = true;
    }
    out.mechanisms.emplace_back(rule.mechanism);
  }
}

void finish_step(StepPrediction& step) {
  std::sort(step.mechanisms.begin(), step.mechanisms.end());
  step.mechanisms.erase(std::unique(step.mechanisms.begin(), step.mechanisms.end()),
                        step.mechanisms.end());
}

std::string step_json(const StepPrediction& step) {
  json::ArrayWriter mechanisms;
  for (const std::string& mechanism : step.mechanisms) mechanisms.item(mechanism);
  return json::ObjectWriter()
      .field("warning", step.warning)
      .field("error", step.error)
      .raw_field("mechanisms", mechanisms.str())
      .str();
}

Result<StepPrediction> step_from_json(const json::Value& value) {
  const json::Value* warning = value.find("warning");
  const json::Value* error = value.find("error");
  const json::Value* mechanisms = value.find("mechanisms");
  if (warning == nullptr || !warning->is_bool() || error == nullptr || !error->is_bool() ||
      mechanisms == nullptr || !mechanisms->is_array()) {
    return Error{"predict.bad-record", "step object missing warning/error/mechanisms"};
  }
  StepPrediction step;
  step.warning = warning->as_bool();
  step.error = error->as_bool();
  for (const json::Value& item : mechanisms->items()) {
    if (!item.is_string()) return Error{"predict.bad-record", "mechanism is not a string"};
    step.mechanisms.push_back(item.as_string());
  }
  return step;
}

int percent(double value) { return static_cast<int>(value * 100.0 + 0.5); }

const char* outcome_word(Outcome outcome) { return to_string(outcome); }

void tally(ClientScore& score, const ClientPrediction& predicted,
           const interop::TestRecord& actual) {
  ++score.tests;
  const bool predicted_error = predicted.any_error();
  const bool actual_error = actual.generation_error || actual.compilation_error;
  if (predicted_error && actual_error) ++score.true_positives;
  if (predicted_error && !actual_error) ++score.false_positives;
  if (!predicted_error && actual_error) ++score.false_negatives;
  if (!predicted_error && !actual_error) ++score.true_negatives;
  if (predicted.generation.warning == actual.generation_warning &&
      predicted.generation.error == actual.generation_error &&
      predicted.compilation.warning == actual.compilation_warning &&
      predicted.compilation.error == actual.compilation_error) {
    ++score.exact_matches;
  }
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kWarning:
      return "warning";
    default:
      return "error";
  }
}

bool outcome_from_string(std::string_view text, Outcome& out) {
  if (text == "ok") {
    out = Outcome::kOk;
  } else if (text == "warning") {
    out = Outcome::kWarning;
  } else if (text == "error") {
    out = Outcome::kError;
  } else {
    return false;
  }
  return true;
}

ShapeSignals collect_signals(const wsdl::Definitions& defs) {
  ShapeSignals signals;

  // The class names a generated types unit contains: every complexType plus
  // one enum wrapper per enumeration simpleType (base resolution space).
  std::set<std::string, std::less<>> class_names;
  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      if (!type.name.empty()) class_names.insert(type.name);
    }
    for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
      if (!simple.enumeration.empty()) {
        class_names.insert(simple.name);
        signals.has_enum = true;
      }
    }
  }

  for (const xsd::Schema& schema : defs.schemas) {
    for (const xsd::ComplexType& type : schema.complex_types) {
      signals.has_named_types = true;

      const std::vector<std::string> fields = class_field_names(type);
      if (has_duplicate(fields, /*fold_case=*/false)) signals.duplicate_members = true;
      if (has_duplicate(fields, /*fold_case=*/true)) signals.duplicate_members_folded = true;

      const bool throwable_name =
          ends_with(type.name, "Exception") || ends_with(type.name, "Error");
      for (const xsd::ElementDecl* element : type.elements()) {
        if (element->is_ref()) continue;
        if (throwable_name && element->name == "message") signals.throwable_wrapper = true;
        if (element->name == "gregorian") signals.gregorian_element = true;
      }

      if (!type.base.empty() && class_names.find(type.base.local_name()) == class_names.end()) {
        signals.unresolved_base = true;
      }
      if (type.any_count() >= 2) signals.double_wildcard = true;
      const std::size_t depth = type.nesting_depth();
      if (depth >= 3) signals.deep_nesting = true;
      if (depth >= 5) signals.very_deep_nesting = true;

      // anyType arrays anywhere in the model blank every generated
      // accessor body under the JScript backend.
      for (const xsd::ElementDecl* element : type.elements()) {
        if (!element->type.empty() && element->type.local_name() == "anyType" &&
            element->max_occurs == xsd::kUnbounded) {
          signals.anytype_unbounded = true;
        }
      }
    }
  }
  return signals;
}

const std::vector<ClientModel>& client_models() {
  using O = Outcome;
  static const std::vector<ClientModel> kModels = [] {
    std::vector<ClientModel> models;

    // Shared javac-compilation rules: artifact shapes every wsdl2java-family
    // tool produces and javac/csc genuinely reject.
    const Rule kDuplicateMember{Step::kCompilation, O::kError, "duplicate-member",
                                [](const Facts& f) { return f.signals.duplicate_members; }};
    const Rule kUnknownBase{Step::kCompilation, O::kError, "unknown-base",
                            [](const Facts& f) { return f.signals.unresolved_base; }};

    // --- Oracle Metro 2.3 (wsimport + javac) ---
    models.push_back(ClientModel{
        "Oracle Metro 2.3", true, false,
        {
            {Step::kGeneration, O::kError, "unresolved-type-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
            {Step::kGeneration, O::kError, "unresolved-attr-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_attr_ref; }},
            {Step::kGeneration, O::kError, "schema-element-ref",
             [](const Facts& f) { return f.features.schema_element_ref; }},
            {Step::kGeneration, O::kError, "xsd-attr-ref",
             [](const Facts& f) { return f.features.xsd_attr_ref; }},
            {Step::kGeneration, O::kError, "wildcard-only-content",
             [](const Facts& f) { return f.features.wildcard_only_content; }},
            {Step::kGeneration, O::kError, "zero-operations",
             [](const Facts& f) { return f.features.zero_operations; }},
            {Step::kGeneration, O::kError, "missing-target-namespace",
             [](const Facts& f) { return f.features.missing_target_namespace; }},
            {Step::kGeneration, O::kError, "dangling-message-ref",
             [](const Facts& f) { return f.features.dangling_message_reference; }},
            {Step::kGeneration, O::kError, "dangling-part-ref",
             [](const Facts& f) { return f.features.dangling_part_reference; }},
            {Step::kGeneration, O::kError, "duplicate-operations",
             [](const Facts& f) { return f.features.duplicate_operations; }},
            {Step::kGeneration, O::kError, "unresolvable-import",
             [](const Facts& f) { return f.features.unresolvable_wsdl_import; }},
            {Step::kGeneration, O::kWarning, "dual-type-declaration",
             [](const Facts& f) { return f.features.dual_type_declaration; }},
            kDuplicateMember,
            kUnknownBase,
        }});

    // --- Apache Axis1 1.4 (erratic: artifacts survive generation errors) ---
    models.push_back(ClientModel{
        "Apache Axis1 1.4", true, true,
        {
            {Step::kGeneration, O::kError, "unresolved-type-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
            {Step::kGeneration, O::kError, "unresolved-attr-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_attr_ref; }},
            {Step::kGeneration, O::kError, "schema-ref-nested",
             [](const Facts& f) { return f.features.schema_element_ref_nested; }},
            {Step::kCompilation, O::kWarning, "raw-collections",
             [](const Facts&) { return true; }},
            {Step::kCompilation, O::kError, "throwable-wrapper-defect",
             [](const Facts& f) { return f.signals.throwable_wrapper; }},
            kDuplicateMember,
            kUnknownBase,
        }});

    // --- Apache Axis2 1.6.2 (erratic) ---
    models.push_back(ClientModel{
        "Apache Axis2 1.6.2", true, true,
        {
            {Step::kGeneration, O::kError, "unresolved-type-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
            {Step::kGeneration, O::kError, "zero-operations",
             [](const Facts& f) { return f.features.zero_operations; }},
            {Step::kGeneration, O::kError, "dangling-part-ref",
             [](const Facts& f) { return f.features.dangling_part_reference; }},
            {Step::kGeneration, O::kError, "duplicate-operations",
             [](const Facts& f) { return f.features.duplicate_operations; }},
            {Step::kCompilation, O::kWarning, "raw-collections",
             [](const Facts&) { return true; }},
            {Step::kCompilation, O::kError, "local-suffix-defect",
             [](const Facts& f) { return f.signals.gregorian_element; }},
            {Step::kCompilation, O::kError, "double-wildcard-member",
             [](const Facts& f) { return f.signals.double_wildcard; }},
            {Step::kCompilation, O::kError, "enum-wrapper-defect",
             [](const Facts& f) { return f.signals.has_enum; }},
            kDuplicateMember,
            kUnknownBase,
        }});

    // --- Apache CXF 2.7.6 / JBossWS CXF 4.2.3 (same wsdl2java core; they
    // tolerate operation-less descriptions, unlike Metro) ---
    const std::vector<Rule> cxf_rules = {
        {Step::kGeneration, O::kError, "unresolved-type-ref",
         [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
        {Step::kGeneration, O::kError, "unresolved-attr-ref",
         [](const Facts& f) { return f.features.unresolved_foreign_attr_ref; }},
        {Step::kGeneration, O::kError, "schema-element-ref",
         [](const Facts& f) { return f.features.schema_element_ref; }},
        {Step::kGeneration, O::kError, "xsd-attr-ref",
         [](const Facts& f) { return f.features.xsd_attr_ref; }},
        {Step::kGeneration, O::kError, "wildcard-only-content",
         [](const Facts& f) { return f.features.wildcard_only_content; }},
        {Step::kGeneration, O::kError, "missing-target-namespace",
         [](const Facts& f) { return f.features.missing_target_namespace; }},
        {Step::kGeneration, O::kError, "dangling-message-ref",
         [](const Facts& f) { return f.features.dangling_message_reference; }},
        {Step::kGeneration, O::kError, "dangling-part-ref",
         [](const Facts& f) { return f.features.dangling_part_reference; }},
        {Step::kGeneration, O::kError, "duplicate-operations",
         [](const Facts& f) { return f.features.duplicate_operations; }},
        {Step::kGeneration, O::kError, "unresolvable-import",
         [](const Facts& f) { return f.features.unresolvable_wsdl_import; }},
        kDuplicateMember,
        kUnknownBase,
    };
    models.push_back(ClientModel{"Apache CXF 2.7.6", true, false, cxf_rules});
    models.push_back(ClientModel{"JBossWS CXF 4.2.3", true, false, cxf_rules});

    // --- .NET wsdl.exe family (C#, VB.NET, JScript) ---
    const std::vector<Rule> dotnet_common = {
        {Step::kGeneration, O::kError, "unresolved-type-ref",
         [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
        {Step::kGeneration, O::kError, "unresolved-attr-ref",
         [](const Facts& f) { return f.features.unresolved_foreign_attr_ref; }},
        {Step::kGeneration, O::kError, "unresolved-attr-group",
         [](const Facts& f) { return f.features.unresolved_attr_group; }},
        {Step::kGeneration, O::kError, "dual-type-declaration",
         [](const Facts& f) { return f.features.dual_type_declaration; }},
        {Step::kGeneration, O::kError, "zero-operations",
         [](const Facts& f) { return f.features.zero_operations; }},
        {Step::kGeneration, O::kError, "missing-target-namespace",
         [](const Facts& f) { return f.features.missing_target_namespace; }},
        {Step::kGeneration, O::kError, "dangling-message-ref",
         [](const Facts& f) { return f.features.dangling_message_reference; }},
        {Step::kGeneration, O::kError, "dangling-part-ref",
         [](const Facts& f) { return f.features.dangling_part_reference; }},
        {Step::kGeneration, O::kError, "duplicate-operations",
         [](const Facts& f) { return f.features.duplicate_operations; }},
        {Step::kGeneration, O::kError, "unresolvable-import",
         [](const Facts& f) { return f.features.unresolvable_wsdl_import; }},
        {Step::kGeneration, O::kWarning, "encoded-use",
         [](const Facts& f) { return f.features.encoded_use; }},
    };

    std::vector<Rule> csharp_rules = dotnet_common;
    csharp_rules.push_back(kDuplicateMember);
    csharp_rules.push_back(kUnknownBase);
    models.push_back(
        ClientModel{".NET Framework 4.0.30319.17929 (C#)", true, false, csharp_rules});

    std::vector<Rule> vb_rules = dotnet_common;
    vb_rules.push_back(Rule{Step::kCompilation, O::kError, "duplicate-member",
                            [](const Facts& f) { return f.signals.duplicate_members_folded; }});
    vb_rules.push_back(kUnknownBase);
    models.push_back(ClientModel{".NET Framework 4.0.30319.17929 (Visual Basic .NET)", true,
                                 false, vb_rules});

    std::vector<Rule> jscript_rules = dotnet_common;
    jscript_rules.push_back(Rule{Step::kGeneration, O::kWarning, "unknown-extension",
                                 [](const Facts& f) {
                                   return f.features.unknown_extension_elements;
                                 }});
    jscript_rules.push_back(Rule{Step::kGeneration, O::kError, "recursive-type-crash",
                                 [](const Facts& f) { return f.features.self_recursive_type; }});
    // The jsc crash on very deep content models masks every other
    // compilation diagnostic (handled in predict_service).
    jscript_rules.push_back(Rule{Step::kCompilation, O::kError, "deep-nesting-crash",
                                 [](const Facts& f) { return f.signals.very_deep_nesting; }});
    jscript_rules.push_back(Rule{Step::kCompilation, O::kError, "missing-body",
                                 [](const Facts& f) {
                                   return f.signals.deep_nesting ||
                                          (f.signals.anytype_unbounded &&
                                           f.signals.has_named_types);
                                 }});
    jscript_rules.push_back(kDuplicateMember);
    jscript_rules.push_back(kUnknownBase);
    models.push_back(
        ClientModel{".NET Framework 4.0.30319.17929 (JScript .NET)", true, false, jscript_rules});

    // --- gSOAP Toolkit 2.8.16 (wsdl2h + soapcpp2 + g++). The wsdl2h
    // attribute-group failure aborts before any warning is emitted. ---
    models.push_back(ClientModel{
        "gSOAP Toolkit 2.8.16", true, false,
        {
            {Step::kGeneration, O::kError, "unresolved-attr-group",
             [](const Facts& f) { return f.features.unresolved_attr_group; }},
            {Step::kGeneration, O::kError, "schema-ref-duplicated",
             [](const Facts& f) {
               return f.features.schema_element_ref_duplicated &&
                      !f.features.unresolved_attr_group;
             }},
            {Step::kGeneration, O::kWarning, "zero-operations",
             [](const Facts& f) {
               return f.features.zero_operations && !f.features.unresolved_attr_group;
             }},
            {Step::kGeneration, O::kWarning, "missing-target-namespace",
             [](const Facts& f) {
               return f.features.missing_target_namespace && !f.features.unresolved_attr_group;
             }},
            {Step::kGeneration, O::kWarning, "unresolvable-import",
             [](const Facts& f) {
               return f.features.unresolvable_wsdl_import && !f.features.unresolved_attr_group;
             }},
            kDuplicateMember,
            kUnknownBase,
        }});

    // --- Zend Framework 1.9 (dynamic PHP; notes never classify) ---
    models.push_back(ClientModel{
        "Zend Framework 1.9", false, false,
        {
            {Step::kGeneration, O::kWarning, "zero-operations",
             [](const Facts& f) { return f.features.zero_operations; }},
        }});

    // --- suds Python 0.4 (dynamic; warnings are emitted before the error
    // bail-out, so both flags can be set) ---
    models.push_back(ClientModel{
        "suds Python 0.4", false, false,
        {
            {Step::kGeneration, O::kError, "unresolved-type-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_type_ref; }},
            {Step::kGeneration, O::kError, "unresolved-attr-ref",
             [](const Facts& f) { return f.features.unresolved_foreign_attr_ref; }},
            {Step::kGeneration, O::kError, "schema-ref-array",
             [](const Facts& f) { return f.features.schema_element_ref_array; }},
            {Step::kGeneration, O::kError, "dangling-part-ref",
             [](const Facts& f) { return f.features.dangling_part_reference; }},
            {Step::kGeneration, O::kWarning, "zero-operations",
             [](const Facts& f) { return f.features.zero_operations; }},
            {Step::kGeneration, O::kWarning, "encoded-use",
             [](const Facts& f) { return f.features.encoded_use; }},
        }});

    return models;
  }();
  return kModels;
}

ServicePrediction predict_service(const frameworks::SharedDescription& description) {
  ServicePrediction out;
  Facts facts;
  facts.parsed = description.parsed_ok();
  if (facts.parsed) {
    out.fingerprint = fingerprint(description.definitions()).hex();
    facts.features = description.features();
    facts.signals = collect_signals(description.definitions());
  } else {
    // The raw served bytes are the only shape an unparseable description has.
    out.fingerprint = hex64(fnv1a64(description.wsdl_text()));
  }

  for (const ClientModel& model : client_models()) {
    ClientPrediction prediction;
    prediction.client = model.client;
    prediction.compiled = model.compiled;
    if (!facts.parsed) {
      prediction.generation.error = true;
      prediction.generation.mechanisms = {"parse-failure"};
      prediction.artifacts = false;
      out.clients.push_back(std::move(prediction));
      continue;
    }
    apply_rules(model, Step::kGeneration, facts, prediction.generation);
    prediction.artifacts = model.artifacts_on_error || !prediction.generation.error;
    if (prediction.compiled && prediction.artifacts) {
      apply_rules(model, Step::kCompilation, facts, prediction.compilation);
      const auto& mechanisms = prediction.compilation.mechanisms;
      if (std::find(mechanisms.begin(), mechanisms.end(), "deep-nesting-crash") !=
          mechanisms.end()) {
        // The compiler aborts the whole compilation: nothing else surfaces.
        prediction.compilation = StepPrediction{false, true, {"deep-nesting-crash"}};
      }
    }
    finish_step(prediction.generation);
    finish_step(prediction.compilation);
    out.clients.push_back(std::move(prediction));
  }
  return out;
}

double ClientScore::precision() const {
  const std::size_t flagged = true_positives + false_positives;
  return flagged == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(flagged);
}

double ClientScore::recall() const {
  const std::size_t errored = true_positives + false_negatives;
  return errored == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(errored);
}

double ClientScore::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string PredictReport::summary() const {
  const std::size_t failing = static_cast<std::size_t>(std::count_if(
      services.begin(), services.end(), [](const ServicePredictionRecord& record) {
        return std::any_of(record.prediction.clients.begin(), record.prediction.clients.end(),
                           [](const ClientPrediction& c) { return c.any_error(); });
      }));
  return std::to_string(services.size()) + " services on " + std::to_string(servers) +
         " servers: " + std::to_string(failing) + " predicted to fail somewhere";
}

std::vector<LintJob> build_predict_corpus(const PredictOptions& options, PredictReport& report,
                                          obs::SpanId parent_span) {
  // Preparation: the same corpus the study deploys (§III.A).
  obs::Span deploy_span(options.tracer, "pass:deploy", parent_span);
  obs::ScopedTimer deploy_timer = obs::timer(options.metrics, "predict.phase.deploy_us");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(options.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(options.dotnet_spec);
  const std::vector<frameworks::ServiceSpec> java_services =
      frameworks::make_services(java_catalog, options.shape);
  const std::vector<frameworks::ServiceSpec> dotnet_services =
      frameworks::make_services(dotnet_catalog, options.shape);
  const auto servers = frameworks::make_servers();
  report.servers = servers.size();

  std::vector<LintJob> jobs;
  for (const auto& server : servers) {
    const bool is_dotnet = server->language() == "C#";
    const std::vector<frameworks::ServiceSpec>& services =
        is_dotnet ? dotnet_services : java_services;
    for (const frameworks::ServiceSpec& spec : services) {
      if (!server->can_deploy(*spec.type)) {
        ++report.deploy_refusals;
        continue;
      }
      Result<frameworks::DeployedService> deployed = server->deploy(spec);
      if (!deployed.ok()) {
        ++report.deploy_refusals;
        continue;
      }
      LintJob job;
      job.server = server->name();
      job.service = spec.service_name();
      job.type_name = spec.type->name;
      job.uri = job.server + "/" + job.service + ".wsdl";
      job.wsdl_text = std::move(deployed.value().wsdl_text);
      job.zero_operations = deployed.value().wsdl.operation_count() == 0;
      jobs.push_back(std::move(job));
    }
  }
  obs::add(options.metrics, "predict.services_total", jobs.size());
  obs::add(options.metrics, "predict.deploy_refusals", report.deploy_refusals);
  deploy_span.annotate("services", jobs.size());
  deploy_span.annotate("refused", report.deploy_refusals);
  deploy_span.end();
  deploy_timer.stop();
  return jobs;
}

ServicePredictionRecord predict_service_job(const LintJob& job) {
  ServicePredictionRecord record;
  record.server = job.server;
  record.service = job.service;
  record.type_name = job.type_name;
  record.uri = job.uri;
  const frameworks::SharedDescription description =
      frameworks::SharedDescription::from_text(job.wsdl_text);
  if (description.parsed_ok()) {
    std::set<std::string> operations;
    for (const wsdl::PortType& port_type : description.definitions().port_types) {
      for (const wsdl::Operation& operation : port_type.operations) {
        operations.insert(operation.name);
      }
    }
    record.operations.assign(operations.begin(), operations.end());
  }
  record.prediction = predict_service(description);
  return record;
}

PredictReport predict_corpus(const PredictOptions& options) {
  PredictReport report;

  obs::Span run_span(options.tracer, "predict-corpus");
  const std::vector<LintJob> jobs = build_predict_corpus(options, report, run_span.id());

  // Parallel prediction: fixed slices merged in index order, so the report
  // is identical for any --jobs value.
  obs::Span predict_span(options.tracer, "pass:predict", run_span);
  obs::ScopedTimer predict_timer = obs::timer(options.metrics, "predict.phase.predict_us");
  const auto run_slice = [&](std::size_t begin, std::size_t end) {
    std::vector<ServicePredictionRecord> slice;
    slice.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      obs::ScopedTimer one = obs::timer(options.metrics, "predict.step.predict_us");
      slice.push_back(predict_service_job(jobs[i]));
    }
    return slice;
  };
  PoolStats pool_stats;
  std::vector<std::vector<ServicePredictionRecord>> slices =
      parallel_slices(jobs.size(), options.jobs, run_slice, &pool_stats);
  if (options.metrics != nullptr) {
    options.metrics->gauge("predict.pool.workers")
        .set_max(static_cast<std::int64_t>(pool_stats.workers));
    options.metrics->gauge("predict.pool.max_queue_depth")
        .set_max(static_cast<std::int64_t>(pool_stats.max_queue_depth));
  }
  report.services.reserve(jobs.size());
  for (std::vector<ServicePredictionRecord>& slice : slices) {
    for (ServicePredictionRecord& record : slice) {
      report.services.push_back(std::move(record));
    }
  }
  predict_span.annotate("predicted", report.services.size());
  predict_span.end();
  predict_timer.stop();

  finalize_predict_report(report, options, run_span.id());
  return report;
}

void finalize_predict_report(PredictReport& report, const PredictOptions& options,
                             obs::SpanId parent_span) {
  const std::vector<ClientModel>& models = client_models();
  report.clients.clear();
  report.overall = ClientScore{};
  report.overall.client = "overall";
  for (const ClientModel& model : models) {
    ClientScore score;
    score.client = model.client;
    report.clients.push_back(std::move(score));
  }
  if (!options.join_study) return;

  // Ground truth: replay the dynamic study over the same corpus and keep
  // each test's four step flags.
  obs::Span join_span(options.tracer, "pass:join", parent_span);
  obs::ScopedTimer join_timer = obs::timer(options.metrics, "predict.phase.join_us");
  report.joined = true;
  std::map<std::string, interop::TestRecord, std::less<>> actual;
  interop::StudyConfig study;
  study.java_spec = options.java_spec;
  study.dotnet_spec = options.dotnet_spec;
  study.shape = options.shape;
  study.threads = options.study_threads;
  study.observer = [&actual](const interop::TestRecord& record) {
    actual[record.server + "|" + record.service + "|" + record.client] = record;
  };
  (void)interop::run_study(study);

  for (const ServicePredictionRecord& service : report.services) {
    for (std::size_t i = 0; i < service.prediction.clients.size() && i < models.size(); ++i) {
      const ClientPrediction& prediction = service.prediction.clients[i];
      const auto it =
          actual.find(service.server + "|" + service.service + "|" + prediction.client);
      if (it == actual.end()) continue;
      tally(report.clients[i], prediction, it->second);
      tally(report.overall, prediction, it->second);
    }
  }
  obs::add(options.metrics, "predict.join.tests", report.overall.tests);
  join_span.annotate("tests", report.overall.tests);
  join_span.end();
  join_timer.stop();
}

std::string record_json(const ServicePredictionRecord& record) {
  json::ArrayWriter operations;
  for (const std::string& operation : record.operations) operations.item(operation);
  json::ArrayWriter clients;
  for (const ClientPrediction& client : record.prediction.clients) {
    clients.raw_item(json::ObjectWriter()
                         .field("client", client.client)
                         .field("compiled", client.compiled)
                         .field("artifacts", client.artifacts)
                         .raw_field("generation", step_json(client.generation))
                         .raw_field("compilation", step_json(client.compilation))
                         .str());
  }
  return json::ObjectWriter()
      .field("server", record.server)
      .field("service", record.service)
      .field("type", record.type_name)
      .field("uri", record.uri)
      .field("fingerprint", record.prediction.fingerprint)
      .raw_field("operations", operations.str())
      .raw_field("clients", clients.str())
      .str();
}

Result<ServicePredictionRecord> record_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const json::Value& value = parsed.value();
  const auto string_field = [&value](const char* key) -> const std::string* {
    const json::Value* field = value.find(key);
    return field != nullptr && field->is_string() ? &field->as_string() : nullptr;
  };
  const std::string* server = string_field("server");
  const std::string* service = string_field("service");
  const std::string* type = string_field("type");
  const std::string* uri = string_field("uri");
  const std::string* fp = string_field("fingerprint");
  const json::Value* operations = value.find("operations");
  const json::Value* clients = value.find("clients");
  if (server == nullptr || service == nullptr || type == nullptr || uri == nullptr ||
      fp == nullptr || operations == nullptr || !operations->is_array() || clients == nullptr ||
      !clients->is_array()) {
    return Error{"predict.bad-record", "prediction record is missing required fields"};
  }
  ServicePredictionRecord record;
  record.server = *server;
  record.service = *service;
  record.type_name = *type;
  record.uri = *uri;
  record.prediction.fingerprint = *fp;
  for (const json::Value& operation : operations->items()) {
    if (!operation.is_string()) {
      return Error{"predict.bad-record", "operation name is not a string"};
    }
    record.operations.push_back(operation.as_string());
  }
  for (const json::Value& client : clients->items()) {
    const json::Value* name = client.find("client");
    const json::Value* compiled = client.find("compiled");
    const json::Value* artifacts = client.find("artifacts");
    const json::Value* generation = client.find("generation");
    const json::Value* compilation = client.find("compilation");
    if (name == nullptr || !name->is_string() || compiled == nullptr || !compiled->is_bool() ||
        artifacts == nullptr || !artifacts->is_bool() || generation == nullptr ||
        compilation == nullptr) {
      return Error{"predict.bad-record", "client prediction is missing required fields"};
    }
    ClientPrediction prediction;
    prediction.client = name->as_string();
    prediction.compiled = compiled->as_bool();
    prediction.artifacts = artifacts->as_bool();
    Result<StepPrediction> gen = step_from_json(*generation);
    if (!gen.ok()) return gen.error();
    prediction.generation = std::move(gen.value());
    Result<StepPrediction> comp = step_from_json(*compilation);
    if (!comp.ok()) return comp.error();
    prediction.compilation = std::move(comp.value());
    record.prediction.clients.push_back(std::move(prediction));
  }
  return record;
}

std::string format_predict_report(const PredictReport& report) {
  std::string out = report.summary() + "\n";
  if (report.deploy_refusals != 0) {
    out += "  (" + std::to_string(report.deploy_refusals) + " deploy refusals excluded)\n";
  }
  if (!report.joined) {
    // Unjoined: per-client predicted classification counts.
    const std::vector<ClientModel>& models = client_models();
    for (std::size_t i = 0; i < models.size(); ++i) {
      std::size_t errors = 0;
      std::size_t warnings = 0;
      for (const ServicePredictionRecord& service : report.services) {
        if (i >= service.prediction.clients.size()) continue;
        const ClientPrediction& prediction = service.prediction.clients[i];
        if (prediction.any_error()) {
          ++errors;
        } else if (prediction.generation.warning || prediction.compilation.warning) {
          ++warnings;
        }
      }
      out += "  " + std::string(models[i].client) + ": " + std::to_string(errors) +
             " predicted errors, " + std::to_string(warnings) + " predicted warnings\n";
    }
    return out;
  }
  const auto score_line = [](const ClientScore& score) {
    return score.client + ": precision " + std::to_string(percent(score.precision())) +
           "%, recall " + std::to_string(percent(score.recall())) + "%, F1 " +
           std::to_string(percent(score.f1())) + "% | exact " +
           std::to_string(score.exact_matches) + "/" + std::to_string(score.tests);
  };
  for (const ClientScore& score : report.clients) out += "  " + score_line(score) + "\n";
  out += "  " + score_line(report.overall) + "\n";
  return out;
}

std::string format_service_prediction(const ServicePrediction& prediction) {
  std::string out = "fingerprint " + prediction.fingerprint + "\n";
  for (const ClientPrediction& client : prediction.clients) {
    std::string line = "  " + client.client + ": generation " +
                       outcome_word(client.generation.outcome());
    if (!client.compiled) {
      line += " (dynamic; no compilation step)";
    } else if (!client.artifacts) {
      line += ", no artifacts";
    } else {
      line += ", compilation " + std::string(outcome_word(client.compilation.outcome()));
    }
    std::vector<std::string> mechanisms = client.generation.mechanisms;
    mechanisms.insert(mechanisms.end(), client.compilation.mechanisms.begin(),
                      client.compilation.mechanisms.end());
    std::sort(mechanisms.begin(), mechanisms.end());
    mechanisms.erase(std::unique(mechanisms.begin(), mechanisms.end()), mechanisms.end());
    if (!mechanisms.empty()) {
      line += " [";
      for (std::size_t i = 0; i < mechanisms.size(); ++i) {
        if (i != 0) line += ", ";
        line += mechanisms[i];
      }
      line += "]";
    }
    out += line + "\n";
  }
  return out;
}

}  // namespace wsx::analysis::predict
