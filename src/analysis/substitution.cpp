#include "analysis/substitution.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "common/strings.hpp"

namespace wsx::analysis::predict {
namespace {

Outcome worst_outcome(const ClientPrediction& prediction) {
  if (prediction.any_error()) return Outcome::kError;
  if (prediction.generation.warning || prediction.compilation.warning) return Outcome::kWarning;
  return Outcome::kOk;
}

/// Case-insensitive substring match (ASCII), for client-name lookups.
bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

/// Jaccard similarity of two sorted operation-name sets.
double operations_similarity(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  std::size_t common = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t unioned = a.size() + b.size() - common;
  return unioned == 0 ? 1.0 : static_cast<double>(common) / static_cast<double>(unioned);
}

}  // namespace

SubstitutionIndex build_index(const PredictReport& report) {
  SubstitutionIndex index;
  for (const ClientModel& model : client_models()) index.clients.emplace_back(model.client);
  index.entries.reserve(report.services.size());
  for (const ServicePredictionRecord& record : report.services) {
    IndexEntry entry;
    entry.server = record.server;
    entry.service = record.service;
    entry.type_name = record.type_name;
    entry.fingerprint = record.prediction.fingerprint;
    entry.operations = record.operations;
    entry.verdicts.reserve(record.prediction.clients.size());
    for (const ClientPrediction& prediction : record.prediction.clients) {
      entry.verdicts.push_back(worst_outcome(prediction));
    }
    index.entries.push_back(std::move(entry));
  }
  return index;
}

std::string index_json(const SubstitutionIndex& index) {
  json::ArrayWriter clients;
  for (const std::string& client : index.clients) clients.item(client);
  json::ArrayWriter entries;
  for (const IndexEntry& entry : index.entries) {
    json::ArrayWriter operations;
    for (const std::string& operation : entry.operations) operations.item(operation);
    json::ArrayWriter verdicts;
    for (const Outcome verdict : entry.verdicts) verdicts.item(to_string(verdict));
    entries.raw_item(json::ObjectWriter()
                         .field("server", entry.server)
                         .field("service", entry.service)
                         .field("type", entry.type_name)
                         .field("fingerprint", entry.fingerprint)
                         .raw_field("operations", operations.str())
                         .raw_field("verdicts", verdicts.str())
                         .str());
  }
  return json::ObjectWriter()
      .field("version", kIndexVersion)
      .raw_field("clients", clients.str())
      .raw_field("entries", entries.str())
      .str();
}

Result<SubstitutionIndex> index_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const json::Value& value = parsed.value();
  const json::Value* version = value.find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<std::size_t>(version->as_number()) != kIndexVersion) {
    return Error{"predict.bad-index", "unsupported substitution index version"};
  }
  const json::Value* clients = value.find("clients");
  const json::Value* entries = value.find("entries");
  if (clients == nullptr || !clients->is_array() || entries == nullptr || !entries->is_array()) {
    return Error{"predict.bad-index", "index document is missing clients/entries"};
  }
  SubstitutionIndex index;
  for (const json::Value& client : clients->items()) {
    if (!client.is_string()) return Error{"predict.bad-index", "client name is not a string"};
    index.clients.push_back(client.as_string());
  }
  for (const json::Value& item : entries->items()) {
    const json::Value* server = item.find("server");
    const json::Value* service = item.find("service");
    const json::Value* type = item.find("type");
    const json::Value* fp = item.find("fingerprint");
    const json::Value* operations = item.find("operations");
    const json::Value* verdicts = item.find("verdicts");
    if (server == nullptr || !server->is_string() || service == nullptr ||
        !service->is_string() || type == nullptr || !type->is_string() || fp == nullptr ||
        !fp->is_string() || operations == nullptr || !operations->is_array() ||
        verdicts == nullptr || !verdicts->is_array()) {
      return Error{"predict.bad-index", "index entry is missing required fields"};
    }
    IndexEntry entry;
    entry.server = server->as_string();
    entry.service = service->as_string();
    entry.type_name = type->as_string();
    entry.fingerprint = fp->as_string();
    for (const json::Value& operation : operations->items()) {
      if (!operation.is_string()) {
        return Error{"predict.bad-index", "operation name is not a string"};
      }
      entry.operations.push_back(operation.as_string());
    }
    if (verdicts->items().size() != index.clients.size()) {
      return Error{"predict.bad-index", "entry verdict count does not match client count"};
    }
    for (const json::Value& verdict : verdicts->items()) {
      Outcome outcome = Outcome::kOk;
      if (!verdict.is_string() || !outcome_from_string(verdict.as_string(), outcome)) {
        return Error{"predict.bad-index", "unknown verdict value"};
      }
      entry.verdicts.push_back(outcome);
    }
    index.entries.push_back(std::move(entry));
  }
  return index;
}

Result<std::vector<Candidate>> substitute(const SubstitutionIndex& index,
                                          const SubstituteQuery& query) {
  // Client: exact name first, then case-insensitive substring.
  std::size_t client_index = index.clients.size();
  for (std::size_t i = 0; i < index.clients.size(); ++i) {
    if (index.clients[i] == query.client) {
      client_index = i;
      break;
    }
  }
  if (client_index == index.clients.size()) {
    for (std::size_t i = 0; i < index.clients.size(); ++i) {
      if (icontains(index.clients[i], query.client)) {
        client_index = i;
        break;
      }
    }
  }
  if (client_index == index.clients.size()) {
    return Error{"predict.unknown-client", "no indexed client matches '" + query.client + "'"};
  }

  // Target: "Server/Service" or bare service name, first match in corpus
  // order.
  const IndexEntry* target = nullptr;
  const std::size_t slash = query.service.find('/');
  for (const IndexEntry& entry : index.entries) {
    const bool matches = slash == std::string::npos
                             ? entry.service == query.service
                             : entry.server == query.service.substr(0, slash) &&
                                   entry.service == query.service.substr(slash + 1);
    if (matches) {
      target = &entry;
      break;
    }
  }
  if (target == nullptr) {
    return Error{"predict.unknown-service", "no indexed service matches '" + query.service + "'"};
  }

  std::vector<Candidate> candidates;
  for (const IndexEntry& entry : index.entries) {
    if (&entry == target) continue;
    if (client_index >= entry.verdicts.size() ||
        entry.verdicts[client_index] != Outcome::kOk) {
      continue;
    }
    Candidate candidate;
    candidate.server = entry.server;
    candidate.service = entry.service;
    candidate.fingerprint = entry.fingerprint;
    candidate.fingerprint_match = entry.fingerprint == target->fingerprint;
    candidate.score = operations_similarity(entry.operations, target->operations) +
                      (candidate.fingerprint_match ? 0.25 : 0.0);
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.server != b.server) return a.server < b.server;
    return a.service < b.service;
  });
  if (candidates.size() > query.top) candidates.resize(query.top);
  return candidates;
}

std::string format_candidates(const SubstituteQuery& query,
                              const std::vector<Candidate>& candidates) {
  std::string out = "substitutes for " + query.service + " (client: " + query.client + ")\n";
  if (candidates.empty()) {
    out += "  (no clean candidate in the index)\n";
    return out;
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& candidate = candidates[i];
    // Two-decimal score, locale-free.
    const int hundredths = static_cast<int>(candidate.score * 100.0 + 0.5);
    out += "  " + std::to_string(i + 1) + ". " + candidate.server + "/" + candidate.service +
           " score " + std::to_string(hundredths / 100) + "." +
           (hundredths % 100 < 10 ? "0" : "") + std::to_string(hundredths % 100);
    if (candidate.fingerprint_match) out += " (identical shape)";
    out += "\n";
  }
  return out;
}

}  // namespace wsx::analysis::predict
