#include "analysis/baseline.hpp"

#include <algorithm>
#include <cstdint>

namespace wsx::analysis {
namespace {

/// FNV-1a 64-bit — stable across platforms, no dependency, and collisions
/// across the handful of findings per document are vanishingly unlikely.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string to_hex(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

std::string Baseline::fingerprint(const Finding& finding) {
  return to_hex(fnv1a(finding.rule_id + "|" + finding.subject + "|" + finding.message));
}

std::string Baseline::entry_key(const Finding& finding) {
  return finding.rule_id + "\t" + finding.location.uri + "\t" + fingerprint(finding);
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline baseline;
  for (const Finding& finding : findings) baseline.entries_.insert(entry_key(finding));
  return baseline;
}

Result<Baseline> Baseline::parse(std::string_view text) {
  Baseline baseline;
  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t first_tab = line.find('\t');
    const std::size_t second_tab =
        first_tab == std::string_view::npos ? std::string_view::npos
                                            : line.find('\t', first_tab + 1);
    if (first_tab == std::string_view::npos || second_tab == std::string_view::npos ||
        line.find('\t', second_tab + 1) != std::string_view::npos) {
      return Error{"baseline.malformed-line",
                   "line " + std::to_string(line_number) +
                       ": expected rule_id<TAB>uri<TAB>fingerprint"};
    }
    baseline.entries_.insert(std::string(line));
  }
  return baseline;
}

std::string Baseline::str() const {
  std::string out = "# wsinterop lint baseline: rule_id<TAB>uri<TAB>fingerprint\n";
  for (const std::string& entry : entries_) {  // std::set iterates sorted
    out += entry;
    out += '\n';
  }
  return out;
}

bool Baseline::suppresses(const Finding& finding) const {
  return entries_.count(entry_key(finding)) != 0;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings, const Baseline& baseline) {
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&baseline](const Finding& finding) {
                                  return baseline.suppresses(finding);
                                }),
                 findings.end());
  return findings;
}

}  // namespace wsx::analysis
