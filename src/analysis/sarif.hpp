// sarif.hpp — SARIF 2.1.0 serialization of analysis findings, the exchange
// format CI systems and code-scanning UIs ingest.
#pragma once

#include <string>
#include <vector>

#include "analysis/registry.hpp"

namespace wsx::analysis {

/// Serializes `findings` as one SARIF 2.1.0 log with a single run. The
/// tool.driver.rules array lists every rule of `registry` in registration
/// order; results reference rules by ruleId and ruleIndex. Source locations
/// become physicalLocation artifactLocation/region entries (the region is
/// omitted when the finding has no line information).
std::string to_sarif(const std::vector<Finding>& findings,
                     const RuleRegistry& registry = RuleRegistry::builtin());

/// SARIF level for a diagnostic severity ("note" / "warning" / "error").
const char* sarif_level(Severity severity);

}  // namespace wsx::analysis
