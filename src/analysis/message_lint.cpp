#include "analysis/message_lint.hpp"

#include <memory>

#include "soap/envelope.hpp"
#include "soap/version.hpp"

namespace wsx::analysis {
namespace {

/// A rule of the message pack. The document-pack entry point (`run` over an
/// AnalysisInput) is a no-op — these rules only fire through lint_message —
/// but deriving from Rule keeps them registrable, SARIF-listable and
/// baseline-suppressible exactly like the WSX10xx pack.
class MessageRule : public Rule {
 public:
  explicit MessageRule(RuleInfo info) : info_(std::move(info)) {}

  const RuleInfo& info() const override { return info_; }
  void run(const AnalysisInput&, Reporter&) const override {}

  /// The message-pack pass: the envelope parsed from `input.body`, plus the
  /// coherence summary both computed once by the driver.
  virtual void lint(const MessageInput& input, const soap::Envelope& envelope,
                    const soap::VersionCoherence& coherence, Reporter& out) const = 0;

 private:
  RuleInfo info_;
};

/// WSX1101 — a SOAP 1.1 envelope dressed in 1.2-era extension headers
/// (wsa/wsse/xop). Relaxed receivers skip the non-mustUnderstand ones, but
/// strict receivers (WCF AddressingVersion.None, the generation-only
/// stacks) fault the message outright.
class VersionIncoherentHeaders : public MessageRule {
 public:
  VersionIncoherentHeaders()
      : MessageRule({"WSX1101", "SOAP 1.1 envelope carries SOAP 1.2-era extension headers",
                     Category::kPortability, Severity::kWarning, "docs/VERSIONS.md"}) {}

  void lint(const MessageInput&, const soap::Envelope& envelope,
            const soap::VersionCoherence& coherence, Reporter& out) const override {
    if (envelope.version() != soap::SoapVersion::k11 || !coherence.has_12_era_headers) {
      return;
    }
    for (const xml::Element& entry : envelope.header_entries()) {
      if (!soap::is_12_era_header(entry)) continue;
      out.report("SOAP 1.1 envelope carries the 1.2-era extension header <" + entry.name() +
                     ">; strict receivers reject it with a VersionMismatch fault",
                 entry.name(), {},
                 "strip the header, or confirm every receiver's version policy is "
                 "relaxed/shaded");
    }
  }
};

/// WSX1102 — the transport and the envelope disagree about the version:
/// a 1.1 body under application/soap+xml or a 1.2 body under text/xml.
/// Strict receivers answer the former with HTTP 415 before parsing a byte.
class ContentTypeVersionSkew : public MessageRule {
 public:
  ContentTypeVersionSkew()
      : MessageRule({"WSX1102", "Content-Type disagrees with the envelope namespace version",
                     Category::kPortability, Severity::kError, "docs/VERSIONS.md"}) {}

  void lint(const MessageInput& input, const soap::Envelope& envelope,
            const soap::VersionCoherence&, Reporter& out) const override {
    if (input.content_type.empty()) return;
    if (soap::content_type_matches(input.content_type, envelope.version())) return;
    out.report("Content-Type \"" + input.content_type + "\" does not match the " +
                   soap::to_string(envelope.version()) + " envelope namespace",
               input.content_type, {},
               std::string("send \"") +
                   std::string(soap::content_type_for(envelope.version())) +
                   "\" for this envelope version");
  }
};

/// Mirrors the receive side's mustUnderstand sniff (soap/version.cpp):
/// match the attribute by local name, accept "1" and "true".
bool marked_must_understand(const xml::Element& entry) {
  for (const xml::Attribute& attribute : entry.attributes()) {
    const std::size_t colon = attribute.name.find(':');
    const std::string_view local = colon == std::string::npos
                                       ? std::string_view(attribute.name)
                                       : std::string_view(attribute.name).substr(colon + 1);
    if (local == "mustUnderstand" && (attribute.value == "1" || attribute.value == "true")) {
      return true;
    }
  }
  return false;
}

/// WSX1103 — a mustUnderstand extension header on a SOAP 1.1 message. Only
/// shaded-CXF-style receivers process the wsse/wsa modules; everyone else
/// is *required* by the processing model to fault, so this is a hard error
/// wherever the receiver set is not uniformly shaded. An ununderstood
/// mustUnderstand header in an unknown namespace faults everywhere.
class MustUnderstandExtension : public MessageRule {
 public:
  MustUnderstandExtension()
      : MessageRule({"WSX1103", "mustUnderstand extension header on a SOAP 1.1 message",
                     Category::kPortability, Severity::kError, "docs/VERSIONS.md"}) {}

  void lint(const MessageInput&, const soap::Envelope& envelope,
            const soap::VersionCoherence& coherence, Reporter& out) const override {
    if (envelope.version() != soap::SoapVersion::k11) return;
    if (!coherence.has_12_era_mu_headers && !coherence.has_unknown_mu_headers) return;
    for (const xml::Element& entry : envelope.header_entries()) {
      if (!marked_must_understand(entry)) continue;
      if (soap::is_12_era_header(entry)) {
        out.report("mustUnderstand header <" + entry.name() +
                       "> is only processed by shaded receivers; relaxed and strict "
                       "receivers must fault it",
                   entry.name(), {},
                   "drop mustUnderstand=\"1\" or restrict the receiver set to shaded "
                   "deployments");
      } else {
        out.report("mustUnderstand header <" + entry.name() +
                       "> is in a namespace no receiver in the roster understands; every "
                       "version policy faults it",
                   entry.name(), {}, "remove the header");
      }
    }
  }
};

}  // namespace

const RuleRegistry& message_lint_registry() {
  static const RuleRegistry* const registry = [] {
    auto* built = new RuleRegistry();
    built->add(std::make_unique<VersionIncoherentHeaders>());
    built->add(std::make_unique<ContentTypeVersionSkew>());
    built->add(std::make_unique<MustUnderstandExtension>());
    return built;
  }();
  return *registry;
}

std::vector<Finding> lint_message(const MessageInput& input, const RuleConfig& config) {
  std::vector<Finding> findings;
  Result<soap::Envelope> envelope = soap::parse(input.body);
  if (!envelope.ok()) return findings;
  const soap::VersionCoherence coherence = soap::inspect_coherence(*envelope);
  for (const auto& rule : message_lint_registry().rules()) {
    const auto* message_rule = static_cast<const MessageRule*>(rule.get());
    if (!config.enabled(message_rule->info())) continue;
    Reporter reporter(message_rule->info(), config.severity_for(message_rule->info()),
                      input.uri, findings);
    message_rule->lint(input, *envelope, coherence, reporter);
  }
  return findings;
}

}  // namespace wsx::analysis
