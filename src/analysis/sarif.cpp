#include "analysis/sarif.hpp"

#include <map>

#include "common/json.hpp"

namespace wsx::analysis {
namespace {

constexpr const char* kSarifSchema =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
    "sarif-schema-2.1.0.json";

std::string rule_entry(const RuleInfo& info) {
  json::ObjectWriter text;
  text.field("text", info.title);
  json::ObjectWriter config;
  config.field("level", sarif_level(info.default_severity));
  json::ObjectWriter properties;
  properties.field("category", to_string(info.category));
  if (!info.paper_ref.empty()) properties.field("paperRef", info.paper_ref);
  json::ObjectWriter rule;
  rule.field("id", info.id);
  rule.raw_field("shortDescription", text.str());
  rule.raw_field("defaultConfiguration", config.str());
  rule.raw_field("properties", properties.str());
  return rule.str();
}

std::string location_entry(const Finding& finding) {
  json::ObjectWriter artifact;
  artifact.field("uri", finding.location.uri);
  json::ObjectWriter physical;
  physical.raw_field("artifactLocation", artifact.str());
  if (finding.location.known()) {
    json::ObjectWriter region;
    region.field("startLine", finding.location.line);
    region.field("startColumn", finding.location.column);
    physical.raw_field("region", region.str());
  }
  json::ObjectWriter location;
  location.raw_field("physicalLocation", physical.str());
  if (!finding.subject.empty()) {
    json::ObjectWriter message;
    message.field("text", finding.subject);
    json::ObjectWriter logical;
    logical.field("name", finding.subject);
    json::ArrayWriter logical_locations;
    logical_locations.raw_item(logical.str());
    location.raw_field("logicalLocations", logical_locations.str());
  }
  return location.str();
}

std::string result_entry(const Finding& finding, const std::map<std::string, std::size_t>& index) {
  json::ObjectWriter message;
  std::string text = finding.message;
  if (!finding.fixit.empty()) text += " (fix: " + finding.fixit + ")";
  message.field("text", text);
  json::ObjectWriter result;
  result.field("ruleId", finding.rule_id);
  const auto it = index.find(finding.rule_id);
  if (it != index.end()) result.field("ruleIndex", it->second);
  result.field("level", sarif_level(finding.severity));
  result.raw_field("message", message.str());
  json::ArrayWriter locations;
  locations.raw_item(location_entry(finding));
  result.raw_field("locations", locations.str());
  return result.str();
}

}  // namespace

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
    case Severity::kCrash:
      return "error";
  }
  return "none";
}

std::string to_sarif(const std::vector<Finding>& findings, const RuleRegistry& registry) {
  json::ArrayWriter rules;
  std::map<std::string, std::size_t> rule_index;
  for (const auto& rule : registry.rules()) {
    rule_index.emplace(rule->info().id, rule_index.size());
    rules.raw_item(rule_entry(rule->info()));
  }

  json::ObjectWriter driver;
  driver.field("name", "wsinterop-lint");
  driver.field("informationUri", "https://example.invalid/wsx");
  driver.field("version", "0.1.0");
  driver.raw_field("rules", rules.str());
  json::ObjectWriter tool;
  tool.raw_field("driver", driver.str());

  json::ArrayWriter results;
  for (const Finding& finding : findings) {
    results.raw_item(result_entry(finding, rule_index));
  }

  json::ObjectWriter run;
  run.raw_field("tool", tool.str());
  run.raw_field("results", results.str());
  json::ArrayWriter runs;
  runs.raw_item(run.str());

  json::ObjectWriter log;
  log.field("$schema", kSarifSchema);
  log.field("version", "2.1.0");
  log.raw_field("runs", runs.str());
  return log.str();
}

}  // namespace wsx::analysis
