// substitution.hpp — the corpus-wide substitution index.
//
// Maps shape fingerprints → services → predicted per-client verdicts, so
// "which service can replace Y for client X" is an index lookup instead of
// a corpus rescan (arXiv:1501.05983's matching-as-index idea applied to
// the failure matrix). Built from a PredictReport, serialized as a single
// versioned JSON document, reloadable by `wsinterop substitute`.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/predict.hpp"
#include "common/result.hpp"

namespace wsx::analysis::predict {

/// One indexed deployed service.
struct IndexEntry {
  std::string server;
  std::string service;
  std::string type_name;
  std::string fingerprint;              ///< canonical shape fingerprint (hex)
  std::vector<std::string> operations;  ///< sorted unique operation names
  /// Worst predicted outcome per client (generation and compilation folded),
  /// parallel to SubstitutionIndex::clients.
  std::vector<Outcome> verdicts;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

struct SubstitutionIndex {
  std::vector<std::string> clients;  ///< frameworks::make_clients() order
  std::vector<IndexEntry> entries;   ///< deterministic corpus order

  friend bool operator==(const SubstitutionIndex&, const SubstitutionIndex&) = default;
};

/// Serialization format version (the "version" field of the JSON document).
inline constexpr std::size_t kIndexVersion = 1;

/// Folds a predicted corpus into the index.
SubstitutionIndex build_index(const PredictReport& report);

/// One JSON document (no trailing newline); round-trips through
/// index_from_json byte-identically.
std::string index_json(const SubstitutionIndex& index);
Result<SubstitutionIndex> index_from_json(std::string_view text);

struct SubstituteQuery {
  /// Client tool, matched exactly or as a case-insensitive substring
  /// ("gsoap" → "gSOAP Toolkit 2.8.16"; first registry-order match wins).
  std::string client;
  /// Target service: "Server/Service" or a bare service name (first entry
  /// in corpus order wins).
  std::string service;
  std::size_t top = 5;
};

/// One ranked replacement candidate.
struct Candidate {
  std::string server;
  std::string service;
  std::string fingerprint;
  double score = 0.0;            ///< operation Jaccard + fingerprint bonus
  bool fingerprint_match = false;  ///< same canonical shape as the target

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Ranks the services the client is predicted to consume cleanly (verdict
/// ok), by operation-set similarity to the target with a +0.25 bonus for an
/// identical shape fingerprint. Ties break on (server, service), so results
/// are deterministic. Errors: unknown client, unknown target service.
Result<std::vector<Candidate>> substitute(const SubstitutionIndex& index,
                                          const SubstituteQuery& query);

/// Human-readable ranking for the CLI.
std::string format_candidates(const SubstituteQuery& query,
                              const std::vector<Candidate>& candidates);

}  // namespace wsx::analysis::predict
