// registry.hpp — rule registration, per-run configuration, and the single
// document analysis entry point.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/rule.hpp"

namespace wsx::analysis {

/// Per-run rule selection and severity tuning.
struct RuleConfig {
  /// Rule ids that must not run.
  std::set<std::string, std::less<>> disabled;
  /// Rule id → severity, overriding the rule's default (e.g. the wsi
  /// adapter promotes WSX1001 to an error under Profile::require_operations).
  std::map<std::string, Severity, std::less<>> severity_overrides;
  /// When non-empty, only these rule ids run (the wsi adapter restricts the
  /// pack to the BP assertions).
  std::set<std::string, std::less<>> only;

  bool enabled(const RuleInfo& info) const;
  Severity severity_for(const RuleInfo& info) const;
};

/// An ordered collection of rules. Registration order is the canonical
/// reporting order (and the SARIF ruleIndex order).
class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(RuleRegistry&&) = default;
  RuleRegistry& operator=(RuleRegistry&&) = default;

  /// The built-in pack: the WS-I BP assertions (category kConformance)
  /// followed by the WSX lint rules. Constructed once, thread-safe to read.
  static const RuleRegistry& builtin();

  void add(std::unique_ptr<Rule> rule);
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const Rule* find(std::string_view id) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Findings of one document, in rule registration order then emission order.
struct AnalysisResult {
  std::vector<Finding> findings;

  std::size_t count(Severity severity) const;
  /// True when any finding is an error (or crash).
  bool has_errors() const;
};

/// Runs every enabled rule of `registry` against `input`.
AnalysisResult analyze(const AnalysisInput& input, const RuleConfig& config = {},
                       const RuleRegistry& registry = RuleRegistry::builtin());

/// Pretty text: one "uri:line:col: severity: [ID] message" line per finding
/// (plus an indented "fix:" line when the rule has a hint).
std::string format_findings(const std::vector<Finding>& findings);

/// One-line tally, e.g. "2 errors, 1 warning" or "clean".
std::string summarize(const std::vector<Finding>& findings);

/// Registration helpers for the built-in pack (split across rules_*.cpp).
void register_wsi_rules(RuleRegistry& registry);
void register_schema_rules(RuleRegistry& registry);
void register_import_rules(RuleRegistry& registry);

}  // namespace wsx::analysis
