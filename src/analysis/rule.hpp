// rule.hpp — the static-analysis rule framework over WSDL/XSD documents.
//
// The paper's method is static analysis at scale: run every published
// description through description-time checks and show that they predict
// downstream client-generation/compilation failures (§III.B.d, §IV). This
// module generalizes the ad-hoc WS-I checker into a rule engine: every
// check is a Rule with a stable id, a category, a configurable severity and
// a paper reference; violations are Findings carrying source locations and
// fix-it hints, serializable as pretty text or SARIF 2.1.0.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/diagnostics.hpp"
#include "wsdl/import_store.hpp"
#include "wsdl/model.hpp"

namespace wsx::analysis {

/// Rule families. Conformance rules mirror WS-I Basic Profile assertions;
/// the rest are the checks BP cannot express (paper §IV).
enum class Category {
  kConformance,  ///< WS-I BP 1.1 assertions (R2xxx)
  kStructure,    ///< document structure beyond BP (e.g. §IV.A operations)
  kSchema,       ///< embedded-schema hygiene (unused/duplicate/recursive)
  kImports,      ///< cross-document import graph
  kPortability,  ///< constructs known to break specific client stacks
};

const char* to_string(Category category);

/// Immutable metadata of one rule.
struct RuleInfo {
  std::string id;     ///< stable identifier, e.g. "WSX1001" or BP "R2102"
  std::string title;  ///< one-line statement of the requirement
  Category category = Category::kSchema;
  Severity default_severity = Severity::kError;
  std::string paper_ref;  ///< paper section the rule traces to, e.g. "§IV.A"
};

/// One document under analysis, plus optional cross-document context.
struct AnalysisInput {
  const wsdl::Definitions* definitions = nullptr;  ///< required
  std::string uri;  ///< document identity, stamped into finding locations
  /// Cross-document passes (import cycles, unresolved imports) resolve
  /// locations against this store; rules must tolerate nullptr.
  const wsdl::DocumentStore* store = nullptr;
  std::string root_location;  ///< key of *definitions within *store
};

/// One rule violation. `severity` is the configured (not necessarily the
/// default) severity at analysis time.
struct Finding {
  std::string rule_id;
  Severity severity = Severity::kError;
  std::string message;
  std::string subject;  ///< construct the finding is about
  SourceLocation location;
  std::string fixit;  ///< suggested remedy; "" = none

  Diagnostic to_diagnostic() const;
  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Sink handed to a rule; stamps rule id, configured severity and document
/// URI onto every reported violation.
class Reporter {
 public:
  Reporter(const RuleInfo& info, Severity severity, std::string uri,
           std::vector<Finding>& out)
      : info_(info), severity_(severity), uri_(std::move(uri)), out_(out) {}

  void report(std::string message, std::string subject = {},
              SourceLocation location = {}, std::string fixit = {});

  std::size_t reported() const { return reported_; }

 private:
  const RuleInfo& info_;
  Severity severity_;
  std::string uri_;
  std::vector<Finding>& out_;
  std::size_t reported_ = 0;
};

/// A single analysis pass. Rules are stateless: `run` may be called
/// concurrently from the corpus driver's worker threads.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const RuleInfo& info() const = 0;
  virtual void run(const AnalysisInput& input, Reporter& out) const = 0;
};

/// Convenience adapter: a rule from metadata plus a free function.
class LambdaRule : public Rule {
 public:
  using CheckFn = void (*)(const AnalysisInput&, Reporter&);
  LambdaRule(RuleInfo info, CheckFn fn) : info_(std::move(info)), fn_(fn) {}

  const RuleInfo& info() const override { return info_; }
  void run(const AnalysisInput& input, Reporter& out) const override { fn_(input, out); }

 private:
  RuleInfo info_;
  CheckFn fn_;
};

}  // namespace wsx::analysis
