#include "analysis/supervised_predict.hpp"

#include <utility>

#include "catalog/spec_json.hpp"
#include "common/json.hpp"

namespace wsx::analysis::predict {
namespace {

Error bad_config(const std::string& what) {
  return Error{"resilience.bad-config", "predict-corpus config: " + what};
}

bool shape_from_string(std::string_view text, frameworks::ServiceShape& out) {
  for (const frameworks::ServiceShape shape :
       {frameworks::ServiceShape::kSimpleEcho, frameworks::ServiceShape::kCrud}) {
    if (text == frameworks::to_string(shape)) {
      out = shape;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string predict_config_json(const PredictOptions& options) {
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(options.java_spec))
      .raw_field("dotnet", catalog::to_json(options.dotnet_spec))
      .field("shape", frameworks::to_string(options.shape))
      .field("join_study", options.join_study)
      .str();
}

Result<PredictOptions> predict_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  PredictOptions options;
  const json::Value* java = parsed->find("java");
  const json::Value* dotnet = parsed->find("dotnet");
  if (java == nullptr || !java->is_object() || dotnet == nullptr || !dotnet->is_object()) {
    return bad_config("missing catalog specs");
  }
  Result<catalog::JavaCatalogSpec> java_spec = catalog::java_spec_from_json(json::to_text(*java));
  if (!java_spec.ok()) return java_spec.error();
  options.java_spec = java_spec.value();
  Result<catalog::DotNetCatalogSpec> dotnet_spec =
      catalog::dotnet_spec_from_json(json::to_text(*dotnet));
  if (!dotnet_spec.ok()) return dotnet_spec.error();
  options.dotnet_spec = dotnet_spec.value();
  const json::Value* shape = parsed->find("shape");
  if (shape == nullptr || !shape->is_string() ||
      !shape_from_string(shape->as_string(), options.shape)) {
    return bad_config("missing or unknown shape");
  }
  const json::Value* join = parsed->find("join_study");
  if (join == nullptr || !join->is_bool()) return bad_config("missing join_study");
  options.join_study = join->as_bool();
  return options;
}

Result<SupervisedPredictResult> predict_corpus_supervised(
    const PredictOptions& options, const SupervisedPredictOptions& supervision) {
  SupervisedPredictResult out;
  PredictReport& report = out.report;

  obs::Span run_span(options.tracer, "predict-corpus");
  const std::vector<LintJob> jobs = build_predict_corpus(options, report, run_span.id());

  resilience::CampaignTasks tasks;
  tasks.campaign = "predict-corpus";
  tasks.config_json = predict_config_json(options);
  tasks.ids.reserve(jobs.size());
  for (const LintJob& job : jobs) {
    tasks.ids.push_back(job.server + "|" + job.service);
  }
  tasks.run = [&](std::size_t index, resilience::TaskContext& context) {
    obs::ScopedTimer one = obs::timer(options.metrics, "predict.step.predict_us");
    const ServicePredictionRecord record = predict_service_job(jobs[index]);
    context.charge(1);  // cost model: one virtual ms per predicted description
    return record_json(record);
  };

  obs::Span predict_span(options.tracer, "pass:predict", run_span);
  obs::ScopedTimer predict_timer = obs::timer(options.metrics, "predict.phase.predict_us");
  resilience::SupervisorOptions sup;
  sup.journal = supervision.journal;
  sup.jobs = options.jobs;
  sup.checkpoint_path = supervision.checkpoint_path;
  sup.resume = supervision.resume;
  sup.trip_after_tasks = supervision.trip_after_tasks;
  sup.metrics = options.metrics;
  Result<resilience::SupervisorReport> supervised = resilience::supervise(tasks, sup);
  predict_span.end();
  predict_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold in corpus order; the join + scoring pass then runs over exactly
  // the folded services.
  report.services.reserve(out.supervisor.completed);
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    if (task.state != resilience::TaskState::kCompleted) continue;
    Result<ServicePredictionRecord> record = record_from_json(task.record);
    if (!record.ok()) return record.error();
    report.services.push_back(std::move(record.value()));
  }
  finalize_predict_report(report, options, run_span.id());
  return out;
}

}  // namespace wsx::analysis::predict
