#include "serve/oracle.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/json.hpp"

namespace wsx::serve {

namespace predict = analysis::predict;

namespace {

Error not_found(std::string message) {
  return Error{"serve.not-found", std::move(message)};
}

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string step_json(const predict::StepPrediction& step) {
  json::ArrayWriter mechanisms;
  for (const std::string& mechanism : step.mechanisms) mechanisms.item(mechanism);
  return json::ObjectWriter{}
      .field("outcome", predict::to_string(step.outcome()))
      .raw_field("mechanisms", mechanisms.str())
      .str();
}

predict::Outcome folded_outcome(const predict::ClientPrediction& client) {
  const predict::Outcome generation = client.generation.outcome();
  const predict::Outcome compilation = client.compilation.outcome();
  return static_cast<int>(generation) >= static_cast<int>(compilation) ? generation
                                                                       : compilation;
}

}  // namespace

Result<Oracle> Oracle::load(const OracleOptions& options) {
  Oracle oracle;

  predict::PredictOptions predict_options = options.predict;
  predict_options.join_study = false;  // the oracle serves, it does not score

  predict::SupervisedPredictOptions supervision;
  supervision.journal = options.journal;
  supervision.checkpoint_path = options.cache_path;
  supervision.resume = options.resume;
  supervision.trip_after_tasks = options.trip_after_tasks;

  Result<predict::SupervisedPredictResult> result =
      predict::predict_corpus_supervised(predict_options, supervision);
  if (!result.ok()) return result.error();
  oracle.report_ = std::move(result->report);
  oracle.precompute_ = std::move(result->supervisor);
  oracle.index_ = predict::build_index(oracle.report_);

  // FNV-1a over the canonical record JSON, corpus order. Identical between
  // a cold recompute and a journal-resumed warm start, or something broke.
  std::uint64_t hash = 1469598103934665603ull;
  for (const predict::ServicePredictionRecord& record : oracle.report_.services) {
    const std::string text = predict::record_json(record);
    for (const char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ull;
  }
  oracle.fingerprint_ = hash;
  return oracle;
}

const predict::ServicePredictionRecord* Oracle::find_service(std::string_view service) const {
  for (const predict::ServicePredictionRecord& record : report_.services) {
    if (service == record.server + "/" + record.service || service == record.service) {
      return &record;
    }
  }
  return nullptr;
}

const predict::ClientPrediction* Oracle::find_client(
    const predict::ServicePredictionRecord& record, std::string_view client) const {
  for (const predict::ClientPrediction& prediction : record.prediction.clients) {
    if (prediction.client == client) return &prediction;
  }
  const std::string needle = lower(client);
  for (const predict::ClientPrediction& prediction : record.prediction.clients) {
    if (lower(prediction.client).find(needle) != std::string::npos) return &prediction;
  }
  return nullptr;
}

Result<std::string> Oracle::verdict(std::string_view client, std::string_view service) const {
  const predict::ServicePredictionRecord* record = find_service(service);
  if (record == nullptr) return not_found("unknown service '" + std::string(service) + "'");
  const predict::ClientPrediction* prediction = find_client(*record, client);
  if (prediction == nullptr) return not_found("unknown client '" + std::string(client) + "'");

  json::ObjectWriter writer;
  writer.field("client", prediction->client)
      .field("server", record->server)
      .field("service", record->service)
      .field("verdict", predict::to_string(folded_outcome(*prediction)))
      .field("compiled", prediction->compiled)
      .field("artifacts", prediction->artifacts)
      .raw_field("generation", step_json(prediction->generation));
  if (prediction->compiled) {
    writer.raw_field("compilation", step_json(prediction->compilation));
  }
  return writer.str();
}

Result<std::string> Oracle::explain(std::string_view client, std::string_view service) const {
  const predict::ServicePredictionRecord* record = find_service(service);
  if (record == nullptr) return not_found("unknown service '" + std::string(service) + "'");
  const predict::ClientPrediction* prediction = find_client(*record, client);
  if (prediction == nullptr) return not_found("unknown client '" + std::string(client) + "'");

  // Union of both steps' mechanisms, kept sorted/deduplicated like the
  // per-step lists themselves.
  std::vector<std::string> mechanisms = prediction->generation.mechanisms;
  mechanisms.insert(mechanisms.end(), prediction->compilation.mechanisms.begin(),
                    prediction->compilation.mechanisms.end());
  std::sort(mechanisms.begin(), mechanisms.end());
  mechanisms.erase(std::unique(mechanisms.begin(), mechanisms.end()), mechanisms.end());

  json::ArrayWriter list;
  for (const std::string& mechanism : mechanisms) list.item(mechanism);
  return json::ObjectWriter{}
      .field("client", prediction->client)
      .field("server", record->server)
      .field("service", record->service)
      .field("verdict", predict::to_string(folded_outcome(*prediction)))
      .raw_field("mechanisms", list.str())
      .field("fingerprint", record->prediction.fingerprint)
      .str();
}

Result<std::string> Oracle::substitute(std::string_view client, std::string_view service,
                                       std::size_t top) const {
  predict::SubstituteQuery query;
  query.client = std::string(client);
  query.service = std::string(service);
  query.top = top;
  Result<std::vector<predict::Candidate>> ranked = predict::substitute(index_, query);
  if (!ranked.ok()) {
    // The index reports unknown client/service with its own codes; the wire
    // surface exposes them uniformly as not-found.
    return not_found(ranked.error().message);
  }

  json::ArrayWriter list;
  for (const predict::Candidate& candidate : ranked.value()) {
    list.raw_item(json::ObjectWriter{}
                      .field("server", candidate.server)
                      .field("service", candidate.service)
                      .field("score", candidate.score)
                      .field("fingerprint_match", candidate.fingerprint_match)
                      .str());
  }
  return json::ObjectWriter{}
      .field("client", query.client)
      .field("service", query.service)
      .raw_field("candidates", list.str())
      .str();
}

}  // namespace wsx::serve
