#include "serve/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace wsx::serve {

namespace {

Error tcp_error(const std::string& what) {
  return Error{"serve.tcp", what + ": " + std::strerror(errno)};
}

/// Writes the whole buffer, retrying on short writes and EINTR.
bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t wrote = ::write(fd, bytes.data(), bytes.size());
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(wrote));
  }
  return true;
}

/// Serves one accepted connection; returns requests answered.
std::size_t serve_connection(int fd, Daemon& daemon, std::uint64_t& now_ms) {
  FrameReader reader;
  std::size_t answered = 0;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0) {
      if (errno == EINTR) continue;
      return answered;
    }
    if (got == 0) return answered;  // peer closed
    reader.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
    for (;;) {
      std::string payload;
      Result<bool> frame = reader.next(payload);
      if (!frame.ok()) {
        Response bad;
        bad.status = StatusCode::kBadRequest;
        bad.reason = frame.error().message;
        write_all(fd, serve::frame(encode_response(bad)));
        return answered;  // desynchronized stream: drop the connection
      }
      if (!frame.value()) break;
      ++now_ms;
      Response response;
      Result<Request> request = decode_request(payload);
      if (!request.ok()) {
        response.status = StatusCode::kBadRequest;
        response.reason = request.error().message;
      } else {
        response = daemon.handle(request.value(), now_ms);
      }
      if (!write_all(fd, serve::frame(encode_response(response)))) return answered;
      ++answered;
    }
  }
}

}  // namespace

TcpServer::TcpServer(TcpServer&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpServer& TcpServer::operator=(TcpServer&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpServer::~TcpServer() {
  if (fd_ >= 0) ::close(fd_);
}

Result<TcpServer> TcpServer::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return tcp_error("cannot create socket");
  const int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    ::close(fd);
    return tcp_error("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return tcp_error("cannot listen");
  }
  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    ::close(fd);
    return tcp_error("cannot read bound port");
  }
  return TcpServer(fd, ntohs(bound.sin_port));
}

Result<std::size_t> TcpServer::serve(Daemon& daemon, std::size_t max_connections,
                                     std::uint64_t& now_ms) {
  std::size_t answered = 0;
  for (std::size_t i = 0; i < max_connections; ++i) {
    const int connection = ::accept(fd_, nullptr, nullptr);
    if (connection < 0) {
      if (errno == EINTR) {
        --i;
        continue;
      }
      return tcp_error("accept failed");
    }
    answered += serve_connection(connection, daemon, now_ms);
    ::close(connection);
  }
  return answered;
}

Result<Response> tcp_query(std::uint16_t port, const Request& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return tcp_error("cannot create socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    ::close(fd);
    return tcp_error("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
  if (!write_all(fd, frame(encode_request(request)))) {
    ::close(fd);
    return tcp_error("cannot send request");
  }
  ::shutdown(fd, SHUT_WR);

  FrameReader reader;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return tcp_error("cannot read response");
    }
    if (got == 0) break;
    reader.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
    std::string payload;
    Result<bool> frame = reader.next(payload);
    if (!frame.ok()) {
      ::close(fd);
      return frame.error();
    }
    if (frame.value()) {
      ::close(fd);
      return decode_response(payload);
    }
  }
  ::close(fd);
  return Error{"serve.tcp", "connection closed before a response frame arrived"};
}

}  // namespace wsx::serve
