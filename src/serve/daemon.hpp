// daemon.hpp — the serve request handler: admission control in front of
// the oracle, with a circuit breaker and poison quarantine on the one path
// that parses untrusted input.
//
// handle() is the whole daemon: every transport (in-process, request
// script, TCP) decodes a frame into a Request, calls handle() with the
// current virtual time, and writes the Response frame back. Layering per
// request:
//
//   stats ────────────────────────────────► answered (control plane —
//                                           never shed, or the daemon goes
//                                           blind exactly when overloaded)
//   verdict/explain/substitute ─ admission ─► O(1) oracle lookup
//   lint ─ admission ─ quarantine ─ breaker ─► parse + rule pack, with
//                                              retry-then-quarantine on
//                                              poison uploads
//
// The lint path is the only one executing work proportional to attacker-
// controlled bytes, so it alone gets the breaker (repeated parse failures
// open it and shed the whole class for a cooldown) and the quarantine
// (one specific body failing `quarantine_after` attempts is parked for
// the daemon's lifetime and answered kQuarantined in O(1)).
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>

#include "chaos/policy.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/oracle.hpp"
#include "serve/protocol.hpp"

namespace wsx::serve {

struct DaemonSettings {
  AdmissionSettings admission;
  chaos::BreakerSettings breaker;   ///< lint-path circuit breaker
  std::size_t quarantine_after = 3; ///< failed parse attempts before parking a body
  obs::Registry* metrics = nullptr; ///< optional; stats exports land here too
};

/// Deterministic lint-path state for the stats body.
struct LintSnapshot {
  std::uint64_t attempts = 0;        ///< parse attempts, retries included
  std::uint64_t parse_failures = 0;
  std::uint64_t quarantined_hits = 0; ///< requests answered from quarantine
  std::size_t quarantined_bodies = 0;
  std::size_t breaker_trips = 0;
};

class Daemon {
 public:
  Daemon(Oracle oracle, DaemonSettings settings);

  /// Answers one request at virtual time `now_ms`. Thread-safe; the oracle
  /// is immutable and the mutable paths (admission, breaker, quarantine)
  /// are internally locked.
  Response handle(const Request& request, std::uint64_t now_ms);

  const Oracle& oracle() const { return oracle_; }
  const AdmissionController& admission() const { return admission_; }
  LintSnapshot lint_snapshot() const;

  /// Deterministic stats body (also the kStats response): corpus counts,
  /// cache fingerprint, admission totals, breaker and quarantine state.
  /// Identical between a cold daemon and a warm-restarted one that served
  /// the same traffic — the crash drill diffs exactly this.
  std::string stats_body(std::uint64_t now_ms);

 private:
  Response execute(const Request& request, const Admission& admission,
                   std::uint64_t now_ms);
  Response lint(const Request& request, const Admission& admission, std::uint64_t now_ms);

  Oracle oracle_;
  DaemonSettings settings_;
  AdmissionController admission_;

  /// Guards the whole lint execution, not just the breaker word: holding it
  /// across the probe is what guarantees a half-open breaker admits exactly
  /// one probe even under concurrent lint traffic.
  mutable std::mutex lint_mutex_;
  chaos::CircuitBreaker breaker_;
  std::unordered_map<std::uint64_t, std::size_t> body_failures_;  ///< body hash → attempts
  std::set<std::uint64_t> quarantined_;
  LintSnapshot lint_totals_;
};

}  // namespace wsx::serve
