// admission.hpp — bounded-queue admission control with per-class deadlines
// and explicit load shedding, on the virtual clock.
//
// The daemon models its service capacity as a fixed set of *lanes* (virtual
// workers). Each query class has a calibrated virtual cost; admitting a
// query books it onto the least-loaded lane, so its latency is queue wait
// plus service cost — fully deterministic for a given arrival schedule,
// which is what makes the overload drill and BENCH_serve.json byte-stable.
//
// A query is refused *before* it consumes anything:
//   * kShedded          — the bounded queue is full (or a budget ran out);
//   * kDeadlineExceeded — the queue has room but wait + cost already
//                         overshoots the class deadline, so running it
//                         would only waste capacity on a doomed answer.
// Shedding is checked first: a full queue says nothing about deadlines and
// the two counters must stay distinguishable in the drill.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace wsx::serve {

/// Virtual cost and deadline of one query class, in virtual milliseconds.
/// deadline_ms == 0 means the class has no deadline.
struct ClassSpec {
  std::uint64_t cost_ms = 1;
  std::uint64_t deadline_ms = 0;
};

struct AdmissionSettings {
  /// Virtual workers answering queries concurrently.
  std::size_t lanes = 4;
  /// Admitted-but-not-yet-started queries allowed to wait. 0 means a query
  /// is shed unless a lane is free the moment it arrives.
  std::size_t queue_capacity = 16;
  /// Per-class specs indexed by QueryKind (kStats never reaches admission).
  ClassSpec verdict{1, 50};
  ClassSpec explain{2, 50};
  ClassSpec substitute{4, 100};
  ClassSpec lint{20, 400};
  /// Optional budgets over the daemon's lifetime: admitted query count and
  /// admitted virtual cost. 0 disables. Exhaustion sheds (kShedded) — the
  /// queue is effectively full forever.
  std::uint64_t budget_queries = 0;
  std::uint64_t budget_cost_ms = 0;
};

/// Outcome of one admission attempt.
struct Admission {
  StatusCode status = StatusCode::kOk;
  std::uint64_t wait_ms = 0;     ///< queue delay before service starts
  std::uint64_t latency_ms = 0;  ///< wait + class cost (admitted only)
  std::uint64_t finish_ms = 0;   ///< virtual completion time (admitted only)
};

/// Deterministic aggregate view for the stats query and the drill diff.
struct AdmissionSnapshot {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_rejected = 0;
  std::uint64_t admitted_cost_ms = 0;
  std::size_t queue_depth = 0;       ///< as of the last admit call
  std::size_t queue_high_water = 0;
};

/// Thread-safe admission controller. All times are virtual milliseconds
/// supplied by the caller; the controller never reads a wall clock.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionSettings settings = {});

  const ClassSpec& spec(QueryKind kind) const;

  /// Decides one query's fate at virtual time `now_ms`. Callers pass a
  /// monotonically non-decreasing clock per logical arrival order; the
  /// controller tolerates ties (concurrent arrivals at one instant).
  Admission admit(QueryKind kind, std::uint64_t now_ms);

  AdmissionSnapshot snapshot() const;

  /// Mirrors counters and gauges into `registry` under "serve.admission.".
  /// Counters are set-once-from-totals (export is called on stats
  /// snapshots, not per admit), gauges carry queue depth and high water.
  void export_metrics(obs::Registry& registry) const;

 private:
  AdmissionSettings settings_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> lane_free_at_;
  std::vector<std::uint64_t> queued_starts_;  ///< start times not yet reached
  AdmissionSnapshot totals_;
  std::uint64_t shed_by_class_[5] = {};
  std::uint64_t deadline_by_class_[5] = {};
  std::uint64_t admitted_by_class_[5] = {};
};

}  // namespace wsx::serve
