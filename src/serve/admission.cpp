#include "serve/admission.hpp"

#include <algorithm>

namespace wsx::serve {

AdmissionController::AdmissionController(AdmissionSettings settings)
    : settings_(settings) {
  if (settings_.lanes == 0) settings_.lanes = 1;
  lane_free_at_.assign(settings_.lanes, 0);
}

const ClassSpec& AdmissionController::spec(QueryKind kind) const {
  switch (kind) {
    case QueryKind::kVerdict:
      return settings_.verdict;
    case QueryKind::kExplain:
      return settings_.explain;
    case QueryKind::kSubstitute:
      return settings_.substitute;
    case QueryKind::kLint:
      return settings_.lint;
    case QueryKind::kStats:
      break;
  }
  return settings_.verdict;  // kStats never reaches admission
}

Admission AdmissionController::admit(QueryKind kind, std::uint64_t now_ms) {
  const ClassSpec& cls = spec(kind);
  const std::size_t class_index = static_cast<std::size_t>(kind);
  std::lock_guard<std::mutex> lock(mutex_);

  // Drop bookings whose start time has passed: they are in service (or
  // done), not queued. Lazy pruning keeps admit O(queue) with no timers.
  queued_starts_.erase(
      std::remove_if(queued_starts_.begin(), queued_starts_.end(),
                     [&](std::uint64_t start) { return start <= now_ms; }),
      queued_starts_.end());

  auto lane = std::min_element(lane_free_at_.begin(), lane_free_at_.end());
  const std::uint64_t start_ms = std::max(now_ms, *lane);
  const std::uint64_t wait_ms = start_ms - now_ms;

  Admission result;
  result.wait_ms = wait_ms;

  // Shed checks first: a full queue (or an exhausted budget) is a capacity
  // statement independent of this query's deadline.
  const bool queue_full = wait_ms > 0 && queued_starts_.size() >= settings_.queue_capacity;
  const bool budget_out =
      (settings_.budget_queries != 0 && totals_.admitted >= settings_.budget_queries) ||
      (settings_.budget_cost_ms != 0 &&
       totals_.admitted_cost_ms + cls.cost_ms > settings_.budget_cost_ms);
  if (queue_full || budget_out) {
    result.status = StatusCode::kShedded;
    ++totals_.shed;
    ++shed_by_class_[class_index];
    totals_.queue_depth = queued_starts_.size();
    return result;
  }

  if (cls.deadline_ms != 0 && wait_ms + cls.cost_ms > cls.deadline_ms) {
    result.status = StatusCode::kDeadlineExceeded;
    ++totals_.deadline_rejected;
    ++deadline_by_class_[class_index];
    totals_.queue_depth = queued_starts_.size();
    return result;
  }

  *lane = start_ms + cls.cost_ms;
  result.status = StatusCode::kOk;
  result.latency_ms = wait_ms + cls.cost_ms;
  result.finish_ms = start_ms + cls.cost_ms;
  ++totals_.admitted;
  ++admitted_by_class_[class_index];
  totals_.admitted_cost_ms += cls.cost_ms;
  if (wait_ms > 0) queued_starts_.push_back(start_ms);
  totals_.queue_depth = queued_starts_.size();
  totals_.queue_high_water = std::max(totals_.queue_high_water, queued_starts_.size());
  return result;
}

AdmissionSnapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

void AdmissionController::export_metrics(obs::Registry& registry) const {
  AdmissionSnapshot totals;
  std::uint64_t admitted[5];
  std::uint64_t shed[5];
  std::uint64_t deadline[5];
  {
    std::lock_guard<std::mutex> lock(mutex_);
    totals = totals_;
    std::copy(admitted_by_class_, admitted_by_class_ + 5, admitted);
    std::copy(shed_by_class_, shed_by_class_ + 5, shed);
    std::copy(deadline_by_class_, deadline_by_class_ + 5, deadline);
  }
  // Counters accumulate; exports happen on stats snapshots, so publish the
  // delta since the counter's current value to land on the exact total.
  const auto publish = [&](std::string_view name, std::uint64_t total) {
    obs::Counter& counter = registry.counter(name);
    if (total > counter.value()) counter.add(total - counter.value());
  };
  publish("serve.admission.admitted", totals.admitted);
  publish("serve.admission.shed", totals.shed);
  publish("serve.admission.deadline_rejected", totals.deadline_rejected);
  for (const QueryKind kind :
       {QueryKind::kVerdict, QueryKind::kExplain, QueryKind::kSubstitute, QueryKind::kLint}) {
    const std::size_t i = static_cast<std::size_t>(kind);
    const std::string base = std::string("serve.admission.") + to_string(kind);
    publish(base + ".admitted", admitted[i]);
    publish(base + ".shed", shed[i]);
    publish(base + ".deadline_rejected", deadline[i]);
  }
  registry.gauge("serve.admission.queue_depth")
      .set(static_cast<std::int64_t>(totals.queue_depth));
  registry.gauge("serve.admission.queue_high_water")
      .set(static_cast<std::int64_t>(totals.queue_high_water));
  registry.gauge("serve.admission.admitted_cost_ms")
      .set(static_cast<std::int64_t>(totals.admitted_cost_ms));
}

}  // namespace wsx::serve
