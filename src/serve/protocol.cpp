#include "serve/protocol.hpp"

#include "common/json.hpp"

namespace wsx::serve {

namespace {

Error fail(std::string code, std::string message) {
  return Error{"serve." + std::move(code), std::move(message)};
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kVerdict:
      return "verdict";
    case QueryKind::kExplain:
      return "explain";
    case QueryKind::kSubstitute:
      return "substitute";
    case QueryKind::kLint:
      return "lint";
    case QueryKind::kStats:
      return "stats";
  }
  return "unknown";
}

bool query_kind_from_string(std::string_view text, QueryKind& out) {
  if (text == "verdict") {
    out = QueryKind::kVerdict;
  } else if (text == "explain") {
    out = QueryKind::kExplain;
  } else if (text == "substitute") {
    out = QueryKind::kSubstitute;
  } else if (text == "lint") {
    out = QueryKind::kLint;
  } else if (text == "stats") {
    out = QueryKind::kStats;
  } else {
    return false;
  }
  return true;
}

const char* to_string(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kShedded:
      return "shedded";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCircuitOpen:
      return "circuit-open";
    case StatusCode::kQuarantined:
      return "quarantined";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kBadRequest:
      return "bad-request";
  }
  return "unknown";
}

bool status_code_from_string(std::string_view text, StatusCode& out) {
  if (text == "ok") {
    out = StatusCode::kOk;
  } else if (text == "shedded") {
    out = StatusCode::kShedded;
  } else if (text == "deadline-exceeded") {
    out = StatusCode::kDeadlineExceeded;
  } else if (text == "circuit-open") {
    out = StatusCode::kCircuitOpen;
  } else if (text == "quarantined") {
    out = StatusCode::kQuarantined;
  } else if (text == "not-found") {
    out = StatusCode::kNotFound;
  } else if (text == "bad-request") {
    out = StatusCode::kBadRequest;
  } else {
    return false;
  }
  return true;
}

std::string encode_request(const Request& request) {
  json::ObjectWriter writer;
  writer.field("query", to_string(request.kind));
  if (!request.client.empty()) writer.field("client", request.client);
  if (!request.service.empty()) writer.field("service", request.service);
  if (request.kind == QueryKind::kSubstitute) writer.field("top", request.top);
  if (request.kind == QueryKind::kLint) writer.field("body", request.body);
  return writer.str();
}

Result<Request> decode_request(std::string_view payload) {
  Result<json::Value> parsed = json::parse(payload);
  if (!parsed.ok()) return fail("bad-request", parsed.error().message);
  const json::Value& object = parsed.value();
  if (!object.is_object()) return fail("bad-request", "payload is not an object");

  Request request;
  const json::Value* query = object.find("query");
  if (query == nullptr || !query->is_string()) {
    return fail("bad-request", "missing string field 'query'");
  }
  if (!query_kind_from_string(query->as_string(), request.kind)) {
    return fail("bad-request", "unknown query kind '" + query->as_string() + "'");
  }
  if (const json::Value* client = object.find("client"); client != nullptr) {
    if (!client->is_string()) return fail("bad-request", "'client' must be a string");
    request.client = client->as_string();
  }
  if (const json::Value* service = object.find("service"); service != nullptr) {
    if (!service->is_string()) return fail("bad-request", "'service' must be a string");
    request.service = service->as_string();
  }
  if (const json::Value* top = object.find("top"); top != nullptr) {
    if (!top->is_number() || top->as_number() < 1) {
      return fail("bad-request", "'top' must be a positive number");
    }
    request.top = static_cast<std::size_t>(top->as_number());
  }
  if (const json::Value* body = object.find("body"); body != nullptr) {
    if (!body->is_string()) return fail("bad-request", "'body' must be a string");
    request.body = body->as_string();
  }
  return request;
}

std::string encode_response(const Response& response) {
  json::ObjectWriter writer;
  writer.field("status", to_string(response.status));
  if (!response.body.empty()) writer.raw_field("body", response.body);
  if (!response.reason.empty()) writer.field("reason", response.reason);
  writer.field("latency_ms", static_cast<std::size_t>(response.latency_ms));
  return writer.str();
}

Result<Response> decode_response(std::string_view payload) {
  Result<json::Value> parsed = json::parse(payload);
  if (!parsed.ok()) return fail("bad-response", parsed.error().message);
  const json::Value& object = parsed.value();
  if (!object.is_object()) return fail("bad-response", "payload is not an object");

  Response response;
  const json::Value* status = object.find("status");
  if (status == nullptr || !status->is_string()) {
    return fail("bad-response", "missing string field 'status'");
  }
  if (!status_code_from_string(status->as_string(), response.status)) {
    return fail("bad-response", "unknown status '" + status->as_string() + "'");
  }
  if (const json::Value* body = object.find("body"); body != nullptr) {
    response.body = json::to_text(*body);
  }
  if (const json::Value* reason = object.find("reason"); reason != nullptr) {
    if (!reason->is_string()) return fail("bad-response", "'reason' must be a string");
    response.reason = reason->as_string();
  }
  if (const json::Value* latency = object.find("latency_ms"); latency != nullptr) {
    if (!latency->is_number() || latency->as_number() < 0) {
      return fail("bad-response", "'latency_ms' must be a non-negative number");
    }
    response.latency_ms = static_cast<std::uint64_t>(latency->as_number());
  }
  return response;
}

std::string frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  out += '#';
  out += std::to_string(payload.size());
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

Result<bool> FrameReader::next(std::string& payload) {
  // Reclaim consumed prefix lazily once it dominates the buffer, so a
  // long-lived connection does not grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view rest = std::string_view(buffer_).substr(consumed_);
  if (rest.empty()) return false;
  if (rest[0] != '#') return fail("bad-frame", "frame header must start with '#'");
  const std::size_t newline = rest.find('\n');
  if (newline == std::string_view::npos) {
    if (rest.size() > 32) return fail("bad-frame", "unterminated frame header");
    return false;  // header still arriving
  }
  const std::string_view digits = rest.substr(1, newline - 1);
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string_view::npos) {
    return fail("bad-frame", "frame length is not a decimal number");
  }
  std::size_t length = 0;
  for (const char c : digits) {
    if (length > (1u << 26)) return fail("bad-frame", "frame length too large");
    length = length * 10 + static_cast<std::size_t>(c - '0');
  }
  // Complete frame = header line + payload + trailing '\n'.
  if (rest.size() < newline + 1 + length + 1) return false;
  if (rest[newline + 1 + length] != '\n') {
    return fail("bad-frame", "frame payload not terminated by newline");
  }
  payload.assign(rest.substr(newline + 1, length));
  consumed_ += newline + 1 + length + 1;
  return true;
}

}  // namespace wsx::serve
