// protocol.hpp — the framed request/response protocol `wsinterop serve`
// speaks.
//
// The protocol is transport-agnostic by construction: a *frame* is
// "#<decimal payload length>\n<payload>\n" and a payload is one compact
// JSON object, so the same codec drives the deterministic in-process
// transport the tests and the load generator use, a request script file
// read frame-by-frame, and the optional localhost TCP listener. Framing
// (not line-splitting) is what lets a lint request carry a whole multi-line
// WSDL document as its body without any transport-level escaping beyond
// JSON's own.
//
// Requests name one of five query kinds; responses carry an explicit
// status. Overload is a first-class answer: a shed or deadline-rejected
// query gets a `shedded` / `deadline-exceeded` response on the wire, never
// a silent queueing collapse or a dropped connection.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace wsx::serve {

/// What a request asks for. kStats is control-plane: it bypasses admission
/// so the daemon stays observable while it is shedding.
enum class QueryKind {
  kVerdict,     ///< "will client X consume service Y?" — O(1) cache lookup
  kExplain,     ///< the responsible footnote mechanisms for the pair
  kSubstitute,  ///< ranked replacement services for a failing pair
  kLint,        ///< full rule pack over an uploaded (untrusted) WSDL body
  kStats,       ///< metrics snapshot (control plane, never shed)
};

const char* to_string(QueryKind kind);
bool query_kind_from_string(std::string_view text, QueryKind& out);

/// Wire status of one response.
enum class StatusCode {
  kOk,                ///< answered; `body` holds the answer object
  kShedded,           ///< bounded queue full — explicit load shedding
  kDeadlineExceeded,  ///< could not meet the query class deadline; not run
  kCircuitOpen,       ///< lint breaker open — untrusted-parse path cooling off
  kQuarantined,       ///< poison upload parked after repeated failures
  kNotFound,          ///< unknown client or service
  kBadRequest,        ///< malformed frame or payload
};

const char* to_string(StatusCode status);
bool status_code_from_string(std::string_view text, StatusCode& out);

struct Request {
  QueryKind kind = QueryKind::kVerdict;
  std::string client;   ///< verdict/explain/substitute: client tool name
  std::string service;  ///< "Server/Service" or bare service name
  std::size_t top = 5;  ///< substitute: candidate count
  std::string body;     ///< lint: the uploaded WSDL text
};

struct Response {
  StatusCode status = StatusCode::kOk;
  std::string body;             ///< answer object as JSON text; "" unless kOk
  std::string reason;           ///< diagnostic for non-kOk statuses
  std::uint64_t latency_ms = 0; ///< virtual queue wait + service time
};

/// Payload codecs. encode_* emit compact JSON objects; decode_* accept what
/// encode_* produced (errors use the "serve." prefix).
std::string encode_request(const Request& request);
Result<Request> decode_request(std::string_view payload);
std::string encode_response(const Response& response);
Result<Response> decode_response(std::string_view payload);

/// Wraps a payload into one frame: "#<len>\n<payload>\n".
std::string frame(std::string_view payload);

/// Incremental frame extractor over any byte stream. feed() appends bytes;
/// next() yields complete payloads in arrival order.
class FrameReader {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete payload into `payload`. Returns false when
  /// the buffer holds no complete frame yet. A malformed header (missing
  /// '#', a non-numeric length) is a hard error — resynchronising a framed
  /// stream silently would hide exactly the corruption it should surface.
  Result<bool> next(std::string& payload);

  /// Bytes buffered but not yet consumed (a truncated trailing frame).
  std::size_t pending() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace wsx::serve
