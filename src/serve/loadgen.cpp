#include "serve/loadgen.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/supervised_predict.hpp"
#include "common/json.hpp"

namespace wsx::serve {

namespace predict = analysis::predict;

namespace {

/// Deterministic 64-bit LCG (the arrival schedule and query mix).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761ull + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }

 private:
  std::uint64_t state_;
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, std::size_t pct) {
  if (sorted.empty()) return 0;
  return sorted[(sorted.size() - 1) * pct / 100];
}

/// One traffic phase against one daemon. Arrivals land `per_ms` per virtual
/// millisecond starting at `start_ms`; the mix is ~80% verdict, 10% explain,
/// 8% substitute, 2% lint (a quarter of lints poisoned).
PhaseStats run_phase(Daemon& daemon, Lcg& rng, std::string name, std::size_t queries,
                     std::size_t per_ms, std::uint64_t start_ms,
                     const std::vector<std::string>& valid_bodies,
                     const std::vector<std::string>& poison_bodies,
                     std::uint64_t& end_ms) {
  PhaseStats stats;
  stats.name = std::move(name);
  const std::vector<std::string>& clients = daemon.oracle().clients();
  const auto& records = daemon.oracle().records();
  std::vector<std::uint64_t> latencies;
  std::uint64_t last_completion = start_ms;

  for (std::size_t i = 0; i < queries; ++i) {
    const std::uint64_t now = start_ms + (per_ms == 0 ? i : i / per_ms);
    Request request;
    const std::uint64_t mix = rng.next() % 100;
    if (mix < 80) {
      request.kind = QueryKind::kVerdict;
    } else if (mix < 90) {
      request.kind = QueryKind::kExplain;
    } else if (mix < 98) {
      request.kind = QueryKind::kSubstitute;
    } else {
      request.kind = QueryKind::kLint;
      request.body = rng.next() % 4 == 0
                         ? poison_bodies[rng.next() % poison_bodies.size()]
                         : valid_bodies[rng.next() % valid_bodies.size()];
    }
    if (request.kind != QueryKind::kLint) {
      request.client = clients[rng.next() % clients.size()];
      const auto& record = records[rng.next() % records.size()];
      request.service = record.server + "/" + record.service;
    }

    const Response response = daemon.handle(request, now);
    ++stats.sent;
    switch (response.status) {
      case StatusCode::kOk:
        ++stats.ok;
        latencies.push_back(response.latency_ms);
        last_completion = std::max(last_completion, now + response.latency_ms);
        break;
      case StatusCode::kShedded:
        ++stats.shed;
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats.deadline_rejected;
        break;
      case StatusCode::kQuarantined:
        ++stats.quarantined;
        break;
      case StatusCode::kCircuitOpen:
        ++stats.circuit_open;
        break;
      case StatusCode::kBadRequest:
        ++stats.bad_request;
        break;
      case StatusCode::kNotFound:
        ++stats.not_found;
        break;
    }
  }

  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = percentile(latencies, 50);
  stats.p99_ms = percentile(latencies, 99);
  stats.max_ms = latencies.empty() ? 0 : latencies.back();
  stats.duration_ms = last_completion > start_ms ? last_completion - start_ms : 1;
  end_ms = last_completion;
  return stats;
}

std::uint64_t restart_cost(const resilience::SupervisorReport& precompute) {
  return static_cast<std::uint64_t>(precompute.executed) * kRecomputeCostMs +
         static_cast<std::uint64_t>(precompute.resumed) * kReplayCostMs;
}

void phase_fields(json::ObjectWriter& doc, const PhaseStats& phase) {
  const std::string p = phase.name + "_";
  doc.field(p + "sent", phase.sent)
      .field(p + "ok", phase.ok)
      .field(p + "shed", phase.shed)
      .field(p + "deadline_rejected", phase.deadline_rejected)
      .field(p + "quarantined", phase.quarantined)
      .field(p + "circuit_open", phase.circuit_open)
      .field(p + "p50_ms", static_cast<std::size_t>(phase.p50_ms))
      .field(p + "p99_ms", static_cast<std::size_t>(phase.p99_ms))
      .field(p + "max_ms", static_cast<std::size_t>(phase.max_ms))
      .field(p + "duration_ms", static_cast<std::size_t>(phase.duration_ms))
      .field(p + "qps", phase.duration_ms == 0
                            ? 0.0
                            : static_cast<double>(phase.sent) * 1000.0 /
                                  static_cast<double>(phase.duration_ms));
}

}  // namespace

Result<LoadgenReport> run_loadgen(const LoadgenOptions& options) {
  LoadgenReport report;

  predict::PredictOptions predict_options = options.predict;
  predict_options.join_study = false;

  // Harvest real served WSDL bytes for the valid lint uploads: the deploy
  // pass is cheap and these bodies are guaranteed to parse.
  predict::PredictReport scratch;
  const std::vector<analysis::LintJob> jobs =
      predict::build_predict_corpus(predict_options, scratch);
  if (jobs.empty()) return Error{"serve.loadgen", "empty corpus at this scale"};
  std::vector<std::string> valid_bodies;
  for (std::size_t i = 0; i < jobs.size() && valid_bodies.size() < 3; ++i) {
    valid_bodies.push_back(jobs[i].wsdl_text);
  }
  // Three distinct poison uploads: enough failing requests to both fill a
  // quarantine slot and trip the breaker during overload.
  const std::vector<std::string> poison_bodies = {
      "<definitions xmlns=\"", "<defin", "not xml at all \x01"};

  OracleOptions cold_options;
  cold_options.predict = predict_options;
  cold_options.journal = options.journal;
  cold_options.cache_path = options.cache_path;
  Result<Oracle> cold = Oracle::load(cold_options);
  if (!cold.ok()) return cold.error();
  report.services = cold->services();
  report.clients = cold->clients().size();
  report.cold_precompute_ms = restart_cost(cold->precompute());
  const std::uint64_t cold_fingerprint = cold->fingerprint();
  const std::size_t corpus_tasks = cold->precompute().tasks.size();

  // Keep the cold outcomes around: when no cache file is used, the warm
  // restart resumes from an in-memory journal holding exactly the entries
  // the file would have.
  resilience::Journal journal;
  journal.campaign = "predict-corpus";
  journal.config_json = predict::predict_config_json(predict_options);
  journal.tasks = corpus_tasks;
  journal.options = options.journal;
  if (options.cache_path.empty()) {
    for (const resilience::TaskOutcome& task : cold->precompute().tasks) {
      if (task.state == resilience::TaskState::kNotAdmitted) continue;
      resilience::JournalEntry entry;
      entry.task = task.task;
      entry.id = task.id;
      entry.state = task.state == resilience::TaskState::kCompleted
                        ? resilience::JournalState::kCompleted
                        : resilience::JournalState::kQuarantined;
      entry.attempts = task.attempts;
      entry.timed_out = task.timed_out;
      entry.virtual_ms = task.virtual_ms;
      entry.record = task.record;
      entry.reason = task.reason;
      journal.entries.push_back(std::move(entry));
    }
  }

  DaemonSettings settings;
  settings.admission = options.admission;
  settings.breaker = options.breaker;
  settings.quarantine_after = options.journal.quarantine_after;
  Daemon daemon(std::move(cold.value()), settings);

  Lcg rng(options.seed);
  std::uint64_t now = 0;
  report.phases.push_back(run_phase(daemon, rng, "open", options.queries_per_phase,
                                    options.open_per_ms, 0, valid_bodies, poison_bodies,
                                    now));
  std::uint64_t overload_end = now;
  report.phases.push_back(run_phase(daemon, rng, "overload", options.queries_per_phase,
                                    options.overload_per_ms, now + 1, valid_bodies,
                                    poison_bodies, overload_end));

  // Simulated crash: the daemon dies with the overload phase; a new one
  // warm-restarts from the verdict-cache journal.
  if (!options.cache_path.empty()) {
    std::ifstream file(options.cache_path);
    if (!file) {
      return Error{"serve.loadgen", "cannot read cache journal " + options.cache_path};
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    resilience::JournalParseOptions tolerant;
    tolerant.tolerate_truncated_tail = true;
    Result<resilience::Journal> parsed = resilience::Journal::parse(buffer.str(), tolerant);
    if (!parsed.ok()) return parsed.error();
    journal = std::move(parsed.value());
  }
  OracleOptions warm_options;
  warm_options.predict = predict_options;
  warm_options.journal = options.journal;
  warm_options.resume = &journal;
  Result<Oracle> warm = Oracle::load(warm_options);
  if (!warm.ok()) return warm.error();
  report.warm_resumed = warm->precompute().resumed;
  report.warm_executed = warm->precompute().executed;
  report.recover_ms = restart_cost(warm->precompute());
  report.fingerprint_match = warm->fingerprint() == cold_fingerprint;

  Daemon restarted(std::move(warm.value()), settings);
  std::uint64_t recovery_end = 0;
  report.phases.push_back(run_phase(restarted, rng, "recovery", options.queries_per_phase,
                                    options.open_per_ms, overload_end + report.recover_ms,
                                    valid_bodies, poison_bodies, recovery_end));
  return report;
}

std::string loadgen_json(const LoadgenReport& report, std::size_t scale_percent,
                         std::uint64_t seed) {
  json::ObjectWriter doc;
  doc.field("benchmark", "serve")
      .field("scale_percent", scale_percent)
      .field("seed", static_cast<std::size_t>(seed))
      .field("services", report.services)
      .field("clients", report.clients);
  for (const PhaseStats& phase : report.phases) phase_fields(doc, phase);
  const PhaseStats* overload = nullptr;
  for (const PhaseStats& phase : report.phases) {
    if (phase.name == "overload") overload = &phase;
  }
  doc.field("shed_rate_percent",
            overload == nullptr || overload->sent == 0
                ? 0.0
                : static_cast<double>(overload->shed) * 100.0 /
                      static_cast<double>(overload->sent))
      .field("cold_precompute_ms", static_cast<std::size_t>(report.cold_precompute_ms))
      .field("recover_ms", static_cast<std::size_t>(report.recover_ms))
      .field("warm_resumed", report.warm_resumed)
      .field("warm_executed", report.warm_executed)
      .field("fingerprint_match", static_cast<std::size_t>(report.fingerprint_match ? 1 : 0));
  return doc.str();
}

std::vector<std::string> check_invariants(const LoadgenReport& report,
                                          const LoadgenOptions& options) {
  std::vector<std::string> violations;
  if (report.phases.size() != 3) {
    violations.push_back("expected exactly three phases");
    return violations;
  }
  const PhaseStats& open = report.phases[0];
  const PhaseStats& overload = report.phases[1];
  const PhaseStats& recovery = report.phases[2];

  if (overload.shed == 0) {
    violations.push_back("overload phase shed nothing: admission control never engaged");
  }
  if (open.shed + open.deadline_rejected != 0) {
    violations.push_back("open phase shed or rejected traffic below capacity");
  }

  // Admitted p99 must honour the worst per-class deadline — the property
  // load shedding exists to protect. Classes without a deadline exempt the
  // check (deadline 0 = unbounded).
  std::uint64_t worst_deadline = 0;
  bool unbounded = false;
  for (const ClassSpec* cls : {&options.admission.verdict, &options.admission.explain,
                               &options.admission.substitute, &options.admission.lint}) {
    if (cls->deadline_ms == 0) {
      unbounded = true;
    } else {
      worst_deadline = std::max(worst_deadline, cls->deadline_ms);
    }
  }
  if (!unbounded) {
    for (const PhaseStats& phase : report.phases) {
      if (phase.p99_ms > worst_deadline) {
        violations.push_back(phase.name + " p99 of " + std::to_string(phase.p99_ms) +
                             "ms exceeds the worst class deadline of " +
                             std::to_string(worst_deadline) + "ms");
      }
    }
  }

  if (!report.fingerprint_match) {
    violations.push_back("warm-restart cache is not byte-identical to the cold cache");
  }
  if (report.recover_ms >= report.cold_precompute_ms && report.warm_resumed > 0) {
    violations.push_back("warm restart (" + std::to_string(report.recover_ms) +
                         "ms) no faster than a cold start (" +
                         std::to_string(report.cold_precompute_ms) + "ms)");
  }
  if (recovery.ok == 0) {
    violations.push_back("recovery phase answered nothing after the warm restart");
  }
  return violations;
}

}  // namespace wsx::serve
