// loadgen.hpp — the closed-loop deterministic load generator for the serve
// daemon (the `wsinterop loadgen` verb and BENCH_serve.json).
//
// Three phases drive one daemon through its whole overload envelope:
//
//   open      arrivals well under capacity — everything admitted, latency
//             is essentially service cost;
//   overload  arrivals several times capacity — the bounded queue fills,
//             shedding engages, admitted p99 stays inside the class
//             deadlines (that is the invariant shedding buys). The poison
//             lint uploads in the mix trip quarantine and the breaker;
//   recovery  the daemon "crashes", warm-restarts from its verdict-cache
//             journal, and serves an open-rate phase again. Time-to-recover
//             is the modeled virtual cost of the restart (journal replay
//             per resumed record vs full re-prediction per executed one).
//
// Every quantity — arrival schedule, query mix, latencies, restart cost —
// lives on the virtual clock, seeded from LoadgenOptions::seed, so two runs
// produce byte-identical reports and CI can gate BENCH_serve.json tightly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "serve/daemon.hpp"

namespace wsx::serve {

/// Modeled virtual cost of warm restart, per precomputed record: replaying
/// a journaled verdict vs re-running the predictor on the description.
inline constexpr std::uint64_t kReplayCostMs = 1;
inline constexpr std::uint64_t kRecomputeCostMs = 10;

struct LoadgenOptions {
  analysis::predict::PredictOptions predict;  ///< corpus scale/shape
  AdmissionSettings admission;
  chaos::BreakerSettings breaker;
  resilience::JournalOptions journal;  ///< verdict-cache checkpoint knobs
  std::uint64_t seed = 42;
  std::size_t queries_per_phase = 600;
  std::size_t open_per_ms = 1;      ///< arrivals per virtual ms, open/recovery
  std::size_t overload_per_ms = 8;  ///< arrivals per virtual ms, overload
  /// Verdict-cache journal file for the crash drill. "" keeps the journal
  /// in memory (the warm restart resumes from the cold run's outcomes —
  /// the same bytes the file would hold).
  std::string cache_path;
};

struct PhaseStats {
  std::string name;
  std::size_t sent = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t deadline_rejected = 0;
  std::size_t quarantined = 0;
  std::size_t circuit_open = 0;
  std::size_t bad_request = 0;
  std::size_t not_found = 0;
  std::uint64_t p50_ms = 0;  ///< admitted-query latency percentiles
  std::uint64_t p99_ms = 0;
  std::uint64_t max_ms = 0;
  std::uint64_t duration_ms = 0;  ///< first arrival to last completion
};

struct LoadgenReport {
  std::size_t services = 0;
  std::size_t clients = 0;
  std::vector<PhaseStats> phases;  ///< open, overload, recovery
  std::uint64_t cold_precompute_ms = 0;  ///< modeled cold-start cost
  std::uint64_t recover_ms = 0;          ///< modeled warm-restart cost
  std::size_t warm_resumed = 0;    ///< records replayed from the journal
  std::size_t warm_executed = 0;   ///< records re-predicted after restart
  bool fingerprint_match = false;  ///< warm cache byte-identical to cold
};

/// Runs the three-phase drill. Deterministic: the report is a pure function
/// of the options.
Result<LoadgenReport> run_loadgen(const LoadgenOptions& options);

/// BENCH_serve.json document (no trailing newline). Flat numeric fields so
/// the CI gate can compare against a committed baseline.
std::string loadgen_json(const LoadgenReport& report, std::size_t scale_percent,
                         std::uint64_t seed);

/// Invariant check over a finished drill: overload must actually shed,
/// admitted p99 must sit within each phase-independent worst-case deadline,
/// and the warm cache must match the cold one. Returns a list of violated
/// invariants ("" entries never appear); empty means the drill passed.
std::vector<std::string> check_invariants(const LoadgenReport& report,
                                          const LoadgenOptions& options);

}  // namespace wsx::serve
