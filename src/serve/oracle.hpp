// oracle.hpp — the compatibility oracle behind `wsinterop serve`.
//
// An Oracle is the daemon's read-only knowledge base: the deployed corpus
// parsed once through the SharedDescription pipeline, every client×service
// verdict precomputed by the static predictor, and the substitution index
// folded on top. Precomputation runs under the resilience supervisor with
// the serve cache file as its checkpoint journal, which buys the daemon
// warm restart for free: a restarted daemon resumes from the journal and
// replays the precomputed records instead of re-predicting the corpus, and
// the supervisor's determinism contract makes the resumed cache
// byte-identical to a cold recompute (verified by fingerprint()).
//
// After load() the Oracle is immutable, so any number of daemon threads
// answer queries against it without locks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/predict.hpp"
#include "analysis/substitution.hpp"
#include "analysis/supervised_predict.hpp"
#include "common/result.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::serve {

struct OracleOptions {
  analysis::predict::PredictOptions predict;  ///< corpus scale/shape/jobs
  resilience::JournalOptions journal;         ///< checkpoint cadence etc.
  std::string cache_path;                     ///< verdict-cache journal; "" = none
  const resilience::Journal* resume = nullptr;  ///< warm restart source
  std::size_t trip_after_tasks = 0;           ///< crash drill (see supervisor)
};

class Oracle {
 public:
  /// Builds the oracle: deploy pass, supervised verdict precompute
  /// (checkpointed to `cache_path`, resumed from `resume`), substitution
  /// index. The study join is always off — the oracle serves predictions,
  /// it does not score them.
  static Result<Oracle> load(const OracleOptions& options);

  /// Supervisor report of the precompute (executed vs resumed counts feed
  /// the warm-restart measurement; tripped means the crash drill fired).
  const resilience::SupervisorReport& precompute() const { return precompute_; }

  std::size_t services() const { return report_.services.size(); }
  const std::vector<std::string>& clients() const { return index_.clients; }
  const std::vector<analysis::predict::ServicePredictionRecord>& records() const {
    return report_.services;
  }
  const analysis::predict::SubstitutionIndex& index() const { return index_; }

  /// FNV-1a over every precomputed record's canonical JSON, in corpus
  /// order — the byte-identity check between cold and warm caches.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // --- Query lookups. Errors use "serve.not-found". -----------------------

  /// Verdict body for one client×service pair: the predicted generation and
  /// compilation steps plus the folded verdict. `service` is
  /// "Server/Service" or a bare service name (first corpus-order match);
  /// `client` matches exactly or as a case-insensitive substring.
  Result<std::string> verdict(std::string_view client, std::string_view service) const;

  /// Explanation body: the responsible footnote mechanisms of the pair.
  Result<std::string> explain(std::string_view client, std::string_view service) const;

  /// Substitution body: ranked replacement candidates for the pair.
  Result<std::string> substitute(std::string_view client, std::string_view service,
                                 std::size_t top) const;

 private:
  Oracle() = default;

  const analysis::predict::ServicePredictionRecord* find_service(
      std::string_view service) const;
  const analysis::predict::ClientPrediction* find_client(
      const analysis::predict::ServicePredictionRecord& record,
      std::string_view client) const;

  analysis::predict::PredictReport report_;
  analysis::predict::SubstitutionIndex index_;
  resilience::SupervisorReport precompute_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace wsx::serve
