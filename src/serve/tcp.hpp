// tcp.hpp — the optional localhost TCP transport for the serve daemon.
//
// Deliberately thin: a connection is a byte stream of request frames and
// the server writes one response frame per request, using exactly the
// protocol.hpp codec the in-process transport uses — the daemon cannot
// tell which transport a request arrived on. Binding is 127.0.0.1 only
// (the oracle is a local sidecar, not a network service), port 0 asks the
// kernel for an ephemeral port, and serve() handles a bounded number of
// sequential connections so tests and the CLI terminate deterministically.
//
// Virtual time: each decoded request advances the daemon clock by one
// virtual millisecond. Wall time never enters the admission math, so a TCP
// drill sheds and rejects exactly like an in-process one.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace wsx::serve {

class TcpServer {
 public:
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;
  TcpServer(TcpServer&& other) noexcept;
  TcpServer& operator=(TcpServer&& other) noexcept;
  ~TcpServer();

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Errors use
  /// "serve.tcp" ("cannot create socket", "cannot bind", ...) — sandboxed
  /// environments without network access get a clean error, not a crash.
  static Result<TcpServer> listen(std::uint16_t port);

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Accepts and serves up to `max_connections` connections sequentially,
  /// answering every complete request frame. A malformed frame gets a
  /// kBadRequest response and closes that connection. Returns the number
  /// of requests answered. `now_ms` is advanced by one per request and
  /// carries across connections.
  Result<std::size_t> serve(Daemon& daemon, std::size_t max_connections,
                            std::uint64_t& now_ms);

 private:
  explicit TcpServer(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Test/CLI client: connects to 127.0.0.1:`port`, sends one request frame,
/// reads one response frame.
Result<Response> tcp_query(std::uint16_t port, const Request& request);

}  // namespace wsx::serve
