#include "serve/daemon.hpp"

#include <cstdio>
#include <utility>

#include "analysis/registry.hpp"
#include "resilience/supervisor.hpp"
#include "wsdl/parser.hpp"

namespace wsx::serve {

namespace {

/// FNV-1a body identity — quarantine keys on content, not connection.
std::uint64_t body_hash(std::string_view body) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : body) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

Daemon::Daemon(Oracle oracle, DaemonSettings settings)
    : oracle_(std::move(oracle)),
      settings_(settings),
      admission_(settings.admission),
      breaker_(settings.breaker) {
  if (settings_.quarantine_after == 0) settings_.quarantine_after = 1;
}

Response Daemon::handle(const Request& request, std::uint64_t now_ms) {
  if (request.kind == QueryKind::kStats) {
    // Control plane: answered even under full overload — shedding the
    // observability path would blind operators exactly when they need it.
    Response response;
    response.status = StatusCode::kOk;
    response.body = stats_body(now_ms);
    return response;
  }

  const Admission admission = admission_.admit(request.kind, now_ms);
  if (admission.status != StatusCode::kOk) {
    Response response;
    response.status = admission.status;
    response.reason = admission.status == StatusCode::kShedded
                          ? "queue full: load shed"
                          : "cannot meet class deadline";
    obs::add(settings_.metrics, admission.status == StatusCode::kShedded
                                    ? "serve.responses.shedded"
                                    : "serve.responses.deadline_exceeded");
    return response;
  }
  Response response = execute(request, admission, now_ms);
  obs::add(settings_.metrics, "serve.responses.ok");
  return response;
}

Response Daemon::execute(const Request& request, const Admission& admission,
                         std::uint64_t now_ms) {
  if (request.kind == QueryKind::kLint) return lint(request, admission, now_ms);

  Result<std::string> body = [&]() -> Result<std::string> {
    switch (request.kind) {
      case QueryKind::kVerdict:
        return oracle_.verdict(request.client, request.service);
      case QueryKind::kExplain:
        return oracle_.explain(request.client, request.service);
      case QueryKind::kSubstitute:
        return oracle_.substitute(request.client, request.service, request.top);
      default:
        return Error{"serve.bad-request", "unhandled query kind"};
    }
  }();

  Response response;
  response.latency_ms = admission.latency_ms;
  if (!body.ok()) {
    response.status = StatusCode::kNotFound;
    response.reason = body.error().message;
    return response;
  }
  response.status = StatusCode::kOk;
  response.body = std::move(body.value());
  return response;
}

Response Daemon::lint(const Request& request, const Admission& admission,
                      std::uint64_t now_ms) {
  Response response;
  response.latency_ms = admission.latency_ms;

  const std::uint64_t hash = body_hash(request.body);
  const ClassSpec& cls = admission_.spec(QueryKind::kLint);

  // One lock across the whole execution: quarantine lookups, the breaker
  // decision, the parse attempts and the outcome recording are one atomic
  // step, so a half-open breaker admits exactly one probe.
  std::lock_guard<std::mutex> lock(lint_mutex_);

  if (quarantined_.count(hash) != 0) {
    ++lint_totals_.quarantined_hits;
    response.status = StatusCode::kQuarantined;
    response.reason = "upload quarantined after repeated parse failures";
    return response;
  }

  if (!breaker_.allows(now_ms)) {
    response.status = StatusCode::kCircuitOpen;
    response.reason = "lint breaker open: untrusted-parse path cooling off";
    return response;
  }

  // Retry-then-quarantine, on resilience machinery: each parse attempt
  // charges the class cost against the class deadline; a body that burns
  // all `quarantine_after` attempts (across requests) is parked for good.
  std::size_t& failures = body_failures_[hash];
  resilience::TaskContext context(cls.deadline_ms);
  std::string parse_error;
  bool parsed = false;
  Result<wsdl::Definitions> definitions = Error{"serve.lint", "not attempted"};
  try {
    while (failures < settings_.quarantine_after) {
      context.begin_attempt();
      context.charge(cls.cost_ms);
      ++lint_totals_.attempts;
      definitions = wsdl::parse(request.body);
      if (definitions.ok()) {
        parsed = true;
        break;
      }
      ++failures;
      ++lint_totals_.parse_failures;
      parse_error = definitions.error().message;
    }
  } catch (const resilience::DeadlineExceeded&) {
    breaker_.record_failure(now_ms);
    lint_totals_.breaker_trips = breaker_.trips();
    response.status = StatusCode::kDeadlineExceeded;
    response.reason = "lint retries exceeded the class deadline";
    response.latency_ms = admission.wait_ms + context.total_ms();
    return response;
  }
  response.latency_ms =
      admission.wait_ms + std::max<std::uint64_t>(cls.cost_ms, context.total_ms());

  if (!parsed) {
    breaker_.record_failure(now_ms);
    lint_totals_.breaker_trips = breaker_.trips();
    if (failures >= settings_.quarantine_after) {
      quarantined_.insert(hash);
      response.status = StatusCode::kQuarantined;
      response.reason = "upload quarantined: " + parse_error;
    } else {
      response.status = StatusCode::kBadRequest;
      response.reason = "upload does not parse: " + parse_error;
    }
    return response;
  }

  breaker_.record_success(now_ms);
  body_failures_.erase(hash);
  analysis::AnalysisInput input;
  input.definitions = &definitions.value();
  input.uri = "upload.wsdl";
  const analysis::AnalysisResult analyzed = analysis::analyze(input);
  response.status = StatusCode::kOk;
  response.body = json::ObjectWriter{}
                      .field("findings", analyzed.findings.size())
                      .field("errors", analyzed.count(Severity::kError) +
                                           analyzed.count(Severity::kCrash))
                      .field("warnings", analyzed.count(Severity::kWarning))
                      .field("summary", analysis::summarize(analyzed.findings))
                      .str();
  return response;
}

LintSnapshot Daemon::lint_snapshot() const {
  std::lock_guard<std::mutex> lock(lint_mutex_);
  LintSnapshot snapshot = lint_totals_;
  snapshot.quarantined_bodies = quarantined_.size();
  snapshot.breaker_trips = breaker_.trips();
  return snapshot;
}

std::string Daemon::stats_body(std::uint64_t now_ms) {
  const AdmissionSnapshot admission = admission_.snapshot();
  LintSnapshot lint;
  chaos::CircuitBreaker::State breaker_state;
  {
    std::lock_guard<std::mutex> lock(lint_mutex_);
    lint = lint_totals_;
    lint.quarantined_bodies = quarantined_.size();
    lint.breaker_trips = breaker_.trips();
    breaker_state = breaker_.state(now_ms);
    if (settings_.metrics != nullptr) {
      breaker_.export_state(*settings_.metrics, "serve.lint.breaker", now_ms);
    }
  }
  if (settings_.metrics != nullptr) {
    admission_.export_metrics(*settings_.metrics);
    settings_.metrics->gauge("serve.lint.quarantined_bodies")
        .set(static_cast<std::int64_t>(lint.quarantined_bodies));
    obs::Counter& attempts = settings_.metrics->counter("serve.lint.attempts");
    if (lint.attempts > attempts.value()) attempts.add(lint.attempts - attempts.value());
    obs::Counter& failures = settings_.metrics->counter("serve.lint.parse_failures");
    if (lint.parse_failures > failures.value()) {
      failures.add(lint.parse_failures - failures.value());
    }
  }

  char fingerprint[17];
  std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                static_cast<unsigned long long>(oracle_.fingerprint()));
  return json::ObjectWriter{}
      .field("services", oracle_.services())
      .field("clients", oracle_.clients().size())
      .field("cache_fingerprint", static_cast<const char*>(fingerprint))
      .raw_field("admission", json::ObjectWriter{}
                                  .field("admitted", static_cast<std::size_t>(admission.admitted))
                                  .field("shed", static_cast<std::size_t>(admission.shed))
                                  .field("deadline_rejected",
                                         static_cast<std::size_t>(admission.deadline_rejected))
                                  .field("queue_high_water", admission.queue_high_water)
                                  .str())
      .raw_field("lint",
                 json::ObjectWriter{}
                     .field("attempts", static_cast<std::size_t>(lint.attempts))
                     .field("parse_failures", static_cast<std::size_t>(lint.parse_failures))
                     .field("quarantined_bodies", lint.quarantined_bodies)
                     .field("quarantined_hits",
                            static_cast<std::size_t>(lint.quarantined_hits))
                     .field("breaker_state", breaker_state == chaos::CircuitBreaker::State::kClosed
                                                 ? "closed"
                                                 : breaker_state ==
                                                           chaos::CircuitBreaker::State::kOpen
                                                       ? "open"
                                                       : "half-open")
                     .field("breaker_trips", lint.breaker_trips)
                     .str())
      .str();
}

}  // namespace wsx::serve
