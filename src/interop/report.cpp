#include "interop/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "frameworks/registry.hpp"
#include "interop/paper_reference.hpp"

namespace wsx::interop {

namespace paper {

std::string_view normalize_client_name(std::string_view client) {
  if (starts_with(client, ".NET Framework") && ends_with(client, "(C#)")) return ".NET (C#)";
  if (starts_with(client, ".NET Framework") && ends_with(client, "(Visual Basic .NET)")) {
    return ".NET (Visual Basic .NET)";
  }
  if (starts_with(client, ".NET Framework") && ends_with(client, "(JScript .NET)")) {
    return ".NET (JScript .NET)";
  }
  return client;
}

std::string_view normalize_server_name(std::string_view server) {
  if (starts_with(server, "Metro")) return "Metro";
  if (starts_with(server, "JBossWS")) return "JBossWS CXF";
  if (starts_with(server, "WCF")) return "WCF .NET";
  return server;
}

}  // namespace paper

namespace {

const char* marker(std::size_t paper_value, std::size_t measured) {
  return paper_value == measured ? "MATCH" : "DIVERGE";
}

void row(std::ostringstream& out, const std::string& label, std::size_t paper_value,
         std::size_t measured) {
  out << "  " << std::left << std::setw(44) << label << std::right << std::setw(8)
      << paper_value << std::setw(10) << measured << "   " << marker(paper_value, measured)
      << "\n";
}

}  // namespace

std::string format_table1() {
  std::ostringstream out;
  out << "Table I — server platforms\n";
  out << "  " << std::left << std::setw(28) << "Server" << std::setw(28) << "Framework"
      << "Language\n";
  for (const auto& server : frameworks::make_servers()) {
    out << "  " << std::left << std::setw(28) << server->application_server() << std::setw(28)
        << server->name() << server->language() << "\n";
  }
  return out.str();
}

std::string format_table2() {
  std::ostringstream out;
  out << "Table II — client-side frameworks\n";
  out << "  " << std::left << std::setw(44) << "Framework" << std::setw(30) << "Tool"
      << std::setw(20) << "Language"
      << "Compilation\n";
  for (const auto& client : frameworks::make_clients()) {
    out << "  " << std::left << std::setw(44) << client->name() << std::setw(30)
        << client->tool() << std::setw(20) << code::to_string(client->language())
        << (client->requires_compilation() ? "Yes" : "N/A (instantiation check)") << "\n";
  }
  return out.str();
}

std::string format_fig4(const StudyResult& result) {
  std::ostringstream out;
  out << "Fig. 4 — overview of the experimental results (paper vs measured)\n";
  for (const ServerResult& server : result.servers) {
    const std::string_view short_name = paper::normalize_server_name(server.server);
    const paper::Fig4Row* reference = nullptr;
    for (const paper::Fig4Row& candidate : paper::kFig4) {
      if (candidate.server == short_name) reference = &candidate;
    }
    out << server.server << " (" << server.application_server << ", "
        << server.services_deployed << " services)\n";
    if (reference == nullptr) {
      out << "  (no paper reference for this server)\n";
      continue;
    }
    out << "  " << std::left << std::setw(44) << "metric" << std::right << std::setw(8)
        << "paper" << std::setw(10) << "measured" << "\n";
    row(out, "service description generation warnings", reference->description_warnings,
        server.description_warnings);
    row(out, "service description generation errors", reference->description_errors,
        server.description_errors);
    const StepCounts generation = server.generation_totals();
    const StepCounts compilation = server.compilation_totals();
    row(out, "client artifacts generation warnings", reference->generation_warnings,
        generation.warnings);
    row(out, "client artifacts generation errors", reference->generation_errors,
        generation.errors);
    row(out, "client artifacts compilation warnings", reference->compilation_warnings,
        compilation.warnings);
    row(out, "client artifacts compilation errors", reference->compilation_errors,
        compilation.errors);
  }
  return out.str();
}

std::string format_table3(const StudyResult& result) {
  std::ostringstream out;
  out << "Table III — experimental results per client and server "
         "(Gw/Ge = generation warnings/errors, Cw/Ce = compilation; paper → measured)\n";
  for (const ServerResult& server : result.servers) {
    const std::string_view server_short = paper::normalize_server_name(server.server);
    out << server.server << " — " << server.services_deployed << " services, "
        << server.description_warnings << " flagged at description step\n";
    for (const CellResult& cell : server.cells) {
      const std::string_view client_short = paper::normalize_client_name(cell.client);
      const paper::Table3Cell* reference = nullptr;
      for (const paper::Table3Cell& candidate : paper::kTable3) {
        if (candidate.server == server_short && candidate.client == client_short) {
          reference = &candidate;
        }
      }
      out << "  " << std::left << std::setw(30) << client_short << std::right;
      const auto print_pair = [&](const char* label, std::size_t paper_value,
                                  std::size_t measured) {
        out << "  " << label << " " << std::setw(4) << paper_value << " -> " << std::setw(4)
            << measured << (paper_value == measured ? "  " : " !");
      };
      if (reference != nullptr) {
        print_pair("Gw", reference->generation_warnings, cell.generation.warnings);
        print_pair("Ge", reference->generation_errors, cell.generation.errors);
        if (cell.compiled) {
          print_pair("Cw", reference->compilation_warnings, cell.compilation.warnings);
          print_pair("Ce", reference->compilation_errors, cell.compilation.errors);
        } else {
          out << "  (no compilation step; instantiation checked)";
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

std::string format_findings(const StudyResult& result) {
  std::ostringstream out;
  out << "Headline aggregates (paper vs measured)\n";
  out << "  " << std::left << std::setw(44) << "metric" << std::right << std::setw(8)
      << "paper" << std::setw(10) << "measured" << "\n";
  row(out, "tests executed", paper::kTotalTests, result.total_tests());
  row(out, "services created", paper::kServicesCreated, result.total_services_created());
  row(out, "services without a WSDL (excluded)", paper::kWsdlFailures,
      result.total_deployment_refusals());
  row(out, "description-step warnings (WS-I/unusable)", paper::kDescriptionWarnings,
      result.total_description_warnings());
  row(out, "artifact generation warnings", paper::kGenerationWarnings,
      result.total_generation().warnings);
  row(out, "artifact generation errors", paper::kGenerationErrors,
      result.total_generation().errors);
  row(out, "artifact compilation warnings", paper::kCompilationWarnings,
      result.total_compilation().warnings);
  row(out, "artifact compilation errors", paper::kCompilationErrors,
      result.total_compilation().errors);
  row(out, "interoperability errors (gen+comp)", paper::kInteropErrors,
      result.total_interop_errors());
  row(out, "same-platform failures (.NET on .NET)", paper::kSamePlatformFailures,
      result.same_platform_failures);
  row(out, "description-flagged services", paper::kFlaggedServices, result.flagged_services);
  row(out, "flagged services erroring downstream", paper::kFlaggedWithDownstreamError,
      result.flagged_services_with_downstream_error);

  out << "\nDerived findings\n";
  if (result.flagged_services > 0) {
    const double share = 100.0 * static_cast<double>(result.flagged_services_with_downstream_error) /
                         static_cast<double>(result.flagged_services);
    out << "  flagged services that also error downstream: " << std::fixed
        << std::setprecision(1) << share << "% (paper: 95.3%)\n";
  }
  const std::size_t generation_errors =
      result.generation_errors_on_flagged + result.generation_errors_on_compliant;
  if (generation_errors > 0) {
    const double share = 100.0 * static_cast<double>(result.generation_errors_on_flagged) /
                         static_cast<double>(generation_errors);
    out << "  generation errors caused by WS-I-failing WSDLs: " << std::fixed
        << std::setprecision(1) << share << "% (paper: ~97%)\n";
  }
  out << "  same-framework failures incl. Java stacks: " << result.same_framework_failures
      << " (same-platform subset, the paper's 307: " << result.same_platform_failures << ")\n";

  // Tool maturity ranking (paper §IV.A discusses maturity qualitatively;
  // this quantifies it as errors caused per test across all servers).
  struct ToolScore {
    std::string client;
    std::size_t errors = 0;
    std::size_t tests = 0;
  };
  std::vector<ToolScore> scores;
  for (const ServerResult& server : result.servers) {
    for (const CellResult& cell : server.cells) {
      ToolScore* score = nullptr;
      for (ToolScore& candidate : scores) {
        if (candidate.client == cell.client) score = &candidate;
      }
      if (score == nullptr) {
        scores.push_back({cell.client, 0, 0});
        score = &scores.back();
      }
      score->errors += cell.generation.errors + cell.compilation.errors;
      score->tests += cell.tests;
    }
  }
  std::sort(scores.begin(), scores.end(),
            [](const ToolScore& a, const ToolScore& b) { return a.errors < b.errors; });
  out << "\nTool maturity ranking (errors caused across all steps, fewest first)\n";
  for (const ToolScore& score : scores) {
    out << "  " << std::left << std::setw(52)
        << std::string(paper::normalize_client_name(score.client)) << std::right
        << std::setw(6) << score.errors << " / " << score.tests << "\n";
  }
  return out.str();
}

std::string format_failure_catalog(const StudyResult& result) {
  struct CatalogEntry {
    std::size_t tests = 0;
    std::vector<std::string> tools;
    std::string sample_message;
  };
  std::map<std::string, CatalogEntry> catalog;
  for (const ServerResult& server : result.servers) {
    for (const CellResult& cell : server.cells) {
      for (const auto& [error_code, count] : cell.error_codes) {
        CatalogEntry& entry = catalog[error_code];
        entry.tests += count;
        const std::string tool(paper::normalize_client_name(cell.client));
        if (std::find(entry.tools.begin(), entry.tools.end(), tool) == entry.tools.end()) {
          entry.tools.push_back(tool);
        }
        if (entry.sample_message.empty()) {
          for (const Diagnostic& sample : cell.samples) {
            if (sample.code == error_code) entry.sample_message = sample.message;
          }
        }
      }
    }
  }

  // Most-frequent first.
  std::vector<std::pair<std::string, CatalogEntry>> ordered(catalog.begin(), catalog.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.tests != b.second.tests ? a.second.tests > b.second.tests
                                            : a.first < b.first;
  });

  std::ostringstream out;
  out << "Failure catalog — " << ordered.size()
      << " distinct error codes across the campaign (auto-generated §IV.B inventory)\n";
  for (const auto& [error_code, entry] : ordered) {
    out << "  " << std::left << std::setw(36) << error_code << std::right << std::setw(6)
        << entry.tests << " test(s)  [" << join(entry.tools, ", ") << "]\n";
    if (!entry.sample_message.empty()) {
      out << "      e.g. " << entry.sample_message << "\n";
    }
  }
  return out.str();
}

}  // namespace wsx::interop
