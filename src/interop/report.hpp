// report.hpp — textual reports mirroring the paper's tables and figure.
#pragma once

#include <string>

#include "interop/study.hpp"

namespace wsx::interop {

/// Table I: the server platforms.
std::string format_table1();

/// Table II: the client-side frameworks.
std::string format_table2();

/// Fig. 4: per-server step overview, paper vs measured, with a
/// MATCH/DIVERGE marker per value.
std::string format_fig4(const StudyResult& result);

/// Table III: the full client×server matrix, paper vs measured.
std::string format_table3(const StudyResult& result);

/// §IV headline aggregates and findings (totals, same-framework failures,
/// the 95.3% WS-I ablation).
std::string format_findings(const StudyResult& result);

/// The failure catalog: every distinct error code observed across the
/// campaign, with the number of affected tests, the tools producing it and
/// a sample message — the auto-generated counterpart of the paper's §IV.B
/// technical inventory.
std::string format_failure_catalog(const StudyResult& result);

}  // namespace wsx::interop
