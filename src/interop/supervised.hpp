// supervised.hpp — the study and communication campaigns re-driven under
// the resilience supervisor (src/resilience/supervisor.hpp).
//
// Task granularity is one deployed service per server: the supervisor
// checkpoints, retries and quarantines (server, service) units, and the
// per-client outcomes are folded back — in task order — through the exact
// aggregation run_server_campaign applies. An uninterrupted supervised run,
// a resumed one, and any jobs value therefore produce byte-identical
// reports (pinned by tests/supervised_campaign_test.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "interop/communication.hpp"
#include "interop/study.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::interop {

/// Supervisor knobs shared by every supervised campaign verb.
struct SupervisedOptions {
  resilience::JournalOptions journal;  ///< cadence/deadline/quarantine/budget
  std::size_t jobs = 0;                ///< worker threads; 0 = hardware
  std::string checkpoint_path;         ///< journal file; "" = no checkpointing
  const resilience::Journal* resume = nullptr;  ///< parsed journal to resume
  std::size_t trip_after_tasks = 0;    ///< crash simulation (tests/CI)
};

/// Canonical config fingerprint for the study campaign, and its inverse
/// (used by `wsinterop resume` to re-derive the config from the journal
/// header). Round-trips byte-identically through json::parse + to_text.
/// Only the determinism-relevant knobs are part of the fingerprint;
/// threads/observer/sinks deliberately are not.
std::string study_config_json(const StudyConfig& config);
Result<StudyConfig> study_config_from_json(std::string_view text);

/// Fingerprint for the communication campaign (the study knobs it ignores —
/// samples, shape, gate — are excluded).
std::string communication_config_json(const StudyConfig& config);
Result<StudyConfig> communication_config_from_json(std::string_view text);

struct SupervisedStudyResult {
  StudyResult study;
  resilience::SupervisorReport supervisor;
};

/// Runs the full study under supervision. Quarantined and not-admitted
/// services contribute nothing to `study` (the supervisor report carries
/// the coverage counters that explain the gap).
Result<SupervisedStudyResult> run_study_supervised(const StudyConfig& config,
                                                   const SupervisedOptions& options);

struct SupervisedCommunicationResult {
  CommunicationResult communication;
  resilience::SupervisorReport supervisor;
};

/// Runs the communication study under supervision.
Result<SupervisedCommunicationResult> run_communication_supervised(
    const StudyConfig& config, const SupervisedOptions& options);

}  // namespace wsx::interop
