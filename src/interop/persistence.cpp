#include "interop/persistence.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"
#include "interop/report_formats.hpp"

namespace wsx::interop {
namespace {

/// Splits one CSV record; handles quoted fields with doubled quotes.
std::vector<std::string> split_csv_record(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::size_t> parse_count(const std::string& field) {
  try {
    return static_cast<std::size_t>(std::stoull(field));
  } catch (...) {
    return Error{"snapshot.bad-number", "'" + field + "' is not a count"};
  }
}

}  // namespace

std::string to_snapshot_csv(const StudyResult& result) { return table3_csv(result); }

Result<std::vector<SnapshotCell>> parse_snapshot_csv(std::string_view csv_text) {
  std::vector<SnapshotCell> cells;
  const std::vector<std::string> lines = split(csv_text, '\n');
  bool saw_header = false;
  for (const std::string& line : lines) {
    if (trim(line).empty()) continue;
    if (!saw_header) {
      saw_header = true;
      if (line.rfind("server,client,", 0) != 0) {
        return Error{"snapshot.bad-header", "not a snapshot CSV (unexpected header)"};
      }
      continue;
    }
    const std::vector<std::string> fields = split_csv_record(line);
    if (fields.size() != 7) {
      return Error{"snapshot.bad-record",
                   "expected 7 fields, got " + std::to_string(fields.size())};
    }
    SnapshotCell cell;
    cell.server = fields[0];
    cell.client = fields[1];
    const Result<std::size_t> tests = parse_count(fields[2]);
    const Result<std::size_t> gen_warnings = parse_count(fields[3]);
    const Result<std::size_t> gen_errors = parse_count(fields[4]);
    const Result<std::size_t> comp_warnings = parse_count(fields[5]);
    const Result<std::size_t> comp_errors = parse_count(fields[6]);
    for (const Result<std::size_t>* value :
         {&tests, &gen_warnings, &gen_errors, &comp_warnings, &comp_errors}) {
      if (!value->ok()) return value->error();
    }
    cell.tests = tests.value();
    cell.generation = {gen_warnings.value(), gen_errors.value()};
    cell.compilation = {comp_warnings.value(), comp_errors.value()};
    cells.push_back(std::move(cell));
  }
  if (!saw_header) return Error{"snapshot.empty", "snapshot CSV has no content"};
  return cells;
}

std::vector<CellDiff> diff_snapshots(const std::vector<SnapshotCell>& before,
                                     const std::vector<SnapshotCell>& after) {
  std::vector<CellDiff> diffs;
  const auto emit = [&diffs](const SnapshotCell& a, const SnapshotCell& b) {
    const auto compare = [&](const char* metric, std::size_t x, std::size_t y) {
      if (x != y) diffs.push_back({a.server, a.client, metric, x, y});
    };
    compare("tests", a.tests, b.tests);
    compare("generation_warnings", a.generation.warnings, b.generation.warnings);
    compare("generation_errors", a.generation.errors, b.generation.errors);
    compare("compilation_warnings", a.compilation.warnings, b.compilation.warnings);
    compare("compilation_errors", a.compilation.errors, b.compilation.errors);
  };
  const SnapshotCell empty;
  for (const SnapshotCell& cell : before) {
    const SnapshotCell* matched = nullptr;
    for (const SnapshotCell& candidate : after) {
      if (candidate.server == cell.server && candidate.client == cell.client) {
        matched = &candidate;
      }
    }
    if (matched != nullptr) {
      emit(cell, *matched);
    } else {
      SnapshotCell gone = empty;
      gone.server = cell.server;
      gone.client = cell.client;
      emit(cell, gone);
    }
  }
  for (const SnapshotCell& cell : after) {
    const bool known = std::any_of(
        before.begin(), before.end(), [&cell](const SnapshotCell& candidate) {
          return candidate.server == cell.server && candidate.client == cell.client;
        });
    if (!known) {
      SnapshotCell fresh = empty;
      fresh.server = cell.server;
      fresh.client = cell.client;
      emit(fresh, cell);
    }
  }
  return diffs;
}

std::string format_diff(const std::vector<CellDiff>& diff) {
  if (diff.empty()) return "no behavioural changes between the two runs\n";
  std::ostringstream out;
  out << diff.size() << " changed metric(s):\n";
  for (const CellDiff& change : diff) {
    out << "  " << change.server << " / " << change.client << ": " << change.metric << " "
        << change.before << " -> " << change.after << "\n";
  }
  return out.str();
}

}  // namespace wsx::interop
