// report_formats.hpp — machine-readable renderings of the study results
// (CSV for spreadsheets/plotting, Markdown for reports).
#pragma once

#include <string>

#include "interop/study.hpp"

namespace wsx::interop {

/// Fig. 4 data as CSV: server,metric,paper,measured.
std::string fig4_csv(const StudyResult& result);

/// Table III as CSV: server,client,gen_warnings,gen_errors,comp_warnings,
/// comp_errors (measured values).
std::string table3_csv(const StudyResult& result);

/// Fig. 4 as a Markdown table (paper vs measured with a status column).
std::string fig4_markdown(const StudyResult& result);

/// Table III as a Markdown table.
std::string table3_markdown(const StudyResult& result);

}  // namespace wsx::interop
