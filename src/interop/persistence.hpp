// persistence.hpp — snapshotting campaign results and diffing runs.
//
// The paper's released tool exists so practitioners can re-run the study
// as frameworks evolve; this module closes that loop: snapshot a run to
// CSV, rerun later (new tool versions, new populations), and diff — every
// changed cell is a behavioural change in some framework subsystem.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "interop/study.hpp"

namespace wsx::interop {

/// One (server, client) row of a snapshot.
struct SnapshotCell {
  std::string server;
  std::string client;
  std::size_t tests = 0;
  StepCounts generation;
  StepCounts compilation;
  friend bool operator==(const SnapshotCell&, const SnapshotCell&) = default;
};

/// Serializes a run to the snapshot CSV (same schema as table3_csv).
std::string to_snapshot_csv(const StudyResult& result);

/// Parses a snapshot CSV back. Error codes use the "snapshot." prefix.
Result<std::vector<SnapshotCell>> parse_snapshot_csv(std::string_view csv_text);

/// A changed metric between two runs of the same cell.
struct CellDiff {
  std::string server;
  std::string client;
  std::string metric;  ///< "tests", "generation_errors", ...
  std::size_t before = 0;
  std::size_t after = 0;
  friend bool operator==(const CellDiff&, const CellDiff&) = default;
};

/// Cell-by-cell comparison; cells present on only one side are reported
/// with 0 on the other.
std::vector<CellDiff> diff_snapshots(const std::vector<SnapshotCell>& before,
                                     const std::vector<SnapshotCell>& after);

/// Renders a diff (empty diff → "no behavioural changes").
std::string format_diff(const std::vector<CellDiff>& diff);

}  // namespace wsx::interop
